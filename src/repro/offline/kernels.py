"""Kernel functions for the SVM baseline.

Gram matrices are computed blockwise-vectorized; the RBF path uses the
``||a-b||² = ||a||² + ||b||² - 2a·b`` expansion so the hot operation is a
single GEMM (see the optimization guide: push work into BLAS).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def linear_kernel(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Gram matrix ``K[i, j] = A[i] · B[j]``."""
    return A @ B.T


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """Gram matrix ``K[i, j] = exp(-gamma * ||A[i] - B[j]||²)``."""
    check_positive(gamma, "gamma")
    sq_a = np.einsum("ij,ij->i", A, A)[:, None]
    sq_b = np.einsum("ij,ij->i", B, B)[None, :]
    d2 = sq_a + sq_b - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)  # guard tiny negative rounding
    return np.exp(-gamma * d2)


def kernel_diag_rbf(A: np.ndarray) -> np.ndarray:
    """Diagonal of an RBF Gram matrix (always 1)."""
    return np.ones(A.shape[0], dtype=np.float64)
