"""Class-imbalance handling for offline training — Eq. (4) of the paper.

The offline models never see the raw sample stream; their training input
is ``D_p + D_nc`` where ``D_nc`` is a random subset of the negatives with
``|D_nc| = λ · |D_p|`` (NegSampleRatio).  ``λ = None`` reproduces the
paper's "Max" row: no balancing at all.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_binary_labels


def neg_sample_ratio(y: np.ndarray) -> float:
    """The realized λ = |negatives| / |positives| of a labeled set."""
    y = check_binary_labels(y)
    n_pos = int(np.sum(y == 1))
    if n_pos == 0:
        return float("inf")
    return float(np.sum(y == 0)) / n_pos


def downsample_negatives(
    y: np.ndarray,
    lam: Optional[float],
    seed: SeedLike = None,
) -> np.ndarray:
    """Row indices of the balanced subset ``D_p + D_nc``.

    Keeps every positive and a uniform random subset of negatives of size
    ``round(λ · n_pos)`` (all negatives if fewer are available, or when
    ``lam`` is ``None`` — the paper's "Max" setting).  The returned index
    array is sorted so downstream slices stay in temporal order.
    """
    y = check_binary_labels(y)
    pos_idx = np.flatnonzero(y == 1)
    neg_idx = np.flatnonzero(y == 0)
    if lam is None:
        return np.sort(np.concatenate([pos_idx, neg_idx]))
    if lam <= 0:
        raise ValueError(f"lam must be > 0 (or None for Max), got {lam}")
    n_keep = int(round(lam * pos_idx.size))
    if n_keep >= neg_idx.size:
        kept_neg = neg_idx
    else:
        rng = as_generator(seed)
        kept_neg = rng.choice(neg_idx, size=n_keep, replace=False)
    return np.sort(np.concatenate([pos_idx, kept_neg]))


def downsample_dataset(
    X: np.ndarray,
    y: np.ndarray,
    lam: Optional[float],
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper returning the balanced (X, y) pair directly."""
    idx = downsample_negatives(y, lam, seed)
    return X[idx], np.asarray(y)[idx]
