"""Offline baseline learners.

Everything the paper compares ORF against, implemented from scratch on
NumPy (no scikit-learn):

* :class:`~repro.offline.tree.DecisionTreeClassifier` — CART with Gini
  impurity, a global ``max_num_splits`` cap and class weights — the
  equivalent of Matlab's ``fitctree`` configuration in §4.4;
* :class:`~repro.offline.forest.RandomForestClassifier` — Breiman-style
  bagged forest with per-node feature subsampling;
* :class:`~repro.offline.svm.SVC` — C-SVC with an RBF kernel trained by
  SMO — the LIBSVM stand-in;
* :mod:`~repro.offline.sampling` — the NegSampleRatio (λ) downsampling of
  Eq. (4);
* :mod:`~repro.offline.grid_search` — FAR-constrained hyper-parameter
  search ("highest FDR with FAR below a cap", §4.4).
"""

from repro.offline.forest import RandomForestClassifier
from repro.offline.gbdt import GradientBoostedTrees
from repro.offline.grid_search import FarConstrainedSearch, SearchResult
from repro.offline.kernels import linear_kernel, rbf_kernel
from repro.offline.regression_tree import RegressionTree
from repro.offline.sampling import downsample_negatives, neg_sample_ratio
from repro.offline.smart_threshold import SmartThresholdDetector
from repro.offline.svm import SVC
from repro.offline.tree import DecisionTreeClassifier

__all__ = [
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "RegressionTree",
    "GradientBoostedTrees",
    "SmartThresholdDetector",
    "SVC",
    "linear_kernel",
    "rbf_kernel",
    "downsample_negatives",
    "neg_sample_ratio",
    "FarConstrainedSearch",
    "SearchResult",
]
