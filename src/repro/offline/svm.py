"""C-SVC with RBF kernel, trained by SMO — the LIBSVM stand-in.

The paper's SVM baseline is LIBSVM's C-SVC with an RBF kernel, tuned by
grid search for the highest FDR under a FAR cap.  This implementation is
a from-scratch sequential-minimal-optimization solver:

* full precomputed Gram matrix (training sets here are the λ-downsampled
  ones — thousands of rows, so the matrix fits comfortably);
* simplified SMO pair selection (random second index among violators)
  with an error cache updated incrementally;
* per-class penalty ``C·w_c`` so class imbalance can be compensated the
  LIBSVM ``-wi`` way.

``decision_function`` is the usual signed margin; the evaluation harness
thresholds it (not at 0) to pin FAR at the target operating point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.offline.kernels import rbf_kernel
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    check_array_2d,
    check_binary_labels,
    check_feature_count,
    check_positive,
)


class SVC:
    """Binary C-SVC with an RBF kernel.

    Parameters
    ----------
    C:
        Soft-margin penalty.
    gamma:
        RBF width; ``"scale"`` resolves to ``1 / (n_features * Var(X))``
        (LIBSVM/sklearn convention) at fit time.
    class_weight:
        ``None``, ``"balanced"`` or ``{0: w0, 1: w1}`` — scales C per class.
    tol:
        KKT violation tolerance.
    max_passes:
        SMO stops after this many consecutive full passes without any
        α update (or after ``max_iter`` total passes).
    """

    def __init__(
        self,
        *,
        C: float = 1.0,
        gamma: Union[str, float] = "scale",
        class_weight: Optional[Union[str, Dict[int, float]]] = None,
        tol: float = 1e-3,
        max_passes: int = 8,
        max_iter: int = 200,
        seed: SeedLike = None,
    ) -> None:
        check_positive(C, "C")
        check_positive(tol, "tol")
        check_positive(max_passes, "max_passes")
        check_positive(max_iter, "max_iter")
        self.C = float(C)
        self.gamma = gamma
        self.class_weight = class_weight
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        self.max_iter = int(max_iter)
        self._rng = as_generator(seed)

        self.support_vectors_: Optional[np.ndarray] = None
        self.dual_coef_: Optional[np.ndarray] = None  # alpha_i * y_i at SVs
        self.intercept_: float = 0.0
        self.gamma_: Optional[float] = None
        self.n_features_: Optional[int] = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ fit
    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = float(X.var())
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        g = float(self.gamma)
        check_positive(g, "gamma")
        return g

    def _per_sample_C(self, y01: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            w0 = w1 = 1.0
        elif self.class_weight == "balanced":
            n = y01.shape[0]
            n1 = int(np.sum(y01 == 1))
            n0 = n - n1
            w0 = n / (2.0 * n0) if n0 else 1.0
            w1 = n / (2.0 * n1) if n1 else 1.0
        elif isinstance(self.class_weight, dict):
            w0 = float(self.class_weight.get(0, 1.0))
            w1 = float(self.class_weight.get(1, 1.0))
        else:
            raise ValueError(f"unsupported class_weight {self.class_weight!r}")
        return self.C * np.where(y01 == 1, w1, w0)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVC":
        """Solve the dual with SMO; returns self."""
        X = check_array_2d(X, "X", min_rows=2)
        y01 = check_binary_labels(y, n_rows=X.shape[0])
        if np.unique(y01).size < 2:
            raise ValueError("SVC requires both classes present in y")
        n = X.shape[0]
        self.n_features_ = X.shape[1]
        self.gamma_ = self._resolve_gamma(X)

        y_pm = np.where(y01 == 1, 1.0, -1.0)
        C_i = self._per_sample_C(y01)
        K = rbf_kernel(X, X, self.gamma_)

        alpha = np.zeros(n, dtype=np.float64)
        b = 0.0
        # error cache: E_i = f(x_i) - y_i; starts at -y (alpha = 0, b = 0)
        E = -y_pm.copy()

        passes = 0
        it = 0
        while passes < self.max_passes and it < self.max_iter:
            n_changed = 0
            for i in range(n):
                Ei = E[i]
                r = Ei * y_pm[i]
                if (r < -self.tol and alpha[i] < C_i[i]) or (
                    r > self.tol and alpha[i] > 0
                ):
                    # second-choice heuristic: maximize |Ei - Ej|, with a
                    # random fallback so we can escape degenerate picks
                    j = int(np.argmax(np.abs(E - Ei)))
                    if j == i or abs(E[j] - Ei) < 1e-12:
                        j = int(self._rng.integers(0, n - 1))
                        if j >= i:
                            j += 1
                    if self._take_step(i, j, alpha, E, y_pm, K, C_i, b_ref := [b]):
                        b = b_ref[0]
                        n_changed += 1
            it += 1
            passes = passes + 1 if n_changed == 0 else 0
        self.n_iter_ = it

        sv = alpha > 1e-10
        self.support_vectors_ = X[sv].copy()
        self.dual_coef_ = (alpha * y_pm)[sv]
        self.intercept_ = float(b)
        return self

    @staticmethod
    def _bounds(
        i: int,
        j: int,
        alpha: np.ndarray,
        y_pm: np.ndarray,
        C_i: np.ndarray,
    ) -> Tuple[float, float]:
        if y_pm[i] != y_pm[j]:
            L = max(0.0, alpha[j] - alpha[i])
            H = min(C_i[j], C_i[i] + alpha[j] - alpha[i])
        else:
            L = max(0.0, alpha[i] + alpha[j] - C_i[i])
            H = min(C_i[j], alpha[i] + alpha[j])
        return L, H

    def _take_step(
        self,
        i: int,
        j: int,
        alpha: np.ndarray,
        E: np.ndarray,
        y_pm: np.ndarray,
        K: np.ndarray,
        C_i: np.ndarray,
        b_ref: List[float],
    ) -> bool:
        if i == j:
            return False
        L, H = self._bounds(i, j, alpha, y_pm, C_i)
        if H - L < 1e-12:
            return False
        eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
        if eta >= -1e-12:
            return False  # non-positive curvature; skip (rare with RBF)
        aj_old, ai_old = alpha[j], alpha[i]
        aj = aj_old - y_pm[j] * (E[i] - E[j]) / eta
        aj = min(max(aj, L), H)
        if abs(aj - aj_old) < 1e-7 * (aj + aj_old + 1e-7):
            return False
        ai = ai_old + y_pm[i] * y_pm[j] * (aj_old - aj)

        b = b_ref[0]
        b1 = (
            b
            - E[i]
            - y_pm[i] * (ai - ai_old) * K[i, i]
            - y_pm[j] * (aj - aj_old) * K[i, j]
        )
        b2 = (
            b
            - E[j]
            - y_pm[i] * (ai - ai_old) * K[i, j]
            - y_pm[j] * (aj - aj_old) * K[j, j]
        )
        if 0 < ai < C_i[i]:
            new_b = b1
        elif 0 < aj < C_i[j]:
            new_b = b2
        else:
            new_b = 0.5 * (b1 + b2)

        # incremental error-cache update (vectorized over all samples)
        E += (
            y_pm[i] * (ai - ai_old) * K[i]
            + y_pm[j] * (aj - aj_old) * K[j]
            + (new_b - b)
        )
        alpha[i], alpha[j] = ai, aj
        b_ref[0] = new_b
        return True

    # -------------------------------------------------------------- predict
    def _require_fitted(self) -> None:
        if self.support_vectors_ is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin per row (positive ⇒ predicted failure)."""
        self._require_fitted()
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features_, "X")
        if self.support_vectors_.shape[0] == 0:
            return np.full(X.shape[0], self.intercept_)
        K = rbf_kernel(X, self.support_vectors_, self.gamma_)
        return K @ self.dual_coef_ + self.intercept_

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """Alias of :meth:`decision_function` (uniform scoring API)."""
        return self.decision_function(X)

    def predict(self, X: np.ndarray, *, threshold: float = 0.0) -> np.ndarray:
        """Hard labels at a margin threshold."""
        return (self.decision_function(X) >= threshold).astype(np.int8)

    @property
    def n_support_(self) -> int:
        """Number of support vectors of the fitted model."""
        self._require_fitted()
        return int(self.support_vectors_.shape[0])
