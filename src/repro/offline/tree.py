"""CART decision tree (Gini impurity) for binary classification.

A from-scratch equivalent of the configuration the paper uses for its DT
baseline (Matlab ``fitctree`` with ``SplitCriterion = gdi`` and
``MaxNumSplits``), and the base learner of the offline random forest.

Split search is vectorized per feature: one argsort, prefix sums of
weighted class counts, and a single vectorized gain evaluation over all
candidate thresholds — no Python loop over samples.  Tree growth is
breadth-first so the global ``max_num_splits`` cap has fitctree's
semantics (the *shallowest* splits win when the budget runs out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    check_array_2d,
    check_binary_labels,
    check_feature_count,
    check_positive,
)

ClassWeight = Union[None, str, Dict[int, float]]


def gini_impurity(w0: np.ndarray, w1: np.ndarray) -> np.ndarray:
    """Weighted Gini impurity ``2 p0 p1`` (== the paper's Eq. (1)).

    Accepts scalars or arrays of per-partition class weights; empty
    partitions (total weight 0) have impurity 0.
    """
    total = w0 + w1
    with np.errstate(divide="ignore", invalid="ignore"):
        p1 = np.where(total > 0, w1 / total, 0.0)
    return 2.0 * p1 * (1.0 - p1)


def resolve_class_weight(
    class_weight: ClassWeight, y: np.ndarray
) -> Tuple[float, float]:
    """Per-class multipliers (w_neg, w_pos) from a class_weight spec.

    ``None`` → (1, 1); ``"balanced"`` → ``n / (2 * n_c)`` per class (so the
    weighted class masses are equal); a dict gives explicit weights.
    """
    if class_weight is None:
        return 1.0, 1.0
    if class_weight == "balanced":
        n = y.shape[0]
        n1 = int(np.sum(y == 1))
        n0 = n - n1
        if n0 == 0 or n1 == 0:
            return 1.0, 1.0
        return n / (2.0 * n0), n / (2.0 * n1)
    if isinstance(class_weight, dict):
        return float(class_weight.get(0, 1.0)), float(class_weight.get(1, 1.0))
    raise ValueError(f"unsupported class_weight {class_weight!r}")


@dataclass
class _NodeArrays:
    """Flat array representation of a built tree (struct-of-arrays)."""

    feature: List[int] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    value: List[float] = field(default_factory=list)  # P(y = 1) at node
    n_samples: List[int] = field(default_factory=list)
    impurity: List[float] = field(default_factory=list)

    def add_node(self, value: float, n_samples: int, impurity: float) -> int:
        """Append a leaf record; returns the new node id."""
        nid = len(self.feature)
        self.feature.append(-1)
        self.threshold.append(np.nan)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(value)
        self.n_samples.append(n_samples)
        self.impurity.append(impurity)
        return nid

    def finalize(self) -> "FrozenTree":
        """Freeze the growth buffers into immutable arrays."""
        return FrozenTree(
            feature=np.asarray(self.feature, dtype=np.int32),
            threshold=np.asarray(self.threshold, dtype=np.float64),
            left=np.asarray(self.left, dtype=np.int32),
            right=np.asarray(self.right, dtype=np.int32),
            value=np.asarray(self.value, dtype=np.float64),
            n_samples=np.asarray(self.n_samples, dtype=np.int64),
            impurity=np.asarray(self.impurity, dtype=np.float64),
        )


@dataclass(frozen=True)
class FrozenTree:
    """Immutable fitted tree; traversal operates on these arrays only."""

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray
    n_samples: np.ndarray
    impurity: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Total node count (branches + leaves)."""
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        """Leaf count (nodes with no split feature)."""
        return int(np.sum(self.feature < 0))

    @property
    def max_depth(self) -> int:
        """Depth of the deepest node (root = 0)."""
        depth = np.zeros(self.n_nodes, dtype=np.int64)
        for nid in range(self.n_nodes):  # parents precede children
            for child in (self.left[nid], self.right[nid]):
                if child >= 0:
                    depth[child] = depth[nid] + 1
        return int(depth.max()) if self.n_nodes else 0

    def predict_proba_positive(self, X: np.ndarray) -> np.ndarray:
        """P(y = 1) per row, by vectorized group traversal."""
        n = X.shape[0]
        out = np.empty(n, dtype=np.float64)
        stack: List[Tuple[int, np.ndarray]] = [(0, np.arange(n))]
        while stack:
            nid, rows = stack.pop()
            f = self.feature[nid]
            if f < 0 or rows.size == 0:
                out[rows] = self.value[nid]
                continue
            go_left = X[rows, f] <= self.threshold[nid]
            stack.append((int(self.left[nid]), rows[go_left]))
            stack.append((int(self.right[nid]), rows[~go_left]))
        return out


def _best_split_for_feature(
    x: np.ndarray, w_pos: np.ndarray, w_neg: np.ndarray, min_leaf_weight: float
) -> Tuple[float, float]:
    """Best (gain_numerator, threshold) of one feature at one node.

    Returns (-inf, nan) when no valid split exists.  The returned "gain"
    is the *unnormalized* impurity decrease ``W·ΔG`` — constant across
    features at a node, so the argmax is unchanged and we avoid a divide.
    """
    order = np.argsort(x, kind="stable")
    xs = x[order]
    cp = np.cumsum(w_pos[order])
    cn = np.cumsum(w_neg[order])
    total_p, total_n = cp[-1], cn[-1]
    total = total_p + total_n

    # candidate boundaries: between strictly increasing consecutive values
    boundary = np.flatnonzero(xs[:-1] < xs[1:])
    if boundary.size == 0:
        return -np.inf, np.nan

    lp, ln = cp[boundary], cn[boundary]
    rp, rn = total_p - lp, total_n - ln
    lw, rw = lp + ln, rp + rn
    valid = (lw >= min_leaf_weight) & (rw >= min_leaf_weight)
    if not valid.any():
        return -np.inf, np.nan

    parent = total * gini_impurity(total_n, total_p)
    children = lw * gini_impurity(ln, lp) + rw * gini_impurity(rn, rp)
    gain = np.where(valid, parent - children, -np.inf)
    best = int(np.argmax(gain))
    thr = 0.5 * (xs[boundary[best]] + xs[boundary[best] + 1])
    return float(gain[best]), float(thr)


class DecisionTreeClassifier:
    """Binary CART with Gini impurity.

    Parameters
    ----------
    max_depth:
        Depth cap (root = depth 0); ``None`` = unbounded.
    min_samples_split / min_samples_leaf:
        Minimum *weighted* sample mass for a node to split / per child.
    max_num_splits:
        Global cap on the number of branch nodes (fitctree's
        ``MaxNumSplits``); growth is breadth-first so shallow splits win.
    max_features:
        Per-node feature subsampling: int, float fraction, "sqrt", "log2"
        or ``None`` (all features).  This is the randomness knob the
        random forest uses.
    min_impurity_decrease:
        Minimum normalized gain ΔG for a split to be accepted.
    class_weight:
        ``None``, ``"balanced"`` or ``{0: w0, 1: w1}``.
    laplace:
        Additive smoothing of leaf probabilities: a leaf with weighted
        class masses (w0, w1) predicts ``(w1 + a) / (w0 + w1 + 2a)``.
        Without it, pure leaves score exactly 0/1 and a single tree's
        scores are too coarse to tune to a FAR budget.
    seed:
        RNG for feature subsampling.
    """

    def __init__(
        self,
        *,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_num_splits: Optional[int] = None,
        max_features: Union[None, int, float, str] = None,
        min_impurity_decrease: float = 0.0,
        class_weight: ClassWeight = None,
        laplace: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        if max_depth is not None:
            check_positive(max_depth, "max_depth")
        check_positive(min_samples_split, "min_samples_split")
        check_positive(min_samples_leaf, "min_samples_leaf")
        if max_num_splits is not None:
            check_positive(max_num_splits, "max_num_splits", strict=False)
        if min_impurity_decrease < 0:
            raise ValueError("min_impurity_decrease must be >= 0")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_num_splits = max_num_splits
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.class_weight = class_weight
        if laplace < 0:
            raise ValueError("laplace must be >= 0")
        self.laplace = float(laplace)
        self._rng = as_generator(seed)
        self.tree_: Optional[FrozenTree] = None
        self.n_features_: Optional[int] = None
        self.feature_importances_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fit
    def _n_candidate_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("float max_features must be in (0, 1]")
            return max(1, int(mf * n_features))
        if isinstance(mf, (int, np.integer)):
            if mf <= 0:
                raise ValueError("int max_features must be > 0")
            return min(int(mf), n_features)
        raise ValueError(f"unsupported max_features {mf!r}")

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "DecisionTreeClassifier":
        """Grow the tree on (X, y); returns self."""
        X = check_array_2d(X, "X", min_rows=1)
        y = check_binary_labels(y, n_rows=X.shape[0])
        n, n_features = X.shape
        self.n_features_ = n_features

        if sample_weight is None:
            weights = np.ones(n, dtype=np.float64)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape != (n,):
                raise ValueError("sample_weight must have one entry per row")
            if np.any(weights < 0):
                raise ValueError("sample_weight must be non-negative")
        w0, w1 = resolve_class_weight(self.class_weight, y)
        weights = weights * np.where(y == 1, w1, w0)

        w_pos = weights * (y == 1)
        w_neg = weights * (y == 0)
        k_features = self._n_candidate_features(n_features)

        nodes = _NodeArrays()
        importances = np.zeros(n_features, dtype=np.float64)
        total_weight = float(weights.sum())

        laplace = self.laplace

        def node_value(rows: np.ndarray) -> Tuple[float, float, float]:
            wp = float(w_pos[rows].sum())
            wn = float(w_neg[rows].sum())
            tw = wp + wn
            prob = (wp + laplace) / (tw + 2.0 * laplace) if tw + laplace > 0 else 0.5
            return prob, tw, float(gini_impurity(wn, wp))

        prob, tw, imp = node_value(np.arange(n))
        root = nodes.add_node(prob, n, imp)
        # breadth-first frontier: (node_id, row indices, depth)
        frontier: List[Tuple[int, np.ndarray, int]] = [(root, np.arange(n), 0)]
        n_splits = 0

        while frontier:
            nid, rows, depth = frontier.pop(0)
            prob, tw, imp = node_value(rows)
            if (
                imp <= 0.0
                or tw < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or (self.max_num_splits is not None and n_splits >= self.max_num_splits)
            ):
                continue

            if k_features < n_features:
                cand = self._rng.choice(n_features, size=k_features, replace=False)
            else:
                cand = np.arange(n_features)

            best_gain, best_thr, best_f = -np.inf, np.nan, -1
            for f in cand:
                gain, thr = _best_split_for_feature(
                    X[rows, f], w_pos[rows], w_neg[rows], self.min_samples_leaf
                )
                if gain > best_gain:
                    best_gain, best_thr, best_f = gain, thr, int(f)

            if best_f < 0 or not np.isfinite(best_gain):
                continue
            normalized_gain = best_gain / tw  # ΔG of Eq. (2)
            if normalized_gain < self.min_impurity_decrease:
                continue

            go_left = X[rows, best_f] <= best_thr
            left_rows, right_rows = rows[go_left], rows[~go_left]
            if left_rows.size == 0 or right_rows.size == 0:
                continue

            lp, ltw, limp = node_value(left_rows)
            rp, rtw, rimp = node_value(right_rows)
            left_id = nodes.add_node(lp, left_rows.size, limp)
            right_id = nodes.add_node(rp, right_rows.size, rimp)
            nodes.feature[nid] = best_f
            nodes.threshold[nid] = best_thr
            nodes.left[nid] = left_id
            nodes.right[nid] = right_id
            importances[best_f] += best_gain / total_weight
            n_splits += 1
            frontier.append((left_id, left_rows, depth + 1))
            frontier.append((right_id, right_rows, depth + 1))

        self.tree_ = nodes.finalize()
        total_imp = importances.sum()
        self.feature_importances_ = (
            importances / total_imp if total_imp > 0 else importances
        )
        return self

    # -------------------------------------------------------------- predict
    def _require_fitted(self) -> FrozenTree:
        if self.tree_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.tree_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``(n, 2)`` array of [P(y=0), P(y=1)] per row."""
        tree = self._require_fitted()
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features_, "X")
        p1 = tree.predict_proba_positive(X)
        return np.column_stack([1.0 - p1, p1])

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """P(y = 1) per row — the score used for FAR-constrained thresholds."""
        return self.predict_proba(X)[:, 1]

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 labels at a score threshold."""
        return (self.predict_score(X) >= threshold).astype(np.int8)

    # ------------------------------------------------------------ inspection
    @property
    def n_nodes(self) -> int:
        """Total node count of the fitted tree."""
        return self._require_fitted().n_nodes

    @property
    def n_leaves(self) -> int:
        """Leaf count of the fitted tree."""
        return self._require_fitted().n_leaves

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (root = 0)."""
        return self._require_fitted().max_depth
