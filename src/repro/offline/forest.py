"""Breiman-style offline random forest.

Bagging (bootstrap resampling expressed as integer sample weights, so no
data copies), per-node feature subsampling via the base CART's
``max_features``, and score aggregation over trees.  Trees are
independent, so fitting and prediction map over a
:class:`~repro.parallel.TreeExecutor`.

The forest's ``predict_score`` is the positive-vote fraction ("soft" =
mean leaf probability, "hard" = mean thresholded vote); the evaluation
harness tunes a threshold over this score to pin FAR near the paper's
1% operating point.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.offline.tree import ClassWeight, DecisionTreeClassifier
from repro.parallel.pool import SerialExecutor, TreeExecutor  # repro: noqa RPR501 — models layer consumes the executor abstraction; pool has no model knowledge, so the inversion would be artificial
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    check_array_2d,
    check_binary_labels,
    check_feature_count,
    check_positive,
)


def _fit_tree(
    payload: Tuple[
        DecisionTreeClassifier,
        np.ndarray,
        np.ndarray,
        Optional[np.random.Generator],
    ]
) -> DecisionTreeClassifier:
    """Worker: bootstrap-weight and fit one tree (picklable payload).

    Module-level so process pools can pickle it; the fitted tree is
    returned because process workers fit a *copy*.  The bootstrap draw
    comes from the tree's own spawned stream, after tree construction —
    the same per-stream draw order as serial fitting, so all executor
    backends produce bit-identical forests.
    """
    tree, X, y, bootstrap_rng = payload
    counts: Optional[np.ndarray] = None
    if bootstrap_rng is not None:
        n = X.shape[0]
        counts = np.bincount(
            bootstrap_rng.integers(0, n, size=n), minlength=n
        ).astype(np.float64)
    tree.fit(X, y, sample_weight=counts)
    return tree


def _score_tree(
    payload: Tuple[DecisionTreeClassifier, np.ndarray, str]
) -> np.ndarray:
    """Worker: positive score rows for one fitted tree (picklable)."""
    tree, X, vote = payload
    p = tree.tree_.predict_proba_positive(X)
    return (p >= 0.5).astype(np.float64) if vote == "hard" else p


class RandomForestClassifier:
    """Bagged forest of Gini CARTs for binary classification.

    Parameters mirror :class:`DecisionTreeClassifier` plus:

    n_trees:
        Ensemble size (the paper uses T = 30).
    vote:
        ``"soft"`` (mean leaf probability; granular scores) or ``"hard"``
        (mean 0/1 vote; what a literal majority vote produces).
    bootstrap:
        Draw a bootstrap resample per tree (standard bagging) when True;
        train every tree on the full set when False.
    executor:
        Optional :class:`TreeExecutor` for parallel fit/predict.
    """

    def __init__(
        self,
        n_trees: int = 30,
        *,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[None, int, float, str] = "sqrt",
        min_impurity_decrease: float = 0.0,
        class_weight: ClassWeight = None,
        vote: str = "soft",
        bootstrap: bool = True,
        seed: SeedLike = None,
        executor: Optional[TreeExecutor] = None,
    ) -> None:
        check_positive(n_trees, "n_trees")
        if vote not in ("soft", "hard"):
            raise ValueError(f"vote must be 'soft' or 'hard', got {vote!r}")
        self.n_trees = int(n_trees)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.class_weight = class_weight
        self.vote = vote
        self.bootstrap = bootstrap
        self._rng = as_generator(seed)
        self._executor = executor or SerialExecutor()
        self.trees_: List[DecisionTreeClassifier] = []
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------ fit
    def _make_tree(self, tree_rng: np.random.Generator) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            min_impurity_decrease=self.min_impurity_decrease,
            class_weight=self.class_weight,
            seed=tree_rng,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit all trees on bootstrap resamples of (X, y); returns self."""
        X = check_array_2d(X, "X", min_rows=1)
        y = check_binary_labels(y, n_rows=X.shape[0])
        self.n_features_ = X.shape[1]
        tree_rngs = self._rng.spawn(self.n_trees)
        payloads = [
            (
                self._make_tree(tree_rng),
                X,
                y,
                tree_rng if self.bootstrap else None,
            )
            for tree_rng in tree_rngs
        ]
        self.trees_ = self._executor.map(_fit_tree, payloads)
        return self

    # -------------------------------------------------------------- predict
    def _require_fitted(self) -> List[DecisionTreeClassifier]:
        if not self.trees_:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.trees_

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """Positive score per row (mean tree probability or vote fraction)."""
        trees = self._require_fitted()
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features_, "X")
        per_tree = self._executor.map(
            _score_tree, [(tree, X, self.vote) for tree in trees]
        )
        return np.mean(per_tree, axis=0)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``(n, 2)`` array of class probabilities (vote-fraction based)."""
        p1 = self.predict_score(X)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at a score threshold (0.5 = plain majority vote)."""
        return (self.predict_score(X) >= threshold).astype(np.int8)

    # ------------------------------------------------------------ inspection
    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean Gini importance over trees (used by §4.2's ranking step)."""
        trees = self._require_fitted()
        return np.mean([t.feature_importances_ for t in trees], axis=0)
