"""FAR-constrained hyper-parameter search.

The paper tunes every baseline the same way (§4.4): *"perform a grid
search to find the parameter combination that produces the highest FDR
with a FAR less than <cap>"*.  This module implements that selection rule
generically: the caller supplies candidate parameter dicts, a fit
function and a scoring function returning ``(fdr, far)``; the search
returns the best candidate under the constraint (falling back to the
lowest-FAR candidate when nothing satisfies the cap, so callers always
get a model).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def expand_grid(param_grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """All combinations of a {name: values} grid, as a list of dicts."""
    if not param_grid:
        return [{}]
    names = sorted(param_grid)
    combos = itertools.product(*(param_grid[n] for n in names))
    return [dict(zip(names, combo)) for combo in combos]


@dataclass
class SearchResult:
    """Outcome of one candidate evaluation."""

    params: Dict[str, Any]
    fdr: float
    far: float
    model: Any = field(repr=False, default=None)

    def satisfies(self, far_cap: float) -> bool:
        """True when this candidate's FAR is within the budget."""
        return self.far <= far_cap


class FarConstrainedSearch:
    """Grid search maximizing FDR subject to ``FAR <= far_cap``.

    Parameters
    ----------
    fit_fn:
        ``fit_fn(params) -> model``; trains one candidate.
    score_fn:
        ``score_fn(model) -> (fdr, far)``; evaluates it (typically on a
        held-out validation split at the disk level).
    far_cap:
        The FAR budget (the paper uses 0.01, i.e. 1%).
    keep_models:
        Retain every fitted model on the results (memory!) instead of
        only the winner.
    """

    def __init__(
        self,
        fit_fn: Callable[[Dict[str, Any]], Any],
        score_fn: Callable[[Any], Tuple[float, float]],
        *,
        far_cap: float = 0.01,
        keep_models: bool = False,
    ) -> None:
        if far_cap < 0:
            raise ValueError(f"far_cap must be >= 0, got {far_cap}")
        self.fit_fn = fit_fn
        self.score_fn = score_fn
        self.far_cap = float(far_cap)
        self.keep_models = keep_models
        self.results_: List[SearchResult] = []
        self.best_: Optional[SearchResult] = None

    def run(self, candidates: Iterable[Dict[str, Any]]) -> SearchResult:
        """Evaluate all candidates and return the winner.

        Selection: among candidates with ``far <= far_cap``, the highest
        FDR (FAR breaks ties, lower first).  If none satisfy the cap, the
        candidate with the lowest FAR wins (highest FDR breaks ties).
        """
        self.results_ = []
        best_model = None
        for params in candidates:
            model = self.fit_fn(dict(params))
            fdr, far = self.score_fn(model)
            result = SearchResult(
                params=dict(params),
                fdr=float(fdr),
                far=float(far),
                model=model if self.keep_models else None,
            )
            self.results_.append(result)
            if self._better(result, self.best_):
                self.best_ = result
                best_model = model
        if self.best_ is None:
            raise ValueError("no candidates were evaluated")
        # always hand back the winning model, even if keep_models is off
        self.best_.model = best_model
        return self.best_

    def run_grid(self, param_grid: Mapping[str, Sequence[Any]]) -> SearchResult:
        """Expand a {name: values} grid and :meth:`run` it."""
        return self.run(expand_grid(param_grid))

    def _better(self, a: SearchResult, b: Optional[SearchResult]) -> bool:
        if b is None:
            return True
        a_ok, b_ok = a.satisfies(self.far_cap), b.satisfies(self.far_cap)
        if a_ok != b_ok:
            return a_ok
        if a_ok:  # both within budget: maximize FDR, then minimize FAR
            return (a.fdr, -a.far) > (b.fdr, -b.far)
        return (-a.far, a.fdr) > (-b.far, b.fdr)  # both over: chase the cap
