"""Gradient Boosted Decision Trees (logistic loss).

The paper's §3.2 argues for ORF over gradient boosting on time
efficiency: boosting rounds are inherently sequential (each tree fits
the previous ensemble's residuals), while forest trees are independent.
This class exists so that claim is *measurable* in this repo (ablation
bench A4) and as one more competitive offline baseline.

Standard binomial-deviance GBM:

* ``F_0 = log(p / (1-p))`` (the prior log-odds);
* each round fits a shallow regression tree to the negative gradient
  ``r = y - sigmoid(F)`` and replaces every leaf value with the Newton
  step ``Σ r / Σ p(1-p)``;
* ``F ← F + learning_rate * tree(x)``; scores are ``sigmoid(F)``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.offline.regression_tree import RegressionTree
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    check_array_2d,
    check_binary_labels,
    check_feature_count,
    check_in_range,
    check_positive,
)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class GradientBoostedTrees:
    """Binary GBM with logistic loss.

    Parameters
    ----------
    n_rounds:
        Boosting rounds (trees); inherently sequential.
    learning_rate:
        Shrinkage ν applied to every tree's contribution.
    max_depth, min_samples_leaf:
        Base regression-tree capacity (shallow trees, GBM-style).
    subsample:
        Row fraction per round (stochastic gradient boosting); 1.0
        disables subsampling.
    """

    def __init__(
        self,
        *,
        n_rounds: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_rounds, "n_rounds")
        check_positive(learning_rate, "learning_rate")
        check_in_range(subsample, "subsample", 0.0, 1.0, inclusive=True)
        if subsample <= 0.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_rounds = int(n_rounds)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self._rng = as_generator(seed)
        self.trees_: List[RegressionTree] = []
        self.f0_: float = 0.0
        self.n_features_: Optional[int] = None
        self.train_deviance_: List[float] = []

    # ------------------------------------------------------------------ fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        """Run the boosting rounds on (X, y); returns self."""
        X = check_array_2d(X, "X", min_rows=2)
        y = check_binary_labels(y, n_rows=X.shape[0]).astype(np.float64)
        if np.unique(y).size < 2:
            raise ValueError("GBDT requires both classes present in y")
        n = X.shape[0]
        self.n_features_ = X.shape[1]

        p0 = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self.f0_ = float(np.log(p0 / (1.0 - p0)))
        F = np.full(n, self.f0_)
        self.trees_ = []
        self.train_deviance_ = []

        for _ in range(self.n_rounds):
            p = _sigmoid(F)
            residual = y - p
            hessian = np.maximum(p * (1.0 - p), 1e-12)

            if self.subsample < 1.0:
                m = max(2, int(self.subsample * n))
                rows = self._rng.choice(n, size=m, replace=False)
            else:
                rows = np.arange(n)

            res_view = residual[rows]
            hess_view = hessian[rows]

            def newton_leaf(leaf_rows: np.ndarray) -> float:
                return float(res_view[leaf_rows].sum() / hess_view[leaf_rows].sum())

            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self._rng.spawn(1)[0],
            )
            tree.fit(X[rows], res_view, leaf_value_fn=newton_leaf)
            self.trees_.append(tree)
            F += self.learning_rate * tree.predict(X)
            # binomial deviance, for convergence inspection/tests
            p = np.clip(_sigmoid(F), 1e-12, 1 - 1e-12)
            self.train_deviance_.append(
                float(-2.0 * np.mean(y * np.log(p) + (1 - y) * np.log(1 - p)))
            )
        return self

    # -------------------------------------------------------------- predict
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw log-odds per row."""
        if not self.trees_:
            raise RuntimeError("model is not fitted; call fit() first")
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features_, "X")
        F = np.full(X.shape[0], self.f0_)
        for tree in self.trees_:
            F += self.learning_rate * tree.predict(X)
        return F

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """P(y = 1) per row."""
        return _sigmoid(self.decision_function(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``(n, 2)`` array of class probabilities."""
        p1 = self.predict_score(X)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 labels at a probability threshold."""
        return (self.predict_score(X) >= threshold).astype(np.int8)
