"""The vendor SMART threshold algorithm — the baseline the field started from.

§2 of the paper: "The anomaly detection method used by SMART is [a]
simple threshold-based algorithm, which triggers a system warning when
any SMART attribute exceeds its predefined threshold.  These thresholds
are set conservatively by manufacturers to avoid false alarms at the
expense of prediction accuracy. ... this technology achieves poor FDRs
of 3-10%."

This class implements that exact mechanism over the library's feature
layout: a drive alarms when any monitored Norm value falls to or below
its vendor threshold (vendor Norms *decrease* toward the threshold as
health degrades).  It has no training in the ML sense — ``fit`` only
records which columns are Norms — but it exposes ``predict_score`` so
the evaluation harness treats it like every other model, and the B0
bench reproduces the order-of-magnitude FDR gap to the learned models.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from repro.utils.validation import check_array_2d, check_feature_count

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.features.selection import FeatureSelection

#: conservative vendor thresholds (Norm scale, 1-100 in this simulator) —
#: modeled on typical Seagate threshold bytes for these attributes
DEFAULT_VENDOR_THRESHOLDS: Dict[int, float] = {
    1: 60.0,     # Read Error Rate
    5: 40.0,     # Reallocated Sectors Count
    7: 65.0,     # Seek Error Rate
    10: 80.0,    # Spin Retry Count
    184: 50.0,   # End-to-End Error
    187: 25.0,   # Reported Uncorrectable Errors
    197: 35.0,   # Current Pending Sector Count
    198: 35.0,   # Uncorrectable Sector Count
}
# Calibrated to this simulator's Norm formulas the way manufacturers
# calibrate to their drives: each threshold sits below every healthy
# drive's lifetime minimum (no false alarms by construction) and below
# all but the most catastrophic failure signatures — which is exactly
# what makes the rule "conservative ... at the expense of prediction
# accuracy" (§2) and yields the single-digit FDRs the paper cites.


class SmartThresholdDetector:
    """Any-attribute-below-threshold alarm, on Norm columns only.

    Parameters
    ----------
    selection:
        The feature selection whose column layout incoming matrices use
        (defaults to the paper's Table 2).
    vendor_thresholds:
        ``{smart_id: norm_threshold}``; attributes absent from the map
        never alarm.
    """

    def __init__(
        self,
        *,
        selection: Optional[FeatureSelection] = None,
        vendor_thresholds: Optional[Dict[int, float]] = None,
    ) -> None:
        if selection is None:
            from repro.features.selection import FeatureSelection

            selection = FeatureSelection.paper_table2()
        self.selection = selection
        self.vendor_thresholds = dict(
            DEFAULT_VENDOR_THRESHOLDS
            if vendor_thresholds is None
            else vendor_thresholds
        )
        # map selected columns -> thresholds (Norm columns only)
        self._columns: list = []
        self._limits: list = []
        for pos, name in enumerate(self.selection.names):
            if not name.endswith("_normalized"):
                continue
            smart_id = int(name.split("_")[1])
            if smart_id in self.vendor_thresholds:
                self._columns.append(pos)
                self._limits.append(float(self.vendor_thresholds[smart_id]))
        self._columns = np.asarray(self._columns, dtype=np.int64)
        self._limits = np.asarray(self._limits, dtype=np.float64)

    @property
    def n_monitored(self) -> int:
        """Number of Norm columns the rule watches."""
        return int(self._columns.size)

    def fit(self, X: Optional[np.ndarray] = None, y: Optional[np.ndarray] = None) -> "SmartThresholdDetector":
        """No-op (the vendor rule has no parameters to learn).

        Exists for API parity with the learned models; validates the
        column layout when a matrix is passed.
        """
        if X is not None:
            X = check_array_2d(X, "X", min_rows=1)
            check_feature_count(X, len(self.selection.names), "X")
        return self

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """Fraction of monitored attributes at/below their threshold.

        IMPORTANT: *X must carry raw (unscaled) Norm values* — the
        vendor thresholds are absolute Norm bytes; min-max-scaled
        features would warp them.  Project the dataset directly
        (``selection.apply(dataset.X)``) instead of feeding the scaled
        matrices the learned models use.

        0 = no attribute tripped; the vendor rule's hard alarm is
        ``score > 0`` (any attribute), but exposing the fraction gives
        the harness's threshold tuner something to work with.
        """
        X = check_array_2d(X, "X")
        check_feature_count(X, len(self.selection.names), "X")
        if self._columns.size == 0:
            return np.zeros(X.shape[0])
        tripped = X[:, self._columns] <= self._limits[None, :]
        return tripped.mean(axis=1)

    def predict(self, X: np.ndarray, *, threshold: float = 1e-9) -> np.ndarray:
        """The vendor rule: alarm when any monitored attribute trips.

        Inclusive comparison, like every other model's ``predict``: a
        disk scoring exactly at the threshold alarms.  The default sits
        below any achievable trip fraction (1/n_attributes), so the
        vendor rule itself is unchanged — only explicitly supplied
        boundary thresholds behave consistently now.
        """
        return (self.predict_score(X) >= threshold).astype(np.int8)
