"""Regression CART (variance-reduction splits) — the GBDT base learner.

Same struct-of-arrays design and vectorized split search as the
classification tree, but targets are continuous: a split minimizes the
weighted sum of child variances, and leaves store a value supplied by
the caller (plain mean for least squares; a Newton step for the
logistic-loss boosting in :mod:`repro.offline.gbdt`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.offline.tree import FrozenTree, _NodeArrays
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array_2d, check_feature_count, check_positive

#: leaf_value_fn(rows) -> float; defaults to the plain target mean
LeafValueFn = Callable[[np.ndarray], float]


def _best_regression_split(
    x: np.ndarray, targets: np.ndarray, min_leaf: int
) -> Tuple[float, float]:
    """Best (SSE reduction, threshold) of one feature at one node.

    Uses the prefix-sum identity ``SSE = Σt² - (Σt)²/n`` so the scan over
    all candidate boundaries is fully vectorized.  Returns (-inf, nan)
    when no valid split exists.
    """
    order = np.argsort(x, kind="stable")
    xs = x[order]
    ts = targets[order]
    n = xs.shape[0]

    boundary = np.flatnonzero(xs[:-1] < xs[1:])
    if boundary.size == 0:
        return -np.inf, np.nan

    csum = np.cumsum(ts)
    csq = np.cumsum(ts * ts)
    total_sum, total_sq = csum[-1], csq[-1]

    nl = boundary + 1
    nr = n - nl
    valid = (nl >= min_leaf) & (nr >= min_leaf)
    if not valid.any():
        return -np.inf, np.nan

    ls, lq = csum[boundary], csq[boundary]
    rs, rq = total_sum - ls, total_sq - lq
    sse_children = (lq - ls * ls / nl) + (rq - rs * rs / nr)
    sse_parent = total_sq - total_sum * total_sum / n
    gain = np.where(valid, sse_parent - sse_children, -np.inf)
    best = int(np.argmax(gain))
    thr = 0.5 * (xs[boundary[best]] + xs[boundary[best] + 1])
    return float(gain[best]), float(thr)


class RegressionTree:
    """CART for continuous targets.

    Parameters
    ----------
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Capacity controls with the same semantics as the classification
        tree (sample counts here are unweighted row counts).
    leaf_value_fn:
        Optional override of the leaf value: receives the row indices of
        a leaf and returns its prediction.  Boosting passes a Newton
        step here; ``None`` uses the target mean.
    """

    def __init__(
        self,
        *,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive(max_depth, "max_depth")
        check_positive(min_samples_split, "min_samples_split")
        check_positive(min_samples_leaf, "min_samples_leaf")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self._rng = as_generator(seed)
        self.tree_: Optional[FrozenTree] = None
        self.n_features_: Optional[int] = None

    def fit(
        self,
        X: np.ndarray,
        targets: np.ndarray,
        *,
        leaf_value_fn: Optional[LeafValueFn] = None,
    ) -> "RegressionTree":
        """Grow the tree on continuous targets; returns self."""
        X = check_array_2d(X, "X", min_rows=1)
        targets = np.asarray(targets, dtype=np.float64)
        if targets.shape != (X.shape[0],):
            raise ValueError("targets must have one entry per row")
        n, n_features = X.shape
        self.n_features_ = n_features
        if leaf_value_fn is None:
            leaf_value_fn = lambda rows: float(targets[rows].mean())
        k = (
            min(int(self.max_features), n_features)
            if self.max_features is not None
            else n_features
        )

        nodes = _NodeArrays()
        root = nodes.add_node(leaf_value_fn(np.arange(n)), n, float(targets.var()))
        frontier: List[Tuple[int, np.ndarray, int]] = [(root, np.arange(n), 0)]

        while frontier:
            nid, rows, depth = frontier.pop(0)
            if depth >= self.max_depth or rows.size < self.min_samples_split:
                continue
            if k < n_features:
                cand = self._rng.choice(n_features, size=k, replace=False)
            else:
                cand = np.arange(n_features)
            best_gain, best_thr, best_f = -np.inf, np.nan, -1
            for f in cand:
                gain, thr = _best_regression_split(
                    X[rows, f], targets[rows], self.min_samples_leaf
                )
                if gain > best_gain:
                    best_gain, best_thr, best_f = gain, thr, int(f)
            if best_f < 0 or best_gain <= 1e-12:
                continue
            go_left = X[rows, best_f] <= best_thr
            left_rows, right_rows = rows[go_left], rows[~go_left]
            if left_rows.size == 0 or right_rows.size == 0:
                continue
            left_id = nodes.add_node(
                leaf_value_fn(left_rows), left_rows.size, float(targets[left_rows].var())
            )
            right_id = nodes.add_node(
                leaf_value_fn(right_rows), right_rows.size, float(targets[right_rows].var())
            )
            nodes.feature[nid] = best_f
            nodes.threshold[nid] = best_thr
            nodes.left[nid] = left_id
            nodes.right[nid] = right_id
            frontier.append((left_id, left_rows, depth + 1))
            frontier.append((right_id, right_rows, depth + 1))

        self.tree_ = nodes.finalize()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf value per row (vectorized group traversal)."""
        if self.tree_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features_, "X")
        return self.tree_.predict_proba_positive(X)  # same traversal, any value
