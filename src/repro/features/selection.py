"""The complete §4.2 feature-selection pipeline.

``select_features`` chains the rank-sum filter, RF contribution ranking
and redundancy elimination over the 48 candidate columns and returns a
:class:`FeatureSelection` that downstream code (and the Table-2 bench)
can inspect or apply.  The paper's published selection is available as
:func:`FeatureSelection.paper_table2` for experiments that should match
the paper's configuration exactly rather than re-derive it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.features.importance import (
    correlation_redundancy_filter,
    rf_contribution_ranking,
)
from repro.features.ranksum import rank_sum_filter
from repro.smart.attributes import (
    SELECTED_FEATURES,
    candidate_feature_names,
    selected_feature_indices,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array_2d, check_binary_labels


@dataclass(frozen=True)
class FeatureSelection:
    """An ordered choice of candidate-feature columns.

    ``indices`` index into the 48-wide candidate layout; ``names`` are
    the matching Backblaze-style column names.  ``survived_ranksum``
    records stage-1 survivors (for the Table-2 bench's narrative).
    """

    indices: np.ndarray
    names: List[str]
    survived_ranksum: Optional[np.ndarray] = None
    importances: Optional[np.ndarray] = None

    @property
    def n_features(self) -> int:
        """Number of selected feature columns."""
        return int(self.indices.shape[0])

    def apply(self, X_candidates: np.ndarray) -> np.ndarray:
        """Project a (n, 48) candidate matrix onto the selected columns."""
        X_candidates = check_array_2d(X_candidates, "X_candidates")
        return X_candidates[:, self.indices]

    @staticmethod
    def paper_table2() -> "FeatureSelection":
        """The paper's published 19-feature selection (Table 2)."""
        idx = np.asarray(selected_feature_indices(SELECTED_FEATURES), dtype=int)
        all_names = candidate_feature_names()
        return FeatureSelection(
            indices=idx, names=[all_names[i] for i in idx]
        )


def select_features(
    X_candidates: np.ndarray,
    y: np.ndarray,
    *,
    alpha: float = 0.01,
    max_abs_correlation: float = 0.95,
    max_features: Optional[int] = None,
    n_trees: int = 20,
    seed: SeedLike = None,
) -> FeatureSelection:
    """Run the full three-stage pipeline on labeled candidate features.

    Parameters mirror the stages: ``alpha`` gates the rank-sum filter,
    ``max_abs_correlation``/``max_features`` the redundancy elimination,
    ``n_trees`` the contribution-ranking forest.
    """
    X_candidates = check_array_2d(X_candidates, "X_candidates", min_rows=2)
    y = check_binary_labels(y, n_rows=X_candidates.shape[0])
    rng = as_generator(seed)

    keep_mask = rank_sum_filter(
        X_candidates, y, alpha=alpha, seed=rng.spawn(1)[0]
    )
    survivors = np.flatnonzero(keep_mask)
    if survivors.size == 0:
        raise ValueError(
            "rank-sum filter rejected every feature; the labels carry no signal"
        )

    X_surv = X_candidates[:, survivors]
    order, importances = rf_contribution_ranking(
        X_surv, y, n_trees=n_trees, seed=rng.spawn(1)[0]
    )
    kept_local = correlation_redundancy_filter(
        X_surv,
        order,
        max_abs_correlation=max_abs_correlation,
        max_features=max_features,
    )
    kept_global = survivors[kept_local]

    all_names = candidate_feature_names()
    full_importances = np.zeros(X_candidates.shape[1])
    full_importances[survivors] = importances
    return FeatureSelection(
        indices=kept_global,
        names=[all_names[i] for i in kept_global],
        survived_ranksum=survivors,
        importances=full_importances,
    )
