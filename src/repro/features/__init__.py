"""Feature selection and scaling — §4.2 of the paper.

The pipeline has three stages, mirrored one-to-one here:

1. :mod:`~repro.features.ranksum` — a from-scratch Wilcoxon rank-sum
   test filters candidate features that cannot distinguish failed from
   healthy samples;
2. :mod:`~repro.features.importance` — random-forest contribution
   ranking plus correlation-based redundancy elimination picks the
   final feature set (the paper lands on 19 of 48);
3. :mod:`~repro.features.scaling` — min-max normalization to [0, 1]
   (Eq. 5), fitted per drive model on training data only.
"""

from repro.features.importance import (
    correlation_redundancy_filter,
    rf_contribution_ranking,
)
from repro.features.ranksum import rank_sum_filter, wilcoxon_rank_sum
from repro.features.scaling import MinMaxScaler
from repro.features.selection import FeatureSelection, select_features
from repro.features.temporal import add_change_rates, per_drive_change_rates

__all__ = [
    "wilcoxon_rank_sum",
    "rank_sum_filter",
    "rf_contribution_ranking",
    "correlation_redundancy_filter",
    "MinMaxScaler",
    "FeatureSelection",
    "select_features",
    "add_change_rates",
    "per_drive_change_rates",
]
