"""Distribution-shift diagnostics — the paper's §1 preliminary experiment.

The paper's root-cause analysis for model aging: "the sequentially
collected data will gradually change the underlying distribution of
cumulative SMART attributes", naming Reallocated Sectors Count and
Power-On Hours as the moving targets.  This module quantifies that
claim on any dataset:

* :func:`ks_distance` — two-sample Kolmogorov-Smirnov statistic (from
  scratch, vectorized);
* :func:`population_stability_index` — the PSI score model-risk teams
  use for the same question;
* :func:`monthly_feature_shift` — per-month KS distance of one feature
  against a reference window;
* :func:`cumulative_shift_report` — per-attribute drift summary split
  by the cumulative/non-cumulative taxonomy, directly testing the
  paper's root-cause statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.smart.attributes import ALL_ATTRIBUTES, feature_index
from repro.smart.dataset import SmartDataset
from repro.utils.validation import check_positive


def ks_distance(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample KS statistic ``sup_x |F_a(x) - F_b(x)|`` in [0, 1].

    Degenerate inputs (either sample empty) return NaN.
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(sample_b, dtype=np.float64).ravel())
    if a.size == 0 or b.size == 0:
        return float("nan")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def population_stability_index(
    expected: np.ndarray,
    actual: np.ndarray,
    *,
    n_bins: int = 10,
    epsilon: float = 1e-4,
) -> float:
    """PSI of *actual* against *expected*, binned on expected's quantiles.

    Common reading: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 major
    shift (retrain).  Returns NaN on degenerate inputs.
    """
    check_positive(n_bins, "n_bins")
    exp = np.asarray(expected, dtype=np.float64).ravel()
    act = np.asarray(actual, dtype=np.float64).ravel()
    if exp.size == 0 or act.size == 0:
        return float("nan")
    edges = np.quantile(exp, np.linspace(0, 1, n_bins + 1))
    edges = np.unique(edges)
    if edges.size < 2:
        return 0.0  # constant reference feature: nothing can shift
    edges[0], edges[-1] = -np.inf, np.inf
    p_exp = np.histogram(exp, bins=edges)[0] / exp.size
    p_act = np.histogram(act, bins=edges)[0] / act.size
    p_exp = np.maximum(p_exp, epsilon)
    p_act = np.maximum(p_act, epsilon)
    return float(np.sum((p_act - p_exp) * np.log(p_act / p_exp)))


def monthly_feature_shift(
    values: np.ndarray,
    months: np.ndarray,
    *,
    reference_months: Sequence[int],
) -> Dict[int, float]:
    """Per-month KS distance of one feature vs. a reference window.

    Returns ``{month: ks}`` for every month outside the reference.
    """
    values = np.asarray(values, dtype=np.float64)
    months = np.asarray(months)
    if values.shape != months.shape:
        raise ValueError("values and months must align")
    ref_mask = np.isin(months, list(reference_months))
    if not ref_mask.any():
        raise ValueError("reference window contains no rows")
    reference = values[ref_mask]
    out: Dict[int, float] = {}
    for month in np.unique(months):
        if month in reference_months:
            continue
        out[int(month)] = ks_distance(reference, values[months == month])
    return out


@dataclass(frozen=True)
class AttributeShift:
    """Drift summary of one SMART attribute's raw value."""

    smart_id: int
    name: str
    cumulative: bool
    ks_final: float   # KS of the last month vs the reference window
    ks_mean: float    # mean KS over all post-reference months
    psi_final: float


def cumulative_shift_report(
    dataset: SmartDataset,
    *,
    reference_months: Optional[Sequence[int]] = None,
    healthy_only: bool = True,
) -> Tuple[List[AttributeShift], float, float]:
    """Quantify each attribute's distribution drift over the dataset.

    Returns ``(per_attribute, mean_ks_cumulative, mean_ks_transient)``.
    The paper's preliminary claim holds when the cumulative mean exceeds
    the transient mean (cumulative counters are what drift).

    ``healthy_only`` restricts to good drives' rows so failure ramps do
    not masquerade as population drift.
    """
    if reference_months is None:
        reference_months = range(0, min(6, dataset.duration_months))
    months = dataset.months
    if healthy_only:
        keep = ~np.isin(dataset.serials, dataset.failed_serials)
    else:
        keep = np.ones(dataset.n_rows, dtype=bool)

    report: List[AttributeShift] = []
    for attr in ALL_ATTRIBUTES:
        col = feature_index(attr.id, "raw")
        values = dataset.X[keep, col].astype(np.float64)
        m = months[keep]
        shifts = monthly_feature_shift(
            values, m, reference_months=reference_months
        )
        if not shifts:
            continue
        last_month = max(shifts)
        ref_mask = np.isin(m, list(reference_months))
        psi = population_stability_index(
            values[ref_mask], values[m == last_month]
        )
        report.append(
            AttributeShift(
                smart_id=attr.id,
                name=attr.name,
                cumulative=attr.cumulative,
                ks_final=shifts[last_month],
                ks_mean=float(np.mean(list(shifts.values()))),
                psi_final=psi,
            )
        )

    cum = [r.ks_final for r in report if r.cumulative and np.isfinite(r.ks_final)]
    tra = [r.ks_final for r in report if not r.cumulative and np.isfinite(r.ks_final)]
    mean_cum = float(np.mean(cum)) if cum else float("nan")
    mean_tra = float(np.mean(tra)) if tra else float("nan")
    report.sort(key=lambda r: -(r.ks_final if np.isfinite(r.ks_final) else -1))
    return report, mean_cum, mean_tra
