"""Wilcoxon rank-sum (Mann-Whitney U) test, from scratch.

The paper (following Hughes et al.) uses the rank-sum test to drop
candidate features whose positive- and negative-sample distributions are
indistinguishable — SMART attributes are heavily non-parametric, so a
t-test would be inappropriate.

The implementation uses the normal approximation with tie correction
(sample sizes here are far beyond the exact-table regime) and midranks
computed via :func:`scipy.stats.rankdata`-equivalent pure NumPy code, so
the module has no SciPy dependency to keep (and tests cross-check it
against :func:`scipy.stats.mannwhitneyu`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class RankSumResult:
    """Outcome of a two-sided rank-sum test."""

    u_statistic: float
    z_score: float
    p_value: float

    def significant(self, alpha: float = 0.01) -> bool:
        """True when the two samples differ at level *alpha*."""
        return self.p_value < alpha


def _midranks(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties assigned the group mean rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.shape[0], dtype=np.float64)
    sorted_vals = values[order]
    # group boundaries of equal runs
    boundaries = np.flatnonzero(sorted_vals[1:] != sorted_vals[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [values.shape[0]]])
    for s, e in zip(starts, ends):
        ranks[order[s:e]] = 0.5 * (s + 1 + e)  # mean of ranks s+1 .. e
    return ranks


def wilcoxon_rank_sum(sample_a: np.ndarray, sample_b: np.ndarray) -> RankSumResult:
    """Two-sided Mann-Whitney U test of ``sample_a`` vs ``sample_b``.

    Returns the U statistic of ``sample_a``, the tie-corrected z-score
    and the two-sided normal-approximation p-value.  Degenerate inputs
    (either sample empty, or all values identical) return p = 1 so the
    caller's filter simply rejects the feature.
    """
    a = np.asarray(sample_a, dtype=np.float64).ravel()
    b = np.asarray(sample_b, dtype=np.float64).ravel()
    n1, n2 = a.shape[0], b.shape[0]
    if n1 == 0 or n2 == 0:
        return RankSumResult(float("nan"), 0.0, 1.0)

    combined = np.concatenate([a, b])
    if np.all(combined == combined[0]):
        return RankSumResult(n1 * n2 / 2.0, 0.0, 1.0)

    ranks = _midranks(combined)
    r1 = ranks[:n1].sum()
    u1 = r1 - n1 * (n1 + 1) / 2.0

    n = n1 + n2
    mean_u = n1 * n2 / 2.0
    # tie correction to the variance
    _, tie_counts = np.unique(combined, return_counts=True)
    tie_term = float(np.sum(tie_counts**3 - tie_counts))
    var_u = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var_u <= 0:
        return RankSumResult(u1, 0.0, 1.0)

    # continuity correction, matching scipy's default
    z = (u1 - mean_u - math.copysign(0.5, u1 - mean_u)) / math.sqrt(var_u)
    p = 2.0 * (1.0 - _std_normal_cdf(abs(z)))
    return RankSumResult(float(u1), float(z), float(min(max(p, 0.0), 1.0)))


def _std_normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def rank_sum_filter(
    X: np.ndarray,
    y: np.ndarray,
    *,
    alpha: float = 0.01,
    max_samples_per_class: int = 20000,
    seed: SeedLike = None,
) -> np.ndarray:
    """Boolean keep-mask over columns of X: True ⇔ the feature separates classes.

    Large classes are subsampled to ``max_samples_per_class`` rows before
    testing (the test is O(n log n) per feature and the negative class
    can be enormous); the subsample is seeded for reproducibility.
    """
    from repro.utils.rng import as_generator
    from repro.utils.validation import check_array_2d, check_binary_labels

    X = check_array_2d(X, "X", min_rows=2)
    y = check_binary_labels(y, n_rows=X.shape[0])
    rng = as_generator(seed)

    pos_idx = np.flatnonzero(y == 1)
    neg_idx = np.flatnonzero(y == 0)
    if pos_idx.size > max_samples_per_class:
        pos_idx = rng.choice(pos_idx, size=max_samples_per_class, replace=False)
    if neg_idx.size > max_samples_per_class:
        neg_idx = rng.choice(neg_idx, size=max_samples_per_class, replace=False)

    keep = np.zeros(X.shape[1], dtype=bool)
    for j in range(X.shape[1]):
        result = wilcoxon_rank_sum(X[pos_idx, j], X[neg_idx, j])
        keep[j] = result.significant(alpha)
    return keep
