"""Min-max feature scaling — Eq. (5) of the paper.

Fitted on training rows only (per drive model) and applied to everything
downstream, so features with wildly different spans (Power-On Hours in
tens of thousands vs. Norm values in [1, 100]) do not bias the models.
Transforms are pure NumPy broadcasts; no copies beyond the output array.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_array_2d, check_feature_count


class MinMaxScaler:
    """Map each feature to [0, 1] by its training min/max.

    Constant features map to 0.  With ``clip=True`` (default), values
    outside the training range — which *will* occur under distribution
    drift, e.g. Power-On Hours beyond anything seen in training — are
    clipped into [0, 1]; with ``clip=False`` they extrapolate linearly
    (what a naive deployment does, and part of why stale offline models
    misbehave).
    """

    def __init__(self, *, clip: bool = True) -> None:
        self.clip = clip
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        """Record per-feature min and range from training rows."""
        X = check_array_2d(X, "X", min_rows=1)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        # constant features: keep range 1 so the transform maps them to 0
        self.range_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply Eq. (5); returns a new float64 array."""
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        X = check_array_2d(X, "X")
        check_feature_count(X, self.min_.shape[0], "X")
        out = (X - self.min_) / self.range_
        if self.clip:
            np.clip(out, 0.0, 1.0, out=out)
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on *X* and return its scaled copy."""
        return self.fit(X).transform(X)

    def transform_one(self, x: np.ndarray) -> np.ndarray:
        """Scale a single sample vector (streaming path)."""
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        out = (np.asarray(x, dtype=np.float64) - self.min_) / self.range_
        if self.clip:
            np.clip(out, 0.0, 1.0, out=out)
        return out
