"""Temporal (change-rate) feature augmentation.

Wang et al. (the paper's ref [11]) improved the SVM predictor by
"attaching the change rates of SMART attributes as explanatory
variables".  Degradation is a *process* — the reallocation counter's
slope carries signal its level doesn't (a lemon drive with 80 remapped
sectors accrued over two years looks very different from a dying drive
that remapped 80 this week).

:func:`add_change_rates` appends, per selected source column, the
difference of the current value against the drive's value ``window``
days earlier (0 for the first samples of a drive).  It operates on the
flat per-row arrays, grouped by serial, fully vectorized within each
drive.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_array_2d, check_positive


def per_drive_change_rates(
    values: np.ndarray,
    days: np.ndarray,
    *,
    window_days: int = 7,
) -> np.ndarray:
    """Change of each row's value vs. the same drive ``window`` days back.

    ``values``/``days`` belong to ONE drive, already day-ordered.  For
    each row i the reference is the latest row j with
    ``days[j] <= days[i] - window_days``; rows with no such history get 0.
    Rates are per-day (difference divided by the actual day gap), so
    irregular sampling does not distort the magnitude.
    """
    check_positive(window_days, "window_days")
    values = np.asarray(values, dtype=np.float64)
    days = np.asarray(days)
    n = values.shape[0]
    if n == 0:
        return values.copy()
    ref = np.searchsorted(days, days - window_days, side="right") - 1
    has_ref = ref >= 0
    out = np.zeros(n, dtype=np.float64)
    idx = np.flatnonzero(has_ref)
    if idx.size:
        gaps = (days[idx] - days[ref[idx]]).astype(np.float64)
        gaps = np.maximum(gaps, 1.0)
        out[idx] = (values[idx] - values[ref[idx]]) / gaps
    return out


def add_change_rates(
    X: np.ndarray,
    serials: np.ndarray,
    days: np.ndarray,
    *,
    source_columns: Optional[Sequence[int]] = None,
    window_days: int = 7,
) -> Tuple[np.ndarray, np.ndarray]:
    """Append per-day change-rate columns to a per-row feature matrix.

    Rows may arrive in any order; they are grouped by ``serials`` and
    ordered by ``days`` internally, and the output aligns with the input
    rows.  Returns ``(X_augmented, new_column_sources)`` where the second
    array maps each appended column back to its source column index.
    """
    X = check_array_2d(X, "X")
    serials = np.asarray(serials)
    days = np.asarray(days)
    if serials.shape[0] != X.shape[0] or days.shape[0] != X.shape[0]:
        raise ValueError("serials and days must align with X rows")
    cols = (
        np.arange(X.shape[1])
        if source_columns is None
        else np.asarray(list(source_columns), dtype=np.int64)
    )
    if cols.size and (cols.min() < 0 or cols.max() >= X.shape[1]):
        raise ValueError("source_columns out of range")

    rates = np.zeros((X.shape[0], cols.size), dtype=np.float64)
    order = np.lexsort((days, serials))
    sorted_serials = serials[order]
    boundaries = np.flatnonzero(np.diff(sorted_serials)) + 1
    for group in np.split(order, boundaries):
        d = days[group]
        for j, col in enumerate(cols):
            rates[group, j] = per_drive_change_rates(
                X[group, col], d, window_days=window_days
            )
    return np.hstack([X, rates]), cols
