"""Feature contribution ranking and redundancy elimination.

Stage 2 of the paper's §4.2: after the rank-sum filter, the surviving
features are ranked by how much they contribute to an RF failure
detector, and redundant ones (nine, in the paper) are dropped.  We
implement the ranking as mean Gini importance of a balanced random
forest, and redundancy elimination as greedy correlation clustering —
walk the ranking top-down and drop any feature too correlated with an
already-kept, better-ranked one.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.offline.forest import RandomForestClassifier  # repro: noqa RPR501 — §4.2's contribution ranking is *defined* as RF Gini importance; the feature stage legitimately consumes the offline model it ranks with
from repro.offline.sampling import downsample_dataset  # repro: noqa RPR501 — the ranking forest trains on the paper's 1:3 downsample; sampling lives beside the model it feeds
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array_2d, check_binary_labels


def rf_contribution_ranking(
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_trees: int = 20,
    neg_sample_ratio: float = 3.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Rank features by RF Gini importance on a λ-balanced training set.

    Returns ``(order, importances)``: ``order`` is feature indices from
    most to least important; ``importances`` aligns with the original
    columns.
    """
    X = check_array_2d(X, "X", min_rows=2)
    y = check_binary_labels(y, n_rows=X.shape[0])
    rng = as_generator(seed)
    Xb, yb = downsample_dataset(X, y, neg_sample_ratio, rng.spawn(1)[0])
    forest = RandomForestClassifier(
        n_trees=n_trees, max_features="sqrt", min_samples_leaf=5, seed=rng.spawn(1)[0]
    ).fit(Xb, yb)
    importances = forest.feature_importances_
    order = np.argsort(-importances, kind="stable")
    return order, importances


def correlation_redundancy_filter(
    X: np.ndarray,
    order: np.ndarray,
    *,
    max_abs_correlation: float = 0.95,
    max_features: Optional[int] = None,
) -> np.ndarray:
    """Greedy redundancy elimination along an importance ranking.

    Walks ``order`` best-first; a feature is kept unless its absolute
    Pearson correlation with any already-kept feature exceeds
    ``max_abs_correlation``.  Constant features are never kept (their
    correlation is undefined and they carry no signal).  Returns kept
    feature indices in ranking order.
    """
    if not 0.0 < max_abs_correlation <= 1.0:
        raise ValueError("max_abs_correlation must be in (0, 1]")
    X = check_array_2d(X, "X", min_rows=2)
    stds = X.std(axis=0)
    kept: list = []
    for j in np.asarray(order, dtype=int):
        if stds[j] == 0:
            continue
        redundant = False
        for k in kept:
            c = np.corrcoef(X[:, j], X[:, k])[0, 1]
            if np.isfinite(c) and abs(c) > max_abs_correlation:
                redundant = True
                break
        if not redundant:
            kept.append(int(j))
        if max_features is not None and len(kept) >= max_features:
            break
    return np.asarray(kept, dtype=int)
