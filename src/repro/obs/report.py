"""Trace summaries: per-stage latency percentiles and slowest spans.

The raw span ring a :class:`~repro.obs.tracing.Tracer` accumulates is
too granular for a human; this module reduces it to the two artifacts
an operator actually reads:

* a **per-stage table** — count, items, total seconds, p50/p95/p99/max
  latency, items/s — the "where does the time go" answer;
* a **slowest-span table** — the individual worst executions, with
  their parent stage, for chasing outliers (one slow checkpoint, one
  pathological shard bucket).

Traces serialize to a small JSON document (``trace_payload`` /
``write_trace`` / ``load_trace``) so ``repro serve --trace-out`` can
hand a file to ``repro trace-report`` — or to a dashboard — after the
process is gone.  Everything here is stdlib-only and pure: summaries of
fake-clock spans are bit-reproducible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.tracing import Span

__all__ = [
    "TRACE_FORMAT",
    "percentile",
    "stage_summary",
    "slowest_spans",
    "trace_payload",
    "write_trace",
    "load_trace",
    "format_stage_table",
    "format_slowest_table",
    "format_trace_report",
]

#: trace-file schema version (bump on breaking payload changes)
TRACE_FORMAT = 1

PathLike = Union[str, Path]


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0-100) with linear interpolation.

    Matches ``numpy.percentile``'s default method so the stage tables
    agree with any downstream numpy analysis; NaN for an empty input.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not values:
        return float("nan")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def stage_summary(spans: Sequence[Span]) -> Dict[str, Dict[str, float]]:
    """Reduce spans to per-stage stats, keyed by stage name.

    Each entry carries ``count``, ``items``, ``total_seconds``,
    ``mean_seconds``, ``p50_seconds``, ``p95_seconds``, ``p99_seconds``,
    ``max_seconds``, and ``items_per_sec`` (NaN when the stage recorded
    no time — throughput of an instantaneous stage is undefined, not
    infinite).  Stages appear in first-seen order, which for the serving
    path reads as the pipeline order.
    """
    durations: Dict[str, List[float]] = {}
    items: Dict[str, int] = {}
    for span in spans:
        durations.setdefault(span.name, []).append(float(span.duration))
        items[span.name] = items.get(span.name, 0) + int(span.items)
    out: Dict[str, Dict[str, float]] = {}
    for name, values in durations.items():
        total = sum(values)
        n_items = items[name]
        out[name] = {
            "count": float(len(values)),
            "items": float(n_items),
            "total_seconds": total,
            "mean_seconds": total / len(values),
            "p50_seconds": percentile(values, 50.0),
            "p95_seconds": percentile(values, 95.0),
            "p99_seconds": percentile(values, 99.0),
            "max_seconds": max(values),
            "items_per_sec": (n_items / total) if total > 0 else float("nan"),
        }
    return out


def slowest_spans(spans: Sequence[Span], n: int = 10) -> List[Span]:
    """The *n* longest spans, slowest first (ties break on ``seq``)."""
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    return sorted(spans, key=lambda s: (-s.duration, s.seq))[:n]


# ------------------------------------------------------------- persistence
def trace_payload(spans: Sequence[Span]) -> Dict[str, Any]:
    """JSON-serializable trace document: spans + their stage summary."""
    return {
        "format": TRACE_FORMAT,
        "n_spans": len(spans),
        "stages": stage_summary(spans),
        "spans": [
            {
                "name": s.name,
                "start": s.start,
                "duration": s.duration,
                "parent": s.parent,
                "items": s.items,
                "seq": s.seq,
            }
            for s in spans
        ],
    }


def write_trace(spans: Sequence[Span], path: PathLike) -> Path:
    """Serialize *spans* (plus summary) to *path*; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(trace_payload(spans), indent=2) + "\n")
    return path


def load_trace(path: PathLike) -> List[Span]:
    """Load spans from a :func:`write_trace` file.

    The embedded summary is ignored — it is recomputed from the spans,
    so a hand-edited file cannot disagree with itself.
    """
    payload = json.loads(Path(path).read_text())
    fmt = payload.get("format")
    if fmt != TRACE_FORMAT:
        raise ValueError(
            f"unsupported trace format {fmt!r} (expected {TRACE_FORMAT})"
        )
    return [
        Span(
            name=str(row["name"]),
            start=float(row["start"]),
            duration=float(row["duration"]),
            parent=row.get("parent"),
            items=int(row.get("items", 0)),
            seq=int(row.get("seq", 0)),
        )
        for row in payload["spans"]
    ]


# -------------------------------------------------------------- rendering
def _fmt_seconds(seconds: float) -> str:
    """Human-scale duration: µs below 1 ms, ms below 1 s, else seconds."""
    if seconds != seconds:  # NaN
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def format_stage_table(summary: Dict[str, Dict[str, float]]) -> str:
    """Render the per-stage summary as an ASCII table."""
    from repro.utils.tables import format_table

    rows = []
    for name, s in summary.items():
        rate = s["items_per_sec"]
        rows.append([
            name,
            f"{int(s['count'])}",
            f"{int(s['items'])}",
            f"{s['total_seconds']:.3f}",
            _fmt_seconds(s["p50_seconds"]),
            _fmt_seconds(s["p95_seconds"]),
            _fmt_seconds(s["p99_seconds"]),
            _fmt_seconds(s["max_seconds"]),
            "-" if rate != rate else f"{rate:,.0f}",
        ])
    return format_table(
        ["stage", "spans", "items", "total (s)", "p50", "p95", "p99",
         "max", "items/s"],
        rows,
        title="per-stage latency",
    )


def format_slowest_table(spans: Sequence[Span], n: int = 10) -> str:
    """Render the *n* slowest spans as an ASCII table."""
    from repro.utils.tables import format_table

    rows = [
        [
            f"{s.seq}",
            s.name,
            s.parent or "-",
            _fmt_seconds(s.duration),
            f"{s.items}",
        ]
        for s in slowest_spans(spans, n)
    ]
    return format_table(
        ["span", "stage", "parent", "duration", "items"],
        rows,
        title=f"slowest {min(n, len(spans))} spans",
    )


def format_trace_report(spans: Sequence[Span], *, slowest: int = 10) -> str:
    """The full ``repro trace-report`` output for one span set."""
    if not spans:
        return "trace is empty: no spans were recorded"
    return (
        format_stage_table(stage_summary(spans))
        + "\n\n"
        + format_slowest_table(spans, slowest)
    )
