"""Hot-path tracing: nestable stage spans with an injectable clock.

The paper's pitch is *online* prediction — the monitor must keep up
with the SMART stream — yet "fast enough" is unverifiable without
per-stage wall-clock visibility: where does the time go between an
event arriving and an alarm decision?  This module provides that
visibility without compromising the repo's determinism contract:

* a :class:`Span` is one timed stage execution (name, start, duration,
  parent stage, item count);
* a :class:`Tracer` opens spans via the ``with tracer.span("stage")``
  protocol, keeps a bounded ring of finished spans, and — when handed a
  :class:`~repro.service.metrics.MetricsRegistry` — feeds every finish
  into ``repro_stage_latency_seconds{stage=...}`` /
  ``repro_stage_items_total{stage=...}``;
* the :class:`NullTracer` (singleton :data:`NULL_TRACER`) is the
  library-wide default: ``span()`` returns a preallocated no-op context
  manager, so instrumented hot paths pay a few attribute lookups and
  nothing else when tracing is off, and results stay bit-identical.

Determinism: the tracer never *calls* the wall clock at import or
construction time — ``clock`` is an injectable zero-argument
seconds-callable that merely *defaults* to ``time.perf_counter``,
mirroring ``FleetMonitor(clock=...)``.  Tests inject a fake clock and
get fully deterministic spans, summaries, and histogram contents, which
is also why the RPR102 wall-clock lint allowlist stays unchanged: the
library holds a reference to the clock, it never reads it on its own
authority.

Thread-safety: span *nesting* is tracked per thread (the fleet's thread
executor runs shard buckets concurrently), while the finished-span ring
and the stage instruments are lock-guarded, matching
:class:`~repro.service.metrics.MetricsRegistry`'s own locking.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    ContextManager,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # annotation-only: obs must not depend on service at runtime
    from repro.service.metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "STAGE_LATENCY_BUCKETS",
    "STAGE_LATENCY_METRIC",
    "STAGE_ITEMS_METRIC",
    "Span",
    "NullTracer",
    "Tracer",
    "NULL_TRACER",
]

#: metric names the tracer registers per observed stage
STAGE_LATENCY_METRIC = "repro_stage_latency_seconds"
STAGE_ITEMS_METRIC = "repro_stage_items_total"

#: stage-latency histogram bounds: per-sample stages live in the 10 µs–1 ms
#: decades, micro-batch stages in 1 ms–1 s, checkpoints above that
STAGE_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)


@dataclass
class Span:
    """One finished (or in-flight) stage execution.

    ``start`` is in the tracer's clock domain (seconds; only differences
    are meaningful).  ``items`` is the work size the stage handled —
    events admitted, rows scored, labels folded — and feeds the
    per-stage throughput counter.  ``parent`` is the enclosing stage
    name on the same thread (None at top level), which is what makes
    the trace reconstructable as a stage tree rather than a flat log.
    """

    name: str
    start: float
    duration: float = 0.0
    parent: Optional[str] = None
    items: int = 0
    seq: int = 0


#: shared no-op span yielded by the null context manager; writes to its
#: ``items`` field are permitted (instrumented code sets it) and ignored
_NULL_SPAN = Span(name="", start=0.0)


class _NullSpanContext:
    """Reusable do-nothing context manager — the disabled-tracing path."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracing disabled: every ``span()`` is the same no-op context.

    This is the default value of every ``tracer`` attribute in the
    library, so the instrumented hot paths cost one method call and one
    ``with`` block when tracing is off — measured at well under the 5%
    serve-throughput budget by ``benchmarks/bench_serve_latency.py``.
    """

    #: whether spans are actually recorded (cheap guard for call sites
    #: that would otherwise build expensive span metadata)
    enabled: bool = False

    def span(self, name: str, items: int = 0) -> ContextManager[Span]:
        """Open a stage span (no-op here; see :class:`Tracer`)."""
        return _NULL_CONTEXT


#: the library-wide shared disabled tracer
NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager that times one stage execution on a live tracer."""

    __slots__ = ("_tracer", "_items", "_name", "_span")

    def __init__(self, tracer: "Tracer", name: str, items: int) -> None:
        self._tracer = tracer
        self._name = name
        self._items = items
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack()
        span = Span(
            name=self._name,
            start=tracer._clock(),
            parent=stack[-1] if stack else None,
            items=self._items,
        )
        stack.append(self._name)
        self._span = span
        return span

    def __exit__(self, *exc_info: object) -> None:
        span = self._span
        assert span is not None  # __exit__ without __enter__ is impossible
        tracer = self._tracer
        span.duration = tracer._clock() - span.start
        stack = tracer._stack()
        if stack and stack[-1] == span.name:
            stack.pop()
        # a raising stage still records its span: the slow/failed stage
        # is exactly the one the operator needs to see
        tracer._finish(span)
        return None


class Tracer(NullTracer):
    """Live tracer: records spans and (optionally) stage metrics.

    Parameters
    ----------
    clock:
        Zero-argument monotonic-seconds callable.  Defaults to
        ``time.perf_counter`` *by reference* — the library never calls
        the wall clock itself, so the RPR102 allowlist stays unchanged;
        tests inject a fake for deterministic spans.
    registry:
        Optional :class:`~repro.service.metrics.MetricsRegistry`.  When
        present, every span finish observes
        ``repro_stage_latency_seconds{stage=<name>}`` and adds the
        span's ``items`` to ``repro_stage_items_total{stage=<name>}``.
    max_spans:
        Finished spans retained on :attr:`spans` (a ring buffer — a
        months-long serve must not grow memory without bound).  The
        stage *metrics* keep aggregating past the ring: histograms are
        cumulative by construction.
    buckets:
        Latency histogram bounds (defaults to
        :data:`STAGE_LATENCY_BUCKETS`).
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        registry: Optional["MetricsRegistry"] = None,
        max_spans: int = 10_000,
        buckets: Sequence[float] = STAGE_LATENCY_BUCKETS,
    ) -> None:
        if max_spans <= 0:
            raise ValueError(f"max_spans must be > 0, got {max_spans}")
        self._clock = clock
        self._registry = registry
        self._buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: Deque[Span] = deque(maxlen=int(max_spans))
        self._n_finished = 0
        self._latency_h: Dict[str, "Histogram"] = {}
        self._items_c: Dict[str, "Counter"] = {}

    # --------------------------------------------------------------- spans
    def span(self, name: str, items: int = 0) -> ContextManager[Span]:
        """Open a nested stage span; use as ``with tracer.span("x") as sp``.

        The yielded :class:`Span` is mutable — set ``sp.items`` before
        the block exits when the work size is only known at the end.
        """
        return _SpanContext(self, name, items)

    def _stack(self) -> List[str]:
        stack: Optional[List[str]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, span: Span) -> None:
        with self._lock:
            span.seq = self._n_finished
            self._n_finished += 1
            self.spans.append(span)
        registry = self._registry
        if registry is None:
            return
        hist = self._latency_h.get(span.name)
        if hist is None:
            with self._lock:
                hist = self._latency_h.get(span.name)
                if hist is None:
                    hist = registry.histogram(
                        "repro_stage_latency_seconds",
                        help="wall seconds spent per traced stage execution",
                        labels={"stage": span.name},
                        buckets=self._buckets,
                    )
                    self._latency_h[span.name] = hist
                    self._items_c[span.name] = registry.counter(
                        "repro_stage_items_total",
                        help="work items processed by each traced stage",
                        labels={"stage": span.name},
                    )
        hist.observe(max(span.duration, 0.0))
        if span.items > 0:
            self._items_c[span.name].inc(span.items)

    # ---------------------------------------------------------- inspection
    @property
    def n_finished(self) -> int:
        """Lifetime finished-span count (the ring may hold fewer)."""
        return self._n_finished

    @property
    def registry(self) -> Optional["MetricsRegistry"]:
        """The metrics sink spans feed, if any."""
        return self._registry

    def stage_names(self) -> List[str]:
        """Distinct stage names observed so far, in first-seen order."""
        seen: Dict[str, None] = {}
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            seen.setdefault(span.name, None)
        return list(seen)

    def snapshot(self) -> List[Span]:
        """Stable copy of the retained spans (oldest first)."""
        with self._lock:
            return list(self.spans)
