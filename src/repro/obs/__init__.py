"""Observability: hot-path tracing and latency reporting.

``repro.obs`` is the measurement layer for the serving pipeline —
dependency-free, deterministic-safe (injectable clock, no-op default),
and wired into the existing metrics exposition:

* :mod:`~repro.obs.tracing` — :class:`Span`, :class:`Tracer`,
  :data:`NULL_TRACER`, and the ``repro_stage_*`` metric bridge;
* :mod:`~repro.obs.report` — per-stage p50/p95/p99 summaries, slowest
  spans, the trace JSON format, and the tables ``repro trace-report``
  prints.

Enable it end to end with ``repro serve --trace`` or programmatically::

    from repro.obs import Tracer
    from repro.service import FleetMonitor, MetricsRegistry

    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    fleet = FleetMonitor.build(n_features, tracer=tracer, registry=registry)
    # ... ingest ...
    print(registry.render())               # repro_stage_latency_seconds{...}
"""

from repro.obs.report import (
    format_slowest_table,
    format_stage_table,
    format_trace_report,
    load_trace,
    percentile,
    slowest_spans,
    stage_summary,
    trace_payload,
    write_trace,
)
from repro.obs.tracing import (
    NULL_TRACER,
    STAGE_ITEMS_METRIC,
    STAGE_LATENCY_BUCKETS,
    STAGE_LATENCY_METRIC,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "STAGE_LATENCY_METRIC",
    "STAGE_ITEMS_METRIC",
    "STAGE_LATENCY_BUCKETS",
    "percentile",
    "stage_summary",
    "slowest_spans",
    "trace_payload",
    "write_trace",
    "load_trace",
    "format_stage_table",
    "format_slowest_table",
    "format_trace_report",
]
