"""Committed-baseline support: land strict-by-default, burn debt down.

A baseline is a JSON file mapping finding fingerprints (see
:meth:`repro.analysis.engine.Finding.fingerprint`) to a short
description.  Findings whose fingerprint appears in the baseline are
*grandfathered* — reported but not failing — so the linter can be
enabled on a codebase with pre-existing debt and still block every
**new** violation.  This repo's committed baseline is empty: the whole
tree lints clean, and any regression fails CI immediately.

Fingerprints hash (rule id, path, source snippet), never line numbers,
so editing unrelated code above a grandfathered finding does not
resurrect it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.engine import Finding

#: default baseline location, repo-relative
DEFAULT_BASELINE = "lint-baseline.json"

_VERSION = 1


@dataclass
class Baseline:
    """Set of grandfathered finding fingerprints."""

    fingerprints: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition *findings* into ``(new, grandfathered)``."""
        new: List[Finding] = []
        old: List[Finding] = []
        for f in findings:
            (old if f.fingerprint() in self else new).append(f)
        return new, old

    def stale_entries(self, findings: Sequence[Finding]) -> List[str]:
        """Baseline fingerprints no current finding matches (fixed debt).

        Surfaced so the baseline can be re-tightened: a stale entry
        means someone fixed a grandfathered violation and the baseline
        should be regenerated to stop it silently coming back.
        """
        live = {f.fingerprint() for f in findings}
        return sorted(fp for fp in self.fingerprints if fp not in live)


def load_baseline(path: str = DEFAULT_BASELINE) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline()
    data = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"{path} is not a lint baseline (no 'fingerprints' key)")
    version = data.get("version")
    if version != _VERSION:
        raise ValueError(
            f"{path} has baseline version {version!r}; this tool reads "
            f"version {_VERSION} — regenerate with 'repro lint --write-baseline'"
        )
    fps = data["fingerprints"]
    if not isinstance(fps, dict):
        raise ValueError(f"{path}: 'fingerprints' must be an object")
    return Baseline(fingerprints=dict(fps))


def write_baseline(
    findings: Sequence[Finding], path: str = DEFAULT_BASELINE
) -> Baseline:
    """Serialize *findings* as the new baseline at *path*.

    Entries carry the human-readable location and message next to the
    fingerprint so a reviewer can audit what debt is being accepted.
    """
    fingerprints: Dict[str, Dict[str, object]] = {}
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule_id)):
        fingerprints[f.fingerprint()] = {
            "rule": f.rule_id,
            "path": f.path,
            "line": f.line,
            "message": f.message,
        }
    baseline = Baseline(fingerprints=fingerprints)
    _write_payload(fingerprints, path)
    return baseline


def prune_baseline(
    findings: Sequence[Finding], path: str = DEFAULT_BASELINE
) -> List[str]:
    """Drop baseline entries no current finding matches; return them.

    Stale entries are fixed debt: leaving them in the file means the
    same violation could silently come back under grandfather cover.
    A missing baseline file (or one with nothing stale) is a no-op.
    """
    p = Path(path)
    if not p.exists():
        return []
    baseline = load_baseline(path)
    stale = baseline.stale_entries(findings)
    if not stale:
        return []
    for fingerprint in stale:
        del baseline.fingerprints[fingerprint]
    _write_payload(baseline.fingerprints, path)
    return stale


def _write_payload(
    fingerprints: Dict[str, Dict[str, object]], path: str
) -> None:
    payload = {
        "version": _VERSION,
        "comment": (
            "Grandfathered lint findings. Regenerate with "
            "'repro lint --write-baseline'; keep this empty."
        ),
        "fingerprints": fingerprints,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
