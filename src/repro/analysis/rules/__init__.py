"""Rule registry: every invariant the linter enforces, in id order.

Adding a rule = write a :class:`~repro.analysis.engine.Rule` subclass
in the thematic module, append it to that module's ``RULES`` tuple, and
document it in ``docs/static_analysis.md``.  Ids are stable forever —
they appear in noqa comments and baselines — so retired rules leave a
gap rather than being renumbered.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.engine import Rule
from repro.analysis.rules import api, determinism, hygiene, numerics

ALL_RULES: Tuple[Rule, ...] = (
    *determinism.RULES,
    *numerics.RULES,
    *hygiene.RULES,
    *api.RULES,
)


def rules_by_id() -> Dict[str, Rule]:
    """``{rule_id: rule}`` for docs, ``--stats`` and tests."""
    return {rule.rule_id: rule for rule in ALL_RULES}


__all__ = ["ALL_RULES", "rules_by_id", "api", "determinism", "hygiene", "numerics"]
