"""Rule registry: every invariant the linter enforces, in id order.

Adding a rule = write a :class:`~repro.analysis.engine.Rule` subclass
(or a :class:`~repro.analysis.engine.GraphRule` for whole-program
invariants) in the thematic module, append it to that module's
``RULES`` tuple, and document it in ``docs/static_analysis.md``.  Ids
are stable forever — they appear in noqa comments and baselines — so
retired rules leave a gap rather than being renumbered.

Per-file packs feed :data:`ALL_RULES`; graph packs (layering,
concurrency, contracts) feed :data:`GRAPH_RULES` and run in the
whole-program second stage.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from repro.analysis.engine import GraphRule, Rule
from repro.analysis.rules import (
    api,
    concurrency,
    contracts,
    determinism,
    hygiene,
    layering,
    numerics,
)

ALL_RULES: Tuple[Rule, ...] = (
    *determinism.RULES,
    *numerics.RULES,
    *hygiene.RULES,
    *api.RULES,
)

GRAPH_RULES: Tuple[GraphRule, ...] = (
    *layering.RULES,
    *concurrency.RULES,
    *contracts.RULES,
)


def rules_by_id() -> Dict[str, Union[Rule, GraphRule]]:
    """``{rule_id: rule}`` over both stages, for docs/--explain/tests."""
    out: Dict[str, Union[Rule, GraphRule]] = {}
    for rule in (*ALL_RULES, *GRAPH_RULES):
        out[rule.rule_id] = rule
    return out


__all__ = [
    "ALL_RULES",
    "GRAPH_RULES",
    "rules_by_id",
    "api",
    "concurrency",
    "contracts",
    "determinism",
    "hygiene",
    "layering",
    "numerics",
]
