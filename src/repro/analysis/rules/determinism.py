"""RPR1xx — determinism: seeded RNG discipline, no wall-clock reads.

The repo's core contract (ROADMAP, PRs 1-3) is that every stream is
exactly replayable under one seed: forest updates, shard routing,
checkpoint resume.  Two classes of call silently break that contract:

* **RPR101** — RNG entry points that draw from global or OS-seeded
  state: any ``np.random.*`` legacy function (module-global
  ``RandomState``), argless ``np.random.default_rng()`` /
  ``RandomState()`` (OS entropy), and the stdlib ``random`` module's
  global functions.  All randomness must flow through an explicit
  seeded :class:`numpy.random.Generator` (see :mod:`repro.utils.rng`).
* **RPR102** — wall-clock reads (``time.time``, ``time.perf_counter``,
  ``time.monotonic``, ``time.sleep``, ``datetime.now`` …) in library
  code.  Timing belongs in benchmarks, or behind an injectable clock
  (see ``FleetMonitor(clock=...)``) so tests can fake time and replays
  never depend on the machine's speed.

``CLOCK_ALLOWLIST`` is the single, auditable list of paths where a real
clock is legitimate.  Keep it narrow: benchmarks (timing is their
output) and checkpoint retry backoff (sleeping between I/O retries is
inherently about real time).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.engine import FileContext, Finding, Rule, Severity

#: paths where wall-clock reads are sanctioned (keep this narrow — the
#: serving layer itself takes an injectable clock instead)
CLOCK_ALLOWLIST: Tuple[str, ...] = (
    "benchmarks/*",
    "src/repro/service/checkpoint.py",  # exponential backoff between I/O retries
)

#: np.random.* names that are NOT the legacy global-state API
_NP_RANDOM_OK = frozenset(
    {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: constructors that are fine *with* an explicit seed argument
_NP_RANDOM_SEEDABLE = frozenset({"default_rng", "RandomState"})

_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)
#: bare-name calls distinctive enough to flag after ``from time import …``
_CLOCK_BARE_NAMES = frozenset(
    {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns", "time_ns"}
)
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``np.random.default_rng`` → ("np", "random", "default_rng")."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class UnseededRandomRule(Rule):
    """RPR101: all randomness must come from an explicitly seeded stream."""

    rule_id = "RPR101"
    severity = Severity.ERROR
    description = (
        "unseeded RNG entry point (np.random.* legacy API, argless "
        "default_rng()/RandomState(), or stdlib random.*)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None or len(chain) == 1:
                # bare default_rng() via `from numpy.random import default_rng`
                if (
                    chain == ("default_rng",)
                    and not node.args
                    and not node.keywords
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "argless default_rng() seeds from OS entropy; pass "
                        "an explicit seed (see repro.utils.rng.ensure_rng)",
                    )
                continue
            if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
                fn = chain[2]
                if fn in _NP_RANDOM_OK:
                    continue
                if fn in _NP_RANDOM_SEEDABLE:
                    if not node.args and not node.keywords:
                        yield ctx.finding(
                            self,
                            node,
                            f"argless np.random.{fn}() seeds from OS entropy; "
                            "pass an explicit seed",
                        )
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f"np.random.{fn}() draws from the module-global "
                    "RandomState; use an explicit seeded "
                    "np.random.Generator instead",
                )
            elif len(chain) == 2 and chain[0] == "random":
                fn = chain[1]
                if fn == "Random":
                    if not node.args and not node.keywords:
                        yield ctx.finding(
                            self,
                            node,
                            "argless random.Random() seeds from OS entropy; "
                            "pass an explicit seed",
                        )
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f"random.{fn}() uses the interpreter-global RNG; use an "
                    "explicit seeded generator instead",
                )


class WallClockRule(Rule):
    """RPR102: no wall-clock reads outside the allowlist."""

    rule_id = "RPR102"
    severity = Severity.ERROR
    description = (
        "wall-clock call (time.*, datetime.now/utcnow/today) outside the "
        "clock allowlist — inject a clock or move the timing to benchmarks"
    )
    skip_globs = CLOCK_ALLOWLIST

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None or len(chain) == 1:
                if chain is not None and chain[0] in _CLOCK_BARE_NAMES:
                    yield ctx.finding(
                        self,
                        node,
                        f"{chain[0]}() reads the wall clock; inject a "
                        "clock callable so replays and tests control time",
                    )
                continue
            if len(chain) == 2 and chain[0] == "time" and chain[1] in _CLOCK_TIME_ATTRS:
                yield ctx.finding(
                    self,
                    node,
                    f"time.{chain[1]}() reads the wall clock; inject a clock "
                    "callable so replays and tests control time",
                )
            elif (
                chain[-1] in _DATETIME_ATTRS
                and len(chain) >= 2
                and chain[0] == "datetime"
                and all(p in ("datetime", "date") for p in chain[:-1])
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{'.'.join(chain)}() reads the wall clock; pass "
                    "timestamps in explicitly",
                )


RULES: Tuple[Rule, ...] = (UnseededRandomRule(), WallClockRule())
