"""RPR6xx — cross-module contracts: metrics and import surfaces.

These rules generalize two per-file rules to the whole program:

* **RPR601** extends RPR303 (metric registration discipline) from one
  file to the project: a ``repro_*`` metric *name* is a global key —
  dashboards, alert rules, and the registry itself join on it — so two
  modules registering the same name, or one name registered with two
  different literal label-key sets, silently merge unrelated time
  series.  Only literal registrations are considered (an f-string name
  is dynamic and out of scope, as in RPR303).
* **RPR602** extends RPR401 (``__all__`` consistency) across package
  boundaries: ``from repro.x import name`` must resolve against the
  target module's top-level symbol table (defs, classes, assignments,
  imports, submodules).  The per-file rule can only see that a name is
  *exported*; this rule sees whether the other side actually *binds*
  it — the failure mode is a facade ``__init__`` re-exporting a symbol
  that a refactor renamed.  Modules using ``import *`` are skipped
  (their binding set is unknowable statically).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, GraphRule, Severity
from repro.analysis.graph import ModuleInfo, ProjectContext

#: the MetricsRegistry factory method names (mirrors RPR303)
_REGISTRY_FACTORIES = frozenset({"counter", "gauge", "histogram"})

_METRIC_PREFIX = "repro_"


def _literal_metric_name(node: ast.Call) -> Optional[str]:
    """The literal ``repro_*`` name of a registry call, else None."""
    fn = node.func
    if not (
        isinstance(fn, ast.Attribute)
        and fn.attr in _REGISTRY_FACTORIES
        and node.args
    ):
        return None
    head = node.args[0]
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        name = head.value
        return name if name.startswith(_METRIC_PREFIX) else None
    return None


def _literal_label_keys(node: ast.Call) -> Optional[FrozenSet[str]]:
    """Label keys of a literal ``labels={...}`` kwarg; None if absent
    or not fully literal (a dynamic dict cannot be compared)."""
    for kw in node.keywords:
        if kw.arg != "labels":
            continue
        if not isinstance(kw.value, ast.Dict):
            return None
        keys: List[str] = []
        for key in kw.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
            else:
                return None
        return frozenset(keys)
    return frozenset()


class _MetricSite:
    """One literal registration of a ``repro_*`` metric."""

    __slots__ = ("info", "node", "labels")

    def __init__(
        self,
        info: ModuleInfo,
        node: ast.Call,
        labels: Optional[FrozenSet[str]],
    ) -> None:
        self.info = info
        self.node = node
        self.labels = labels

    @property
    def sort_key(self) -> Tuple[str, int, int]:
        return (self.info.path, self.node.lineno, self.node.col_offset)


class MetricUniquenessRule(GraphRule):
    """RPR601: one ``repro_*`` metric name, one owner, one label set."""

    rule_id = "RPR601"
    severity = Severity.ERROR
    description = (
        "repro_* metric name registered in more than one module, or "
        "with conflicting literal label-key sets — metric names are "
        "global join keys for dashboards and alerts"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        sites: Dict[str, List[_MetricSite]] = {}
        for name in project.module_names:
            info = project.modules[name]
            for node in ast.walk(info.ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                metric = _literal_metric_name(node)
                if metric is None:
                    continue
                sites.setdefault(metric, []).append(
                    _MetricSite(info, node, _literal_label_keys(node))
                )
        for metric in sorted(sites):
            group = sorted(sites[metric], key=lambda s: s.sort_key)
            if len(group) < 2:
                continue
            modules = {site.info.name for site in group}
            label_sets = {
                site.labels for site in group if site.labels is not None
            }
            if len(modules) < 2 and len(label_sets) < 2:
                continue
            first = group[0]
            second = group[1]
            if len(label_sets) > 1:
                detail = "conflicting label-key sets " + ", ".join(
                    "{" + ", ".join(sorted(s)) + "}"
                    for s in sorted(label_sets, key=sorted)
                )
            else:
                detail = "duplicate registration"
            yield second.info.ctx.finding(
                self,
                second.node,
                f"metric {metric!r} already registered at "
                f"{first.info.path}:{first.node.lineno} — {detail}; "
                "metric names are project-global: rename one, or hoist "
                "the registration to a single owner",
            )


class ExportResolutionRule(GraphRule):
    """RPR602: ``from m import name`` must bind on the other side."""

    rule_id = "RPR602"
    severity = Severity.ERROR
    description = (
        "from-import of a project module names a symbol the target "
        "does not bind at top level — a renamed or removed export"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for name in project.module_names:
            info = project.modules[name]
            seen: Set[Tuple[str, str, int]] = set()
            for fi in info.from_imports:
                target = project.modules.get(fi.module)
                if target is None or target.has_import_star:
                    continue
                if target.resolves(fi.name):
                    continue
                key = (fi.module, fi.name, fi.node.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield info.ctx.finding(
                    self,
                    fi.node,
                    f"'from {fi.module} import {fi.name}': {fi.module} "
                    f"({target.path}) does not bind {fi.name!r} at top "
                    "level — renamed export or stale facade re-export",
                )


RULES: Tuple[GraphRule, ...] = (
    MetricUniquenessRule(),
    ExportResolutionRule(),
)
