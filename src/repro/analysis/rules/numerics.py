"""RPR2xx — numeric hygiene: float equality, silent precision loss.

* **RPR201** — ``==`` / ``!=`` where an operand is syntactically
  float-valued (a float literal, a ``float(...)`` / ``np.float64(...)``
  call, or a negated float literal).  Exact float comparison is how
  "bit-identical under one seed" claims silently rot: a refactor that
  reassociates an expression changes the last ulp and the comparison
  flips.  Use ``math.isclose`` / ``np.isclose`` for approximate intent,
  order comparisons (``<=``) for thresholds, ``math.isnan`` /
  ``math.isinf`` for specials — or suppress with a reason when exact
  equality *is* the contract (sentinel values written as exact
  constants).  Scoped out of ``tests/``: exact-equality assertions
  there are deliberate bit-reproducibility checks.
* **RPR202** — float-narrowing casts: ``.astype(np.float32/float16)``
  and ``np.float32(...)`` constructors.  Narrowing quietly discards
  mantissa bits, so two code paths that "compute the same thing" stop
  agreeing bitwise.  Integer casts are not flagged (label vectors are
  intentionally small ints).  Where float32 is the *schema* (SMART
  payloads), suppress with the reason inline.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.engine import FileContext, Finding, Rule, Severity

_FLOAT_CALLS = frozenset({"float", "float64", "float32", "float16"})
_NARROW_FLOAT_NAMES = frozenset({"float32", "float16", "half", "single"})


def _is_float_expr(node: ast.expr) -> bool:
    """Syntactically certainly-float: literal, float() call, -literal."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name):
            return fn.id in _FLOAT_CALLS
        if isinstance(fn, ast.Attribute):
            return fn.attr in _FLOAT_CALLS
    return False


def _describe(node: ast.expr) -> str:
    return ast.unparse(node)


class FloatEqualityRule(Rule):
    """RPR201: no ``==``/``!=`` against float-typed expressions."""

    rule_id = "RPR201"
    severity = Severity.ERROR
    description = (
        "== / != on a float-typed expression — use math.isclose / an "
        "order comparison / math.isnan, or suppress where exactness is "
        "the contract"
    )
    # exact-equality assertions in tests ARE the reproducibility proof
    skip_globs = ("tests/*",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                guilty = next(
                    (o for o in (left, right) if _is_float_expr(o)), None
                )
                if guilty is None:
                    continue
                sym = "==" if isinstance(op, ast.Eq) else "!="
                yield ctx.finding(
                    self,
                    node,
                    f"float equality: {_describe(left)} {sym} "
                    f"{_describe(right)} — exact float comparison drifts "
                    "under refactoring; use math.isclose / an order "
                    "comparison, or noqa with the exactness contract",
                )


class NarrowingCastRule(Rule):
    """RPR202: no silent float32/float16 narrowing."""

    rule_id = "RPR202"
    severity = Severity.WARNING
    description = (
        "float-narrowing cast (.astype(float32/float16), np.float32(...)) "
        "— discards mantissa bits silently; suppress where the schema is "
        "genuinely 32-bit"
    )

    def _dtype_name(self, node: ast.expr) -> Optional[str]:
        """'float32' for np.float32 / 'float32' / "float32" arguments."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        else:
            return None
        return name if name in _NARROW_FLOAT_NAMES else None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            # X.astype(np.float32) / X.astype("float32") / dtype= kwarg
            if isinstance(fn, ast.Attribute) and fn.attr == "astype":
                candidates = list(node.args[:1]) + [
                    kw.value for kw in node.keywords if kw.arg == "dtype"
                ]
                for cand in candidates:
                    name = self._dtype_name(cand)
                    if name is not None:
                        yield ctx.finding(
                            self,
                            node,
                            f".astype({name}) narrows float precision "
                            "silently; keep float64 or suppress with the "
                            "schema rationale",
                        )
            # np.float32(x) constructor-style narrowing
            elif (
                isinstance(fn, ast.Attribute)
                and fn.attr in _NARROW_FLOAT_NAMES
                and isinstance(fn.value, ast.Name)
                and fn.value.id in ("np", "numpy")
                and node.args
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"np.{fn.attr}(...) narrows float precision silently; "
                    "keep float64 or suppress with the schema rationale",
                )


RULES: Tuple[Rule, ...] = (FloatEqualityRule(), NarrowingCastRule())
