"""RPR50x — architecture: declared import layering and cycle freedom.

The repo's layer order is declared once, in
:data:`repro.analysis.graph.DECLARED_LAYERS`::

    L0 foundations  utils, smart, features
    L1 models       core, obs, streaming, offline
    L2 evaluation   eval, parallel, ops, persistence, strategies
    L3 serving      service, analysis
    L4 edge         gateway
    L5 interface    cli

* **RPR501** — a module may import (at runtime) only from its own
  layer or below.  Imports inside ``if TYPE_CHECKING:`` are exempt —
  they are annotation plumbing with no runtime dependency (the
  ``repro.obs`` → ``repro.service.metrics`` edge is the model).
  Function-scoped (deferred) imports still count: an upward dependency
  is an upward dependency whenever it actually runs.  A package that
  appears in no declared layer is also flagged — growing the tree
  means declaring where new packages sit.  The root facade
  (``repro/__init__``) is exempt: it exists to re-export every tier.
* **RPR502** — no import-time cycles.  Only module-level runtime
  imports participate: moving an import into the using function is the
  sanctioned way to break a cycle (the engine itself imports the graph
  stage lazily for exactly this reason), and ``TYPE_CHECKING`` imports
  never execute.

Suppression policy: a tolerated upward edge gets an inline
``# repro: noqa RPR501 — <architectural rationale>`` on the import
line, so every exception is visible in ``--stats`` and audited by the
clean-gate test.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.analysis.engine import Finding, GraphRule, Severity
from repro.analysis.graph import DECLARED_LAYERS, ProjectContext


def _anchor(lineno: int, col: int) -> ast.stmt:
    """A minimal AST node carrying just a location, for ctx.finding()."""
    node = ast.Pass()
    node.lineno = lineno
    node.col_offset = col - 1
    return node


def _layer_name(index: int) -> str:
    return DECLARED_LAYERS[index][0]


class LayerOrderRule(GraphRule):
    """RPR501: runtime imports must point sideways or down the layers."""

    rule_id = "RPR501"
    severity = Severity.ERROR
    description = (
        "import layering violation: runtime import of a higher declared "
        "layer, or a package missing from the declared layer order"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        flagged_undeclared: Set[str] = set()
        for name in project.module_names:
            info = project.modules[name]
            package = info.package
            if package is None:
                continue  # root facade: re-exports every tier by design
            layer = info.layer
            if layer is None:
                if package not in flagged_undeclared:
                    flagged_undeclared.add(package)
                    yield info.ctx.finding(
                        self,
                        _anchor(1, 1),
                        f"package {package!r} is not in the declared layer "
                        "order — add it to "
                        "repro.analysis.graph.DECLARED_LAYERS",
                    )
                continue
            seen_lines: Set[Tuple[int, str]] = set()
            for edge in info.edges:
                if edge.type_only:
                    continue
                target = project.modules[edge.imported]
                if target.package == package:
                    continue
                target_layer = target.layer
                if target_layer is None or target_layer <= layer:
                    continue
                key = (edge.lineno, target.package or "")
                if key in seen_lines:
                    continue
                seen_lines.add(key)
                yield info.ctx.finding(
                    self,
                    _anchor(edge.lineno, edge.col),
                    f"{name} (L{layer} {_layer_name(layer)}) imports "
                    f"{edge.imported} (L{target_layer} "
                    f"{_layer_name(target_layer)}): higher layers must not "
                    "be imported from below — move the dependency down or "
                    "suppress with the architectural rationale",
                )


class ImportCycleRule(GraphRule):
    """RPR502: the import-time module graph must be a DAG."""

    rule_id = "RPR502"
    severity = Severity.ERROR
    description = (
        "import cycle among module-level runtime imports — break it with "
        "a function-scoped import or a dependency inversion"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for cycle in project.cycles():
            members = set(cycle)
            head = project.modules[cycle[0]]
            anchor = _anchor(1, 1)
            for edge in head.edges:
                if (
                    not edge.type_only
                    and not edge.deferred
                    and edge.imported in members
                ):
                    anchor = _anchor(edge.lineno, edge.col)
                    break
            path = " -> ".join([*cycle, cycle[0]])
            yield head.ctx.finding(
                self,
                anchor,
                f"import cycle: {path} — break it with a deferred "
                "(function-scoped) import or by inverting the dependency",
            )


RULES: Tuple[GraphRule, ...] = (LayerOrderRule(), ImportCycleRule())
