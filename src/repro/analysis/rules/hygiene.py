"""RPR3xx — engineering hygiene: the defect classes Han et al. found
dominating real disk-prediction deployments.

* **RPR301** — mutable default arguments (``def f(x=[])``): the default
  is evaluated once, so state leaks across calls — across *streams* in
  this codebase, which corrupts replays in ways no seed can fix.
* **RPR302** — swallowed broad exceptions: ``except:`` /
  ``except Exception:`` whose body neither re-raises, nor binds and
  *uses* the exception, nor logs.  Silent swallowing is how a
  half-updated shard keeps serving; fault handling must account for
  the error (see ``_drain_shard``) or escalate it.
* **RPR303** — metric registration discipline on
  ``MetricsRegistry.counter/gauge/histogram`` calls: names must carry
  the ``repro_`` namespace prefix (dashboards and alert rules key on
  it) and literal label sets must stay small (≤ ``MAX_LABELS`` keys) —
  label cardinality is a time-series-per-metric multiplier, and an
  unbounded label set is a slow memory leak in the metrics backend.
  Per-stage tracing metrics (``repro_stage_*``, registered by
  :class:`repro.obs.tracing.Tracer`) must additionally carry a literal
  ``stage`` label key: a stage metric registered without it would
  collapse every pipeline stage into one time series.  Scoped out of
  ``tests/``: the registry's own unit tests exercise arbitrary names
  deliberately.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.engine import FileContext, Finding, Rule, Severity

#: maximum keys in a literal ``labels={...}`` registration
MAX_LABELS = 3

#: the MetricsRegistry factory method names
_REGISTRY_FACTORIES = frozenset({"counter", "gauge", "histogram"})

_METRIC_PREFIX = "repro_"

#: per-stage tracing metrics must be partitioned by a ``stage`` label
_STAGE_METRIC_PREFIX = "repro_stage_"
_STAGE_LABEL_KEY = "stage"

_LOGGING_HINTS = frozenset(
    {"print", "warn", "warning", "error", "exception", "debug", "info", "log"}
)


class MutableDefaultRule(Rule):
    """RPR301: no mutable default arguments."""

    rule_id = "RPR301"
    severity = Severity.ERROR
    description = (
        "mutable default argument ([], {}, set(), list(), dict()) — "
        "evaluated once, shared across every call"
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default in {node.name}(): use None and "
                        "construct inside the body",
                    )


def _handler_catches_broadly(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception``, ``except BaseException``."""
    t = handler.type
    if t is None:
        return True
    names = []
    if isinstance(t, ast.Tuple):
        names = [e.id for e in t.elts if isinstance(e, ast.Name)]
    elif isinstance(t, ast.Name):
        names = [t.id]
    return any(n in ("Exception", "BaseException") for n in names)


def _body_accounts_for_error(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises, uses the bound error, or logs."""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if (
            handler.name
            and isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            name = (
                fn.id
                if isinstance(fn, ast.Name)
                else fn.attr if isinstance(fn, ast.Attribute) else ""
            )
            if name in _LOGGING_HINTS:
                return True
    return False


class SwallowedExceptionRule(Rule):
    """RPR302: broad except must re-raise, use the error, or log it."""

    rule_id = "RPR302"
    severity = Severity.ERROR
    description = (
        "bare/broad except that swallows the error without re-raising, "
        "using, or logging it"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _handler_catches_broadly(node):
                continue
            if _body_accounts_for_error(node):
                continue
            caught = "bare except" if node.type is None else "broad except"
            yield ctx.finding(
                self,
                node,
                f"{caught} swallows the error: re-raise, log, or handle "
                "the bound exception explicitly (or noqa with the "
                "containment rationale)",
            )


class MetricRegistrationRule(Rule):
    """RPR303: namespaced metric names, bounded literal label sets."""

    rule_id = "RPR303"
    severity = Severity.ERROR
    description = (
        f"MetricsRegistry registration without the '{_METRIC_PREFIX}' "
        f"name prefix, or a literal labels dict over {MAX_LABELS} keys"
    )
    # the registry's own unit tests exercise arbitrary names on purpose
    skip_globs = ("tests/*",)

    def _literal_name(
        self, node: ast.expr
    ) -> Tuple[Optional[str], bool]:
        """(name-or-prefix, is_literal) for str / f-string first args."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, True
        if isinstance(node, ast.JoinedStr) and node.values:
            head = node.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return head.value, True
        return None, False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (
                isinstance(fn, ast.Attribute)
                and fn.attr in _REGISTRY_FACTORIES
                and node.args
            ):
                continue
            name, is_literal = self._literal_name(node.args[0])
            if not is_literal:
                continue  # not a registry-style literal registration
            if name is not None and not name.startswith(_METRIC_PREFIX):
                yield ctx.finding(
                    self,
                    node,
                    f"metric name {name!r} lacks the {_METRIC_PREFIX!r} "
                    "namespace prefix dashboards key on",
                )
            stage_labeled = False
            for kw in node.keywords:
                if kw.arg != "labels" or not isinstance(kw.value, ast.Dict):
                    continue
                label_keys = [
                    k.value
                    for k in kw.value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                ]
                stage_labeled = stage_labeled or _STAGE_LABEL_KEY in label_keys
                n_keys = len(kw.value.keys)
                if n_keys > MAX_LABELS:
                    yield ctx.finding(
                        self,
                        kw.value,
                        f"{n_keys} label keys on one metric (max "
                        f"{MAX_LABELS}): label cardinality multiplies "
                        "time-series count",
                    )
            if (
                name is not None
                and name.startswith(_STAGE_METRIC_PREFIX)
                and not stage_labeled
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"per-stage metric {name!r} registered without a "
                    f"literal {_STAGE_LABEL_KEY!r} label key: every "
                    "pipeline stage would collapse into one time series",
                )


RULES: Tuple[Rule, ...] = (
    MutableDefaultRule(),
    SwallowedExceptionRule(),
    MetricRegistrationRule(),
)
