"""RPR4xx — public API surface: ``__all__`` ↔ definition consistency.

**RPR401** checks every module that declares a top-level ``__all__``:

* each exported name must actually be bound at module top level (an
  import, def, class, or assignment) — a stale ``__all__`` entry makes
  ``from pkg import *`` raise and misleads readers about the surface;
* each *public* top-level ``def``/``class`` (no leading underscore)
  must appear in ``__all__`` — an unlisted public definition is an
  accidental API that persistence ids and docs then depend on without
  the package ever promising it.

Modules without ``__all__`` are skipped (they make no export claim),
as is any module using ``from x import *`` (its bindings cannot be
resolved statically).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import FileContext, Finding, Rule, Severity


def _all_declaration(
    tree: ast.Module,
) -> Tuple[Optional[ast.expr], List[str]]:
    """The ``__all__ = [...]`` node and its string entries, if declared."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        names: List[str] = []
        if isinstance(value, (ast.List, ast.Tuple)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.append(elt.value)
        return value, names
    return None, []


def _top_level_bindings(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Names bound at module top level, and whether ``import *`` occurs."""
    bound: Set[str] = set()
    star = False
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    star = True
                else:
                    bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                for n in ast.walk(t):
                    if isinstance(n, ast.Name):
                        bound.add(n.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # conditional imports (TYPE_CHECKING guards, optional deps)
            for sub in ast.walk(node):
                if isinstance(sub, ast.Import):
                    for alias in sub.names:
                        bound.add((alias.asname or alias.name).split(".")[0])
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
                elif isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(sub.name)
    return bound, star


class DunderAllConsistencyRule(Rule):
    """RPR401: ``__all__`` entries exist; public defs are exported."""

    rule_id = "RPR401"
    severity = Severity.ERROR
    description = (
        "__all__ out of sync with the module: stale export entries, or "
        "public top-level def/class missing from __all__"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        all_node, exported = _all_declaration(ctx.tree)
        if all_node is None:
            return
        bound, star = _top_level_bindings(ctx.tree)
        if not star:
            for name in exported:
                if name not in bound:
                    yield ctx.finding(
                        self,
                        all_node,
                        f"__all__ exports {name!r} but the module never "
                        "binds it — stale entry or missing import",
                    )
        exported_set = set(exported)
        for node in ctx.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_") or node.name in exported_set:
                continue
            yield ctx.finding(
                self,
                node,
                f"public {node.name!r} is not in __all__ — export it or "
                "rename it with a leading underscore",
            )
        dupes = {n for n in exported if exported.count(n) > 1}
        for name in sorted(dupes):
            yield ctx.finding(
                self, all_node, f"__all__ lists {name!r} more than once"
            )


RULES: Tuple[Rule, ...] = (DunderAllConsistencyRule(),)
