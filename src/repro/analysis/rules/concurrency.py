"""RPR51x — concurrency safety across the executor and serving stack.

The executor contract (:mod:`repro.parallel.pool`) is that serial,
thread, and process backends are interchangeable for pure, picklable
work.  Three cross-module mistakes silently break it:

* **RPR511** — mutable module-level state (a dict/list/set bound at
  module scope) read or written by a function that is dispatched
  through an executor.  Under the process backend every worker gets a
  *copy* of the module; mutations never propagate back, and under
  threads the shared object races.  Workers must receive all state via
  their picklable payload (the ``TreeSlot`` pattern from
  :mod:`repro.core.forest`).
* **RPR512** — lambdas or closures submitted to an executor.  They
  cannot be pickled, so the process backend raises at dispatch time —
  a latent crash that serial/thread test runs never see.  Workers must
  be module-level functions taking one payload argument.
* **RPR513** — a class defining ``__getstate__`` without either a
  matching ``__setstate__`` or a documented state contract (a comment
  directly above the method or a docstring inside it).  ``__getstate__``
  usually exists to drop a cache from executor pickles (the
  ``CompiledTree`` pattern); without documentation or a restore hook,
  the next refactor cannot tell which attributes are safe to drop and
  which silently lose state.

Worker detection is conservative and name-based: a call
``<receiver>.map(fn, …)`` / ``<receiver>.submit(fn, …)`` counts as an
executor dispatch when the receiver's terminal identifier mentions
``executor`` or ``pool`` (``self._executor``, ``tree_pool`` …).  The
reachable set of a worker is closed over same-module calls to other
module-level functions.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, GraphRule, Severity
from repro.analysis.graph import ModuleInfo, ProjectContext

#: executor dispatch method names
_DISPATCH_ATTRS = frozenset({"map", "submit"})

#: constructor calls whose result is shared mutable state
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)


def _is_executorish(expr: ast.expr) -> bool:
    """True when *expr* plausibly names an executor or worker pool."""
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    else:
        return False
    low = name.lower().lstrip("_")
    return "executor" in low or low == "pool" or low.endswith("_pool")


def _dispatch_callable(node: ast.Call) -> Optional[ast.expr]:
    """The submitted callable when *node* is an executor dispatch."""
    fn = node.func
    if (
        isinstance(fn, ast.Attribute)
        and fn.attr in _DISPATCH_ATTRS
        and _is_executorish(fn.value)
        and node.args
    ):
        return node.args[0]
    return None


def _mutable_globals(tree: ast.Module) -> Dict[str, ast.stmt]:
    """Module-level names bound to mutable containers, with anchors."""
    out: Dict[str, ast.stmt] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.setdefault(target.id, stmt)
    return out


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = (
            fn.id
            if isinstance(fn, ast.Name)
            else fn.attr if isinstance(fn, ast.Attribute) else ""
        )
        return name in _MUTABLE_CALLS
    return False


def _top_level_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _worker_functions(project: ProjectContext) -> Dict[str, Set[str]]:
    """``{module: {function}}`` dispatched through an executor anywhere.

    A dispatch whose callable is a bare name resolves either to a
    top-level function of the dispatching module or, through that
    module's ``from m import f`` aliases, to a function of another
    project module.
    """
    workers: Dict[str, Set[str]] = {}
    for name in project.module_names:
        info = project.modules[name]
        top_level = _top_level_functions(info.ctx.tree)
        origins: Dict[str, Tuple[str, str]] = {
            fi.asname: (fi.module, fi.name) for fi in info.from_imports
        }
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _dispatch_callable(node)
            if not isinstance(target, ast.Name):
                continue
            if target.id in top_level:
                workers.setdefault(name, set()).add(target.id)
            elif target.id in origins:
                origin_module, origin_name = origins[target.id]
                origin = project.modules.get(origin_module)
                if origin is not None and origin_name in _top_level_functions(
                    origin.ctx.tree
                ):
                    workers.setdefault(origin_module, set()).add(origin_name)
    return workers


def _reachable_functions(
    module_functions: Dict[str, ast.FunctionDef], roots: Set[str]
) -> Set[str]:
    """Close *roots* over same-module calls to top-level functions."""
    reached: Set[str] = set()
    frontier = [r for r in roots if r in module_functions]
    while frontier:
        fn_name = frontier.pop()
        if fn_name in reached:
            continue
        reached.add(fn_name)
        for node in ast.walk(module_functions[fn_name]):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in module_functions
                and node.func.id not in reached
            ):
                frontier.append(node.func.id)
    return reached


def _names_touched(fn: ast.FunctionDef) -> Tuple[Set[str], Set[str]]:
    """``(free loads, global decls)`` of one function body."""
    bound: Set[str] = {a.arg for a in _all_args(fn.args)}
    loads: Set[str] = set()
    globals_decl: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            globals_decl.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                bound.add(node.name)
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
        elif isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                loads.add(node.id)
            else:
                bound.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    bound.add((alias.asname or alias.name).split(".")[0])
    free = {n for n in loads if n not in bound} | globals_decl
    return free, globals_decl


def _all_args(args: ast.arguments) -> List[ast.arg]:
    out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        out.append(args.vararg)
    if args.kwarg is not None:
        out.append(args.kwarg)
    return out


class WorkerSharedStateRule(GraphRule):
    """RPR511: no mutable module globals reachable from executor workers."""

    rule_id = "RPR511"
    severity = Severity.ERROR
    description = (
        "mutable module-level state reachable from an executor worker "
        "function — pass state through the picklable payload instead"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        workers = _worker_functions(project)
        for module_name in sorted(workers):
            info = project.modules[module_name]
            mutables = _mutable_globals(info.ctx.tree)
            if not mutables:
                continue
            functions = _top_level_functions(info.ctx.tree)
            reached = _reachable_functions(functions, workers[module_name])
            touched_by: Dict[str, Set[str]] = {}
            for fn_name in sorted(reached):
                free, _ = _names_touched(functions[fn_name])
                for global_name in free & set(mutables):
                    touched_by.setdefault(global_name, set()).add(fn_name)
            for global_name in sorted(touched_by):
                via = ", ".join(sorted(touched_by[global_name]))
                yield info.ctx.finding(
                    self,
                    mutables[global_name],
                    f"module-level mutable {global_name!r} is reachable "
                    f"from executor worker(s) {via}: process workers see a "
                    "stale copy and thread workers race — move the state "
                    "into the worker payload",
                )


class UnpicklableWorkRule(GraphRule):
    """RPR512: executors take module-level functions, never closures."""

    rule_id = "RPR512"
    severity = Severity.ERROR
    description = (
        "lambda or closure submitted to an executor — the process "
        "backend cannot pickle it; use a module-level worker function"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for name in project.module_names:
            info = project.modules[name]
            yield from self._scan(info, info.ctx.tree.body, frozenset())

    def _scan(
        self,
        info: ModuleInfo,
        stmts: List[ast.stmt],
        local_defs: FrozenSet[str],
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = frozenset(
                    node.name
                    for node in ast.walk(stmt)
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node is not stmt
                )
                yield from self._scan_body(info, stmt, local_defs | nested)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._scan(info, stmt.body, local_defs)

    def _scan_body(
        self,
        info: ModuleInfo,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        local_defs: FrozenSet[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            target = _dispatch_callable(node)
            if target is None:
                continue
            if isinstance(target, ast.Lambda):
                yield info.ctx.finding(
                    self,
                    target,
                    "lambda submitted to an executor cannot be pickled by "
                    "the process backend — define a module-level worker",
                )
            elif isinstance(target, ast.Name) and target.id in local_defs:
                yield info.ctx.finding(
                    self,
                    target,
                    f"closure {target.id!r} submitted to an executor "
                    "cannot be pickled by the process backend — hoist it "
                    "to module level and pass state via the payload",
                )


class GetstateContractRule(GraphRule):
    """RPR513: ``__getstate__`` needs ``__setstate__`` or a documented contract."""

    rule_id = "RPR513"
    severity = Severity.ERROR
    description = (
        "__getstate__ without a matching __setstate__ or a documented "
        "state-drop contract (comment above the method or docstring)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for name in project.module_names:
            info = project.modules[name]
            for node in ast.walk(info.ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                methods = {
                    stmt.name: stmt
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                getstate = methods.get("__getstate__")
                if getstate is None or "__setstate__" in methods:
                    continue
                if ast.get_docstring(getstate):
                    continue
                if self._has_comment_above(info, getstate):
                    continue
                yield info.ctx.finding(
                    self,
                    getstate,
                    f"{node.name}.__getstate__ has no __setstate__ and no "
                    "documented contract: add the restore hook, or a "
                    "comment/docstring saying which state is dropped and "
                    "why rebuilding it is safe",
                )

    @staticmethod
    def _has_comment_above(
        info: ModuleInfo, fn: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> bool:
        """A ``#`` comment within the three lines above the def (or its
        first decorator) counts as the documented contract."""
        first_line = min(
            [fn.lineno] + [d.lineno for d in fn.decorator_list]
        )
        lines = info.ctx.lines
        for lineno in range(max(1, first_line - 3), first_line):
            stripped = lines[lineno - 1].strip()
            if stripped.startswith("#"):
                return True
        return False


RULES: Tuple[GraphRule, ...] = (
    WorkerSharedStateRule(),
    UnpicklableWorkRule(),
    GetstateContractRule(),
)
