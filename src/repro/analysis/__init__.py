"""Static analysis for reproducibility invariants.

The evaluation protocol of the paper (monthly snapshots, long-term
FDR/FAR simulation) is only meaningful over bit-reproducible streams.
PRs 1-3 *proved* backend equivalence test by test; this package
*enforces* the invariants that make those proofs hold, as machine-checked
AST rules in two stages.

Per-file rules (one :class:`FileContext` at a time):

* :mod:`repro.analysis.rules.determinism` — no unseeded RNG entry
  points, no wall-clock reads outside a narrow allowlist;
* :mod:`repro.analysis.rules.numerics` — no ``==``/``!=`` on
  float-typed expressions, no silent float-narrowing casts;
* :mod:`repro.analysis.rules.hygiene` — no mutable default arguments,
  no broad exception swallowing, disciplined metric registration;
* :mod:`repro.analysis.rules.api` — ``__all__`` consistent with the
  public definitions of each module.

Whole-program graph rules (a :class:`~repro.analysis.graph.ProjectContext`
over the full ``src/`` tree):

* :mod:`repro.analysis.rules.layering` — declared import layer order,
  import-cycle freedom;
* :mod:`repro.analysis.rules.concurrency` — executor workers free of
  shared mutable module state, picklable, with documented
  ``__getstate__`` contracts;
* :mod:`repro.analysis.rules.contracts` — project-wide ``repro_*``
  metric uniqueness, cross-module from-import resolution.

The engine (:mod:`repro.analysis.engine`) walks files, dispatches one
shared AST per file to every applicable rule, runs the graph stage over
the reused parses, honours inline ``# repro: noqa RPR101 — reason``
suppressions, and diffs findings against a committed baseline
(:mod:`repro.analysis.baseline`) so the tool lands strict-by-default.
Exposed on the CLI as ``repro lint`` and ``repro graph``.
"""

from repro.analysis.baseline import (
    Baseline,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    FileContext,
    Finding,
    GraphRule,
    LintReport,
    Rule,
    Severity,
    iter_python_files,
    lint_paths,
    suppression_reason,
)
from repro.analysis.graph import (
    DECLARED_LAYERS,
    ProjectContext,
    build_graph_doc,
    build_project,
    render_dot,
    validate_graph_doc,
)
from repro.analysis.rules import ALL_RULES, GRAPH_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Baseline",
    "DECLARED_LAYERS",
    "FileContext",
    "Finding",
    "GRAPH_RULES",
    "GraphRule",
    "LintReport",
    "ProjectContext",
    "Rule",
    "Severity",
    "build_graph_doc",
    "build_project",
    "iter_python_files",
    "lint_paths",
    "load_baseline",
    "prune_baseline",
    "render_dot",
    "rules_by_id",
    "suppression_reason",
    "validate_graph_doc",
    "write_baseline",
]
