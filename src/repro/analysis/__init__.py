"""Static analysis for reproducibility invariants.

The evaluation protocol of the paper (monthly snapshots, long-term
FDR/FAR simulation) is only meaningful over bit-reproducible streams.
PRs 1-3 *proved* backend equivalence test by test; this package
*enforces* the invariants that make those proofs hold, as machine-checked
AST rules:

* :mod:`repro.analysis.rules.determinism` — no unseeded RNG entry
  points, no wall-clock reads outside a narrow allowlist;
* :mod:`repro.analysis.rules.numerics` — no ``==``/``!=`` on
  float-typed expressions, no silent float-narrowing casts;
* :mod:`repro.analysis.rules.hygiene` — no mutable default arguments,
  no broad exception swallowing, disciplined metric registration;
* :mod:`repro.analysis.rules.api` — ``__all__`` consistent with the
  public definitions of each module.

The engine (:mod:`repro.analysis.engine`) walks files, dispatches one
shared AST per file to every applicable rule, honours inline
``# repro: noqa RPR101 — reason`` suppressions, and diffs findings
against a committed baseline (:mod:`repro.analysis.baseline`) so the
tool lands strict-by-default.  Exposed on the CLI as ``repro lint``.
"""

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.engine import (
    FileContext,
    Finding,
    LintReport,
    Rule,
    Severity,
    iter_python_files,
    lint_paths,
)
from repro.analysis.rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "iter_python_files",
    "lint_paths",
    "load_baseline",
    "rules_by_id",
    "write_baseline",
]
