"""Rule engine: file walker, per-rule AST dispatch, findings, suppression.

Design constraints, in order:

1. **Dependency-free** — stdlib ``ast`` only, so the linter can run in
   CI, pre-commit, and the container image without any extra install.
2. **One parse per file** — every rule receives the same
   :class:`FileContext` (source, lines, parsed tree), so adding rules
   is O(rules), not O(rules × parses).
3. **Deterministic output** — files are walked in sorted order and
   findings are sorted by (path, line, col, rule), so two runs over the
   same tree emit byte-identical reports; the linter holds itself to
   the invariants it checks.

Suppression uses an inline comment on the flagged line::

    value = X.astype(np.float32)  # repro: noqa RPR202 — SMART schema is float32

``# repro: noqa`` with no ids suppresses every rule on that line; with
ids it suppresses exactly those.  Suppressed findings are counted (they
appear in ``--stats``) but never fail a run.
"""

from __future__ import annotations

import ast
import enum
import hashlib
import re
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # annotation-only: the graph stage is imported lazily
    from repro.analysis.graph import ProjectContext

#: Run-timing clock, held *by reference* so the linter never calls the
#: wall clock at module scope and callers (tests, deterministic JSON
#: comparisons) can inject a fake — the same clock-by-reference pattern
#: as ``repro.obs.tracing.Tracer``; RPR102 flags clock *calls*, and the
#: sanctioned call site is the engine's single ``clock()`` below.
_DEFAULT_CLOCK: Callable[[], float] = time.perf_counter

#: ``# repro: noqa`` / ``# repro: noqa RPR101, RPR102 — reason``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\s*:?\s*(?P<ids>RPR\d+(?:\s*,\s*RPR\d+)*))?"
    r"(?:\s*[—–-]+\s*(?P<reason>\S.*))?",
)

#: rule id reserved for files the engine itself cannot parse
PARSE_ERROR_RULE = "RPR000"


class Severity(str, enum.Enum):
    """How bad a finding is; ``ERROR`` findings fail the run."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a file:line:col.

    ``snippet`` is the stripped source line: it feeds the baseline
    fingerprint, which is deliberately *line-number free* so that
    unrelated edits above a grandfathered finding do not un-baseline it.
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def location(self) -> str:
        """``path:line:col`` — clickable in most terminals."""
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Stable identity for baseline diffing (rule + path + snippet)."""
        payload = f"{self.rule_id}\x00{self.path}\x00{self.snippet}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class FileContext:
    """Everything a rule needs about one file: parsed once, shared."""

    path: str
    source: str
    lines: List[str]
    tree: ast.Module

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        *,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a :class:`Finding` for *node* under *rule*."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule_id=rule.rule_id,
            severity=severity or rule.severity,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


class Rule:
    """Base class for one invariant check.

    Subclasses set ``rule_id`` (stable, ``RPR###``), ``severity``,
    ``description`` (one line, surfaced in docs and ``--stats``), and
    optionally ``skip_globs`` — path patterns where the invariant does
    not apply (e.g. benchmarks are *supposed* to read the clock).  Path
    scoping lives on the rule, not in per-file noqa spam, so the policy
    is auditable in one place.
    """

    rule_id: str = "RPR999"
    severity: Severity = Severity.ERROR
    description: str = ""
    skip_globs: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """False when *path* matches one of the rule's ``skip_globs``."""
        return not any(_match_glob(path, g) for g in self.skip_globs)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file; override in subclasses."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.rule_id}: {self.description}>"


class GraphRule:
    """Base class for one *whole-program* invariant check.

    Where :class:`Rule` sees a single :class:`FileContext`,
    ``GraphRule`` subclasses receive the parsed
    :class:`~repro.analysis.graph.ProjectContext` — the project symbol
    table, import graph, and conservative call graph — and check
    properties no single file can witness: layer ordering, import
    cycles, pickling contracts, cross-module metric uniqueness.

    Findings are ordinary :class:`Finding` records anchored at one
    file:line, so fingerprints, baselines, ``# repro: noqa`` and JSON
    output are shared with the per-file stage unchanged.
    """

    rule_id: str = "RPR999"
    severity: Severity = Severity.ERROR
    description: str = ""

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield findings across the whole project; override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<GraphRule {self.rule_id}: {self.description}>"


def _match_glob(path: str, pattern: str) -> bool:
    """fnmatch that tolerates both repo-relative and nested prefixes."""
    return fnmatch(path, pattern) or fnmatch(path, "*/" + pattern)


def _suppressed_ids(line: str) -> Optional[frozenset]:
    """Rule ids a ``# repro: noqa`` comment on *line* suppresses.

    Returns None when the line has no suppression, an empty frozenset
    for a blanket ``# repro: noqa``, and the listed ids otherwise.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    ids = m.group("ids")
    if not ids:
        return frozenset()
    return frozenset(part.strip() for part in ids.split(","))


def is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    """True when the finding's source line carries a matching noqa."""
    if not (0 < finding.line <= len(lines)):
        return False
    ids = _suppressed_ids(lines[finding.line - 1])
    if ids is None:
        return False
    return not ids or finding.rule_id in ids


def suppression_reason(line: str) -> Optional[str]:
    """The reviewer-facing reason of a ``# repro: noqa`` comment.

    Returns None both for lines with no suppression and for
    suppressions written without a reason — the clean-gate test uses
    the distinction to enforce that every suppression in the tree says
    *why*.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    reason = m.group("reason")
    return reason.strip() if reason else None


@dataclass
class LintReport:
    """Outcome of one lint run: findings plus run statistics."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    runtime_seconds: float = 0.0
    rules_run: int = 0

    def stats(self) -> Dict[str, object]:
        """``--stats`` payload: per-rule / per-severity counts, totals."""
        by_rule: Dict[str, int] = {}
        by_severity: Dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
            by_severity[f.severity.value] = by_severity.get(f.severity.value, 0) + 1
        return {
            "files_scanned": self.files_scanned,
            "rules_run": self.rules_run,
            "findings_total": len(self.findings),
            "suppressed_total": len(self.suppressed),
            "findings_by_rule": dict(sorted(by_rule.items())),
            "findings_by_severity": dict(sorted(by_severity.items())),
            "runtime_seconds": round(self.runtime_seconds, 4),
        }


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield ``.py`` files under *paths* (files or directories), sorted.

    Hidden directories and ``__pycache__`` are skipped; a path that does
    not exist raises ``FileNotFoundError`` rather than silently linting
    nothing (a typo must not report a clean run).
    """
    seen = set()
    for raw in paths:
        p = Path(raw)
        if not p.exists():
            raise FileNotFoundError(f"lint target does not exist: {raw}")
        if p.is_file():
            candidates: Iterable[Path] = [p] if p.suffix == ".py" else []
        else:
            candidates = sorted(p.rglob("*.py"))
        for f in candidates:
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in f.parts
            ):
                continue
            key = f.resolve()
            if key in seen:
                continue
            seen.add(key)
            yield f


def _relative_posix(path: Path) -> str:
    """Repo-relative posix path when possible, else as given."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _lint_one(
    path: Path, rules: Sequence[Rule]
) -> Tuple[List[Finding], List[Finding], Optional[FileContext]]:
    """Lint one file; returns active/suppressed findings and the context.

    The context is None when the file does not parse (the RPR000
    finding then carries the syntax error).
    """
    rel = _relative_posix(path)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            rule_id=PARSE_ERROR_RULE,
            severity=Severity.ERROR,
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
            snippet=(exc.text or "").strip(),
        )
        return [finding], [], None
    ctx = FileContext(path=rel, source=source, lines=lines, tree=tree)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(rel):
            continue
        for finding in rule.check(ctx):
            if is_suppressed(finding, lines):
                suppressed.append(finding)
            else:
                active.append(finding)
    return active, suppressed, ctx


def lint_file(path: Path, rules: Sequence[Rule]) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns ``(active, suppressed)`` findings."""
    active, suppressed, _ = _lint_one(path, rules)
    return active, suppressed


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    *,
    graph_rules: Optional[Sequence[GraphRule]] = None,
    project_root: Optional[str] = None,
    clock: Optional[Callable[[], float]] = None,
) -> LintReport:
    """Walk *paths*, run every per-file rule, then the graph stage.

    The single library entry point.  The graph stage parses the whole
    project under *project_root* (default ``src``, when it exists) but
    only *reports* findings anchored in files covered by *paths* — so
    ``repro lint src/repro/analysis`` still analyses the full program
    while scoping its report, and ``--changed`` stays whole-program
    sound.

    ``graph_rules`` defaults to the registered graph packs when
    *rules* is also defaulted; passing an explicit per-file rule set
    keeps the run per-file only (targeted rule tests stay targeted)
    unless graph rules are passed explicitly too.

    ``clock`` is the run-timing source (by reference; defaults to
    ``time.perf_counter``) — inject a constant for byte-identical
    reports.
    """
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
        if graph_rules is None:
            from repro.analysis.rules import GRAPH_RULES

            graph_rules = GRAPH_RULES
    tick = clock if clock is not None else _DEFAULT_CLOCK
    t0 = tick()
    report = LintReport(rules_run=len(rules))
    contexts: Dict[str, FileContext] = {}
    walked: Set[str] = set()
    for path in iter_python_files(paths):
        active, suppressed, ctx = _lint_one(path, rules)
        report.findings.extend(active)
        report.suppressed.extend(suppressed)
        report.files_scanned += 1
        resolved = path.resolve().as_posix()
        walked.add(resolved)
        if ctx is not None:
            contexts[resolved] = ctx

    if graph_rules:
        from repro.analysis.graph import DEFAULT_PROJECT_ROOT, build_project

        root = project_root if project_root is not None else DEFAULT_PROJECT_ROOT
        if Path(root).is_dir():
            project = build_project(root, contexts=contexts)
            report.rules_run += len(graph_rules)
            for grule in graph_rules:
                for finding in grule.check_project(project):
                    if Path(finding.path).resolve().as_posix() not in walked:
                        continue
                    if is_suppressed(finding, project.lines_for(finding.path)):
                        report.suppressed.append(finding)
                    else:
                        report.findings.append(finding)

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    report.runtime_seconds = tick() - t0
    return report
