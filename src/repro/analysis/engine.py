"""Rule engine: file walker, per-rule AST dispatch, findings, suppression.

Design constraints, in order:

1. **Dependency-free** — stdlib ``ast`` only, so the linter can run in
   CI, pre-commit, and the container image without any extra install.
2. **One parse per file** — every rule receives the same
   :class:`FileContext` (source, lines, parsed tree), so adding rules
   is O(rules), not O(rules × parses).
3. **Deterministic output** — files are walked in sorted order and
   findings are sorted by (path, line, col, rule), so two runs over the
   same tree emit byte-identical reports; the linter holds itself to
   the invariants it checks.

Suppression uses an inline comment on the flagged line::

    value = X.astype(np.float32)  # repro: noqa RPR202 — SMART schema is float32

``# repro: noqa`` with no ids suppresses every rule on that line; with
ids it suppresses exactly those.  Suppressed findings are counted (they
appear in ``--stats``) but never fail a run.
"""

from __future__ import annotations

import ast
import enum
import hashlib
import re
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: ``# repro: noqa`` / ``# repro: noqa RPR101, RPR102 — reason``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\s*:?\s*(?P<ids>RPR\d+(?:\s*,\s*RPR\d+)*))?"
    r"(?:\s*[—–-]+\s*(?P<reason>\S.*))?",
)

#: rule id reserved for files the engine itself cannot parse
PARSE_ERROR_RULE = "RPR000"


class Severity(str, enum.Enum):
    """How bad a finding is; ``ERROR`` findings fail the run."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a file:line:col.

    ``snippet`` is the stripped source line: it feeds the baseline
    fingerprint, which is deliberately *line-number free* so that
    unrelated edits above a grandfathered finding do not un-baseline it.
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def location(self) -> str:
        """``path:line:col`` — clickable in most terminals."""
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Stable identity for baseline diffing (rule + path + snippet)."""
        payload = f"{self.rule_id}\x00{self.path}\x00{self.snippet}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class FileContext:
    """Everything a rule needs about one file: parsed once, shared."""

    path: str
    source: str
    lines: List[str]
    tree: ast.Module

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        *,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a :class:`Finding` for *node* under *rule*."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule_id=rule.rule_id,
            severity=severity or rule.severity,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


class Rule:
    """Base class for one invariant check.

    Subclasses set ``rule_id`` (stable, ``RPR###``), ``severity``,
    ``description`` (one line, surfaced in docs and ``--stats``), and
    optionally ``skip_globs`` — path patterns where the invariant does
    not apply (e.g. benchmarks are *supposed* to read the clock).  Path
    scoping lives on the rule, not in per-file noqa spam, so the policy
    is auditable in one place.
    """

    rule_id: str = "RPR999"
    severity: Severity = Severity.ERROR
    description: str = ""
    skip_globs: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """False when *path* matches one of the rule's ``skip_globs``."""
        return not any(_match_glob(path, g) for g in self.skip_globs)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file; override in subclasses."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.rule_id}: {self.description}>"


def _match_glob(path: str, pattern: str) -> bool:
    """fnmatch that tolerates both repo-relative and nested prefixes."""
    return fnmatch(path, pattern) or fnmatch(path, "*/" + pattern)


def _suppressed_ids(line: str) -> Optional[frozenset]:
    """Rule ids a ``# repro: noqa`` comment on *line* suppresses.

    Returns None when the line has no suppression, an empty frozenset
    for a blanket ``# repro: noqa``, and the listed ids otherwise.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    ids = m.group("ids")
    if not ids:
        return frozenset()
    return frozenset(part.strip() for part in ids.split(","))


def is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    """True when the finding's source line carries a matching noqa."""
    if not (0 < finding.line <= len(lines)):
        return False
    ids = _suppressed_ids(lines[finding.line - 1])
    if ids is None:
        return False
    return not ids or finding.rule_id in ids


@dataclass
class LintReport:
    """Outcome of one lint run: findings plus run statistics."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    runtime_seconds: float = 0.0
    rules_run: int = 0

    def stats(self) -> Dict[str, object]:
        """``--stats`` payload: per-rule / per-severity counts, totals."""
        by_rule: Dict[str, int] = {}
        by_severity: Dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
            by_severity[f.severity.value] = by_severity.get(f.severity.value, 0) + 1
        return {
            "files_scanned": self.files_scanned,
            "rules_run": self.rules_run,
            "findings_total": len(self.findings),
            "suppressed_total": len(self.suppressed),
            "findings_by_rule": dict(sorted(by_rule.items())),
            "findings_by_severity": dict(sorted(by_severity.items())),
            "runtime_seconds": round(self.runtime_seconds, 4),
        }


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield ``.py`` files under *paths* (files or directories), sorted.

    Hidden directories and ``__pycache__`` are skipped; a path that does
    not exist raises ``FileNotFoundError`` rather than silently linting
    nothing (a typo must not report a clean run).
    """
    seen = set()
    for raw in paths:
        p = Path(raw)
        if not p.exists():
            raise FileNotFoundError(f"lint target does not exist: {raw}")
        if p.is_file():
            candidates: Iterable[Path] = [p] if p.suffix == ".py" else []
        else:
            candidates = sorted(p.rglob("*.py"))
        for f in candidates:
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in f.parts
            ):
                continue
            key = f.resolve()
            if key in seen:
                continue
            seen.add(key)
            yield f


def _relative_posix(path: Path) -> str:
    """Repo-relative posix path when possible, else as given."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: Path, rules: Sequence[Rule]) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns ``(active, suppressed)`` findings."""
    rel = _relative_posix(path)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            rule_id=PARSE_ERROR_RULE,
            severity=Severity.ERROR,
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
            snippet=(exc.text or "").strip(),
        )
        return [finding], []
    ctx = FileContext(path=rel, source=source, lines=lines, tree=tree)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(rel):
            continue
        for finding in rule.check(ctx):
            if is_suppressed(finding, lines):
                suppressed.append(finding)
            else:
                active.append(finding)
    return active, suppressed


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[Rule]] = None
) -> LintReport:
    """Walk *paths* and run every rule; the single library entry point."""
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    # lint runtime is report metadata, not part of any reproducible
    # result stream — the one sanctioned clock read in src/
    t0 = time.perf_counter()  # repro: noqa RPR102 — lint runtime is report metadata
    report = LintReport(rules_run=len(rules))
    for path in iter_python_files(paths):
        active, suppressed = lint_file(path, rules)
        report.findings.extend(active)
        report.suppressed.extend(suppressed)
        report.files_scanned += 1
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    report.runtime_seconds = time.perf_counter() - t0  # repro: noqa RPR102 — lint runtime is report metadata
    return report
