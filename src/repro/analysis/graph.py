"""Whole-program project context: the linter's second, multi-file stage.

The per-file stage (:mod:`repro.analysis.engine`) sees one
:class:`FileContext` at a time, which is exactly right for local
invariants (an unseeded RNG call is wrong no matter what the rest of
the tree looks like) and exactly wrong for architectural ones: import
layering, cross-module pickling contracts, and project-wide metric
uniqueness are only visible when every module is on the table at once.

This module builds that table — dependency-free, stdlib ``ast`` only,
one parse per file (parses are reused from the per-file stage when the
engine drives both):

* a **module index**: every ``.py`` file under the project root mapped
  to its dotted module name, with a generous top-level symbol table
  (defs, classes, assignments, imports — including those nested under
  module-level ``if``/``try`` blocks and loops);
* an **import graph** at module granularity, where each edge records
  whether it is *type-only* (inside ``if TYPE_CHECKING:`` — no runtime
  dependency, exempt from layering and cycle analysis) and whether it
  is *deferred* (function-scoped — a runtime dependency that cannot
  create an import-time cycle);
* **strongly connected components** over the import-time edges, i.e.
  genuine import cycles;
* the **declared layer order** (:data:`DECLARED_LAYERS`) that the
  RPR501 architecture rule enforces, and the deterministic JSON / dot
  documents ``repro graph`` emits.

Graph rules (:class:`repro.analysis.engine.GraphRule` subclasses in
:mod:`repro.analysis.rules.layering` / ``concurrency`` / ``contracts``)
consume the :class:`ProjectContext` built here and emit ordinary
:class:`~repro.analysis.engine.Finding` records, so fingerprints,
baselines, ``# repro: noqa`` suppression, and JSON output are shared
with the per-file stage.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.engine import (
    FileContext,
    _relative_posix,
    iter_python_files,
)

#: the project's root package; modules outside it are ignored
ROOT_PACKAGE = "repro"

#: default directory the whole-program stage parses
DEFAULT_PROJECT_ROOT = "src"

#: The declared architecture, lowest layer first.  A module in layer N
#: may import (at runtime) only from layers <= N; the root package
#: facade (``repro/__init__``) is exempt — it exists to re-export the
#: public surface and legitimately touches every tier.  A package that
#: appears in no layer is itself an RPR501 finding: growing the tree
#: means declaring where new packages sit.
DECLARED_LAYERS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("foundations", ("utils", "smart", "features")),
    ("models", ("core", "obs", "streaming", "offline")),
    ("evaluation", ("eval", "parallel", "ops", "persistence", "strategies")),
    ("serving", ("service", "analysis")),
    ("edge", ("gateway", "runtime")),
    ("interface", ("cli",)),
)

#: graph-document format version (bump on schema change)
GRAPH_DOC_FORMAT = 1


def layer_of_package(package: Optional[str]) -> Optional[int]:
    """Layer index for a top-level package segment; None when undeclared.

    ``package`` is the first dotted segment after :data:`ROOT_PACKAGE`
    (``"core"`` for ``repro.core.forest``) or ``None`` for the root
    facade module itself.
    """
    if package is None:
        return None
    for index, (_, packages) in enumerate(DECLARED_LAYERS):
        if package in packages:
            return index
    return None


def declared_packages() -> FrozenSet[str]:
    """Every package segment named somewhere in the declared order."""
    out: Set[str] = set()
    for _, packages in DECLARED_LAYERS:
        out.update(packages)
    return frozenset(out)


@dataclass(frozen=True)
class ImportEdge:
    """One importer → imported dependency between project modules."""

    importer: str
    imported: str
    lineno: int
    col: int
    type_only: bool
    deferred: bool


@dataclass(frozen=True)
class FromImport:
    """One name pulled out of a project module via ``from m import n``.

    Kept separately from :class:`ImportEdge` because contract rules
    (RPR602) need the *name* and its anchor node, not just the edge,
    and concurrency rules resolve local aliases (``asname``) back to
    their defining module.
    """

    module: str
    name: str
    asname: str
    node: ast.stmt
    type_only: bool
    deferred: bool


@dataclass
class ModuleInfo:
    """Everything the graph stage knows about one project module."""

    name: str
    path: str
    ctx: FileContext
    is_package: bool
    bindings: FrozenSet[str]
    has_import_star: bool
    submodules: FrozenSet[str] = frozenset()
    edges: Tuple[ImportEdge, ...] = ()
    from_imports: Tuple[FromImport, ...] = ()

    @property
    def package(self) -> Optional[str]:
        """Top-level package segment, or None for the root facade."""
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else None

    @property
    def layer(self) -> Optional[int]:
        """Declared layer index, or None (root facade / undeclared)."""
        return layer_of_package(self.package)

    def resolves(self, name: str) -> bool:
        """True when ``from <this module> import name`` would succeed."""
        return name in self.bindings or name in self.submodules


def _is_type_checking_test(test: ast.expr) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


@dataclass
class _RawImport:
    """An Import/ImportFrom statement with its lexical placement."""

    node: ast.stmt
    type_only: bool
    deferred: bool


def _scan_imports(tree: ast.Module) -> List[_RawImport]:
    """Every import statement in the file, tagged type-only / deferred."""
    out: List[_RawImport] = []

    def visit(stmts: Sequence[ast.stmt], type_only: bool, deferred: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                out.append(_RawImport(stmt, type_only, deferred))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(stmt.body, type_only, True)
            elif isinstance(stmt, ast.ClassDef):
                visit(stmt.body, type_only, deferred)
            elif isinstance(stmt, ast.If):
                branch_type_only = type_only or _is_type_checking_test(stmt.test)
                visit(stmt.body, branch_type_only, deferred)
                visit(stmt.orelse, type_only, deferred)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                visit(stmt.body, type_only, deferred)
                visit(stmt.orelse, type_only, deferred)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                visit(stmt.body, type_only, deferred)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body, type_only, deferred)
                for handler in stmt.handlers:
                    visit(handler.body, type_only, deferred)
                visit(stmt.orelse, type_only, deferred)
                visit(stmt.finalbody, type_only, deferred)

    visit(tree.body, False, False)
    return out


def _collect_bindings(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Generous top-level symbol table: names ``from m import x`` can hit.

    Descends into module-level control flow (``if``/``try``/loops/
    ``with``) because conditional imports and platform-dependent
    definitions still bind at import time; does **not** descend into
    functions or classes (their names are the binding).
    """
    bound: Set[str] = set()
    star = False

    def bind_target(target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                bound.add(node.id)

    def visit(stmts: Sequence[ast.stmt]) -> None:
        nonlocal star
        for stmt in stmts:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    bind_target(target)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                bind_target(stmt.target)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                bind_target(stmt.target)
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        bind_target(item.optional_vars)
                visit(stmt.body)
            elif isinstance(stmt, ast.If):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                for handler in stmt.handlers:
                    visit(handler.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)

    visit(tree.body)
    return bound, star


def module_name_for(path: Path, root: Path) -> Optional[str]:
    """Dotted module name for *path* under *root*, or None if unrelated."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return None
    parts = list(rel.with_suffix("").parts)
    if not parts:
        return None
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


def _resolve_from_module(
    node: ast.ImportFrom, importer: str, is_package: bool
) -> Optional[str]:
    """Absolute module named by a ``from … import`` clause."""
    if node.level == 0:
        return node.module
    # relative import: climb `level` packages from the importer
    parts = importer.split(".")
    if not is_package:
        parts = parts[:-1]
    climb = node.level - 1
    if climb > len(parts):
        return None
    base = parts[: len(parts) - climb]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


@dataclass
class ProjectContext:
    """The parsed whole-program view every graph rule runs against."""

    root: str
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)

    @property
    def module_names(self) -> List[str]:
        """Sorted module names (the deterministic iteration order)."""
        return sorted(self.modules)

    def by_path(self, path: str) -> Optional[ModuleInfo]:
        """Module whose repo-relative path is *path*."""
        for info in self.modules.values():
            if info.path == path:
                return info
        return None

    def lines_for(self, path: str) -> List[str]:
        """Source lines of the module at *path* (for noqa suppression)."""
        info = self.by_path(path)
        return info.ctx.lines if info is not None else []

    def import_graph(
        self, *, include_type_only: bool = False, include_deferred: bool = True
    ) -> Dict[str, Set[str]]:
        """Adjacency view of the module graph under the given filters."""
        graph: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for info in self.modules.values():
            for edge in info.edges:
                if edge.type_only and not include_type_only:
                    continue
                if edge.deferred and not include_deferred:
                    continue
                graph[edge.importer].add(edge.imported)
        return graph

    def cycles(self) -> List[List[str]]:
        """Import-time cycles: SCCs of the non-deferred runtime graph.

        Deferred (function-scoped) imports cannot fire during module
        initialization, so they are excluded — moving an import into
        the using function is the sanctioned way to break a cycle.
        Each cycle is rotated to start at its smallest module name;
        the list is sorted, so output is deterministic.
        """
        graph = self.import_graph(include_type_only=False, include_deferred=False)
        sccs = _strongly_connected(graph)
        out: List[List[str]] = []
        for scc in sccs:
            if len(scc) == 1:
                node = scc[0]
                if node not in graph.get(node, ()):  # no self-loop
                    continue
            pivot = scc.index(min(scc))
            out.append(scc[pivot:] + scc[:pivot])
        out.sort()
        return out


def _strongly_connected(graph: Mapping[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC; components come back in deterministic order."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0

    for start in sorted(graph):
        if start in index_of:
            continue
        # work item: (node, iterator over successors)
        work: List[Tuple[str, Iterator[str]]] = [(start, iter(sorted(graph[start])))]
        index_of[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                component.reverse()
                sccs.append(component)
    return sccs


def build_project(
    root: str = DEFAULT_PROJECT_ROOT,
    *,
    contexts: Optional[Mapping[str, FileContext]] = None,
) -> ProjectContext:
    """Parse every module under *root* into a :class:`ProjectContext`.

    ``contexts`` lets the engine hand over files it already parsed for
    the per-file stage (keyed by resolved posix path), keeping the
    whole pipeline at one parse per file.  Files that fail to parse are
    skipped here — the per-file stage owns reporting RPR000 for them.
    """
    root_path = Path(root)
    contexts = contexts or {}
    project = ProjectContext(root=_relative_posix(root_path))

    paths: Dict[str, Path] = {}
    for file_path in iter_python_files([root]):
        name = module_name_for(file_path, root_path)
        if name is None or name.split(".")[0] != ROOT_PACKAGE:
            continue
        paths[name] = file_path

    for name in sorted(paths):
        file_path = paths[name]
        ctx = contexts.get(file_path.resolve().as_posix())
        if ctx is None:
            source = file_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError:
                continue  # per-file stage reports RPR000
            ctx = FileContext(
                path=_relative_posix(file_path),
                source=source,
                lines=source.splitlines(),
                tree=tree,
            )
        bindings, star = _collect_bindings(ctx.tree)
        project.modules[name] = ModuleInfo(
            name=name,
            path=ctx.path,
            ctx=ctx,
            is_package=file_path.name == "__init__.py",
            bindings=frozenset(bindings),
            has_import_star=star,
        )

    # second pass: submodules and resolved import edges
    for name, info in project.modules.items():
        prefix = name + "."
        info.submodules = frozenset(
            other[len(prefix):]
            for other in project.modules
            if other.startswith(prefix) and "." not in other[len(prefix):]
        )
    for name, info in project.modules.items():
        edges: List[ImportEdge] = []
        from_imports: List[FromImport] = []
        for raw in _scan_imports(info.ctx.tree):
            node = raw.node
            targets: List[str] = []
            if isinstance(node, ast.Import):
                for alias in node.names:
                    targets.append(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_from_module(node, name, info.is_package)
                if base is None:
                    continue
                # `from pkg import submodule` depends on the submodule,
                # not on pkg/__init__ having finished: Python's importer
                # falls back to the submodule when the package is only
                # partially initialized, which is the sanctioned circular
                # idiom inside a package.  The edge to `base` itself is
                # only real when some imported name must come from the
                # package body (an attribute, or `*`).
                base_needed = False
                for alias in node.names:
                    if alias.name == "*":
                        base_needed = True
                        continue
                    if _is_project_module(base, project):
                        from_imports.append(
                            FromImport(
                                module=base,
                                name=alias.name,
                                asname=alias.asname or alias.name,
                                node=node,
                                type_only=raw.type_only,
                                deferred=raw.deferred,
                            )
                        )
                    child = f"{base}.{alias.name}"
                    if child in project.modules:
                        targets.append(child)
                    else:
                        base_needed = True
                if base_needed:
                    targets.append(base)
            for target in targets:
                resolved = _resolve_to_project_module(target, project)
                if resolved is None or resolved == name:
                    continue
                edges.append(
                    ImportEdge(
                        importer=name,
                        imported=resolved,
                        lineno=node.lineno,
                        col=node.col_offset + 1,
                        type_only=raw.type_only,
                        deferred=raw.deferred,
                    )
                )
        info.edges = tuple(edges)
        info.from_imports = tuple(from_imports)
    return project


def _is_project_module(name: str, project: ProjectContext) -> bool:
    return name in project.modules


def _resolve_to_project_module(
    name: str, project: ProjectContext
) -> Optional[str]:
    """Map an imported dotted name onto a project module, if any.

    ``repro.core.forest`` resolves exactly; ``repro.missing`` resolves
    to nothing (RPR602 reports unresolvable *names*, not modules —
    a module that does not exist fails at import time already).
    """
    if name in project.modules:
        return name
    return None


# ----------------------------------------------------------------- documents
def build_graph_doc(
    project: ProjectContext,
    *,
    cycles: Optional[List[List[str]]] = None,
    violations: Optional[List[Dict[str, object]]] = None,
) -> Dict[str, object]:
    """Deterministic JSON document for ``repro graph --format json``."""
    modules: List[Dict[str, object]] = []
    for name in project.module_names:
        info = project.modules[name]
        runtime = sorted(
            {e.imported for e in info.edges if not e.type_only and not e.deferred}
        )
        deferred = sorted(
            {e.imported for e in info.edges if not e.type_only and e.deferred}
        )
        type_only = sorted({e.imported for e in info.edges if e.type_only})
        modules.append(
            {
                "module": name,
                "path": info.path,
                "package": info.package,
                "layer": info.layer,
                "imports": runtime,
                "deferred_imports": deferred,
                "type_only_imports": type_only,
            }
        )
    layers = [
        {"index": i, "name": layer_name, "packages": sorted(packages)}
        for i, (layer_name, packages) in enumerate(DECLARED_LAYERS)
    ]
    return {
        "format": GRAPH_DOC_FORMAT,
        "root": project.root,
        "layers": layers,
        "modules": modules,
        "cycles": cycles if cycles is not None else project.cycles(),
        "violations": violations or [],
    }


def validate_graph_doc(doc: Mapping[str, object]) -> None:
    """Schema-check a graph document; raises ``ValueError`` on drift."""
    expected_keys = {"format", "root", "layers", "modules", "cycles", "violations"}
    if set(doc) != expected_keys:
        raise ValueError(
            f"graph doc keys {sorted(doc)} != expected {sorted(expected_keys)}"
        )
    if doc["format"] != GRAPH_DOC_FORMAT:
        raise ValueError(f"graph doc format {doc['format']!r} != {GRAPH_DOC_FORMAT}")
    layers = doc["layers"]
    if not isinstance(layers, list) or not layers:
        raise ValueError("graph doc: 'layers' must be a non-empty list")
    for layer in layers:
        if not isinstance(layer, dict) or set(layer) != {"index", "name", "packages"}:
            raise ValueError(f"graph doc: malformed layer entry {layer!r}")
    modules = doc["modules"]
    if not isinstance(modules, list) or not modules:
        raise ValueError("graph doc: 'modules' must be a non-empty list")
    module_keys = {
        "module",
        "path",
        "package",
        "layer",
        "imports",
        "deferred_imports",
        "type_only_imports",
    }
    names: List[str] = []
    for entry in modules:
        if not isinstance(entry, dict) or set(entry) != module_keys:
            raise ValueError(f"graph doc: malformed module entry {entry!r}")
        if not isinstance(entry["module"], str):
            raise ValueError("graph doc: module name must be a string")
        names.append(entry["module"])
        for key in ("imports", "deferred_imports", "type_only_imports"):
            value = entry[key]
            if not isinstance(value, list) or value != sorted(value):
                raise ValueError(
                    f"graph doc: {entry['module']}.{key} must be a sorted list"
                )
    if names != sorted(names):
        raise ValueError("graph doc: modules must be sorted by name")
    cycles = doc["cycles"]
    if not isinstance(cycles, list):
        raise ValueError("graph doc: 'cycles' must be a list")
    for cycle in cycles:
        if not isinstance(cycle, list) or not all(
            isinstance(m, str) for m in cycle
        ):
            raise ValueError(f"graph doc: malformed cycle {cycle!r}")
    if not isinstance(doc["violations"], list):
        raise ValueError("graph doc: 'violations' must be a list")


def render_dot(doc: Mapping[str, object]) -> str:
    """Package-level Graphviz rendering of a graph document.

    Modules aggregate to their top-level package (the facade module is
    skipped), packages cluster by declared layer, and edges that exist
    *only* as type-only imports are dashed.  Output is fully sorted, so
    two runs over the same tree emit byte-identical dot.
    """
    modules = doc["modules"]
    assert isinstance(modules, list)
    layers = doc["layers"]
    assert isinstance(layers, list)

    package_layer: Dict[str, Optional[int]] = {}
    runtime_edges: Set[Tuple[str, str]] = set()
    type_edges: Set[Tuple[str, str]] = set()
    module_package = {
        entry["module"]: entry["package"] for entry in modules
    }
    for entry in modules:
        pkg = entry["package"]
        if pkg is None:
            continue
        package_layer.setdefault(pkg, entry["layer"])
        for key, bucket in (
            ("imports", runtime_edges),
            ("deferred_imports", runtime_edges),
            ("type_only_imports", type_edges),
        ):
            for target in entry[key]:
                target_pkg = module_package.get(target)
                if target_pkg is None or target_pkg == pkg:
                    continue
                bucket.add((pkg, target_pkg))
    type_edges -= runtime_edges

    lines = [
        "digraph repro {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for layer in layers:
        members = sorted(
            pkg for pkg, idx in package_layer.items() if idx == layer["index"]
        )
        if not members:
            continue
        lines.append(f"  subgraph cluster_{layer['index']} {{")
        lines.append(f'    label="L{layer["index"]} {layer["name"]}";')
        for pkg in members:
            lines.append(f'    "{pkg}";')
        lines.append("  }")
    undeclared = sorted(
        pkg for pkg, idx in package_layer.items() if idx is None
    )
    for pkg in undeclared:
        lines.append(f'  "{pkg}";')
    for src, dst in sorted(runtime_edges):
        lines.append(f'  "{src}" -> "{dst}";')
    for src, dst in sorted(type_edges):
        lines.append(f'  "{src}" -> "{dst}" [style=dashed];')
    lines.append("}")
    return "\n".join(lines) + "\n"
