"""Micro-batching between concurrent gateway requests and the fleet.

Many connections submit small ingest requests; the fleet is most
efficient (and its shard executor best utilized) when events arrive in
micro-batches.  The :class:`MicroBatcher` sits between the two: requests
enqueue onto a bounded admission queue, a single flush loop coalesces
whatever is queued into one :meth:`~repro.service.fleet.FleetMonitor.
ingest` call, and every coalesced request resolves with the flush's
outcome.

**Deterministic flush policy** — a flush happens when either

* the coalesced batch reaches ``max_batch_events``, or
* the admission queue is empty at the moment the loop looks (flush-on-
  idle).

There is no timer: the policy depends only on the *arrival interleaving*
of requests, never on the wall clock, so a given submission sequence
always produces the same flush boundaries — which is what makes the
gateway's single-connection determinism contract testable.  The
injectable ``clock`` exists purely to time flushes for the
``repro_gateway_flush_seconds`` histogram (by-reference default,
mirroring :class:`~repro.service.fleet.FleetMonitor`; the RPR102
wall-clock allowlist stays empty).

**Backpressure** — :meth:`try_submit` is admission control: it refuses
(returns None) when the queued-event count would exceed
``max_queue_events``, and the server turns that refusal into an
``overloaded`` response instead of growing memory without bound.

**Ordering** — the queue is FIFO and the flush loop concatenates
requests in queue order, so events reach the fleet in admission order.
Within one connection that is send order; across connections it is
whichever order the server admitted the requests (see
``docs/operations.md`` for the exact cross-connection semantics).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.obs.tracing import NULL_TRACER, NullTracer
from repro.service.fleet import DiskEvent, EmittedAlarm, FleetBackend
from repro.service.metrics import MetricsRegistry

__all__ = [
    "BATCH_EVENT_BUCKETS",
    "FlushResult",
    "MicroBatcher",
]

#: histogram bounds for flush sizes (events per coalesced batch)
BATCH_EVENT_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    2048.0, 4096.0,
)


@dataclass(frozen=True)
class FlushResult:
    """Outcome of one coalesced flush, shared by its member requests.

    ``accepted`` counts events the fleet admitted (its ``_seq``
    advance); ``quarantined`` counts events diverted to the dead-letter
    queue.  ``requests`` is how many submissions the flush coalesced —
    1 for a lone request, more under concurrency.  Alarm attribution is
    flush-scoped: every member request sees the full ``alarms`` list of
    its flush (with a sequential single connection each flush holds only
    that connection's events, so the attribution is exact).
    """

    events: int
    accepted: int
    quarantined: int
    requests: int
    flush_seq: int
    alarms: List[EmittedAlarm] = field(default_factory=list)


@dataclass
class _Submission:
    events: List[DiskEvent]
    future: "asyncio.Future[FlushResult]"


class _Stop:
    """Queue sentinel: flush what is pending, then exit the loop."""


_STOP = _Stop()


class MicroBatcher:
    """Coalesces concurrent ingest submissions into fleet micro-batches.

    Parameters
    ----------
    fleet:
        The :class:`~repro.service.fleet.FleetBackend` flushes feed —
        the in-process :class:`~repro.service.fleet.FleetMonitor` or
        the process-runtime :class:`~repro.runtime.supervisor.
        FleetSupervisor`.
        ``ingest`` runs inline on the event loop: the fleet mutates
        shared shard state, so a single flush loop *is* the
        synchronization — no locks, no cross-thread handoff, and flush
        order equals admission order.
    max_batch_events:
        Coalescing cap: a flush never carries more events than this.
    max_queue_events:
        Admission bound: :meth:`try_submit` refuses once this many
        events are queued but not yet flushed.  This is the gateway's
        primary load-shedding valve.
    registry:
        Metrics sink for the ``repro_gateway_*`` batcher instruments;
        a private registry is created when omitted.
    tracer:
        Stage tracer; flushes record a ``gateway.flush`` span.
    clock:
        Zero-argument monotonic-seconds callable, held by reference
        (default ``time.perf_counter``) and read only around flushes for
        the latency histogram.
    flush_gate:
        Optional :class:`asyncio.Event` awaited before every flush.
        Tests (and operators staging a restart) clear it to hold flushes
        while admission keeps filling the queue — the deterministic way
        to exercise the overload path.
    """

    def __init__(
        self,
        fleet: FleetBackend,
        *,
        max_batch_events: int = 1024,
        max_queue_events: int = 8192,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        clock: Callable[[], float] = time.perf_counter,
        flush_gate: Optional[asyncio.Event] = None,
    ) -> None:
        if max_batch_events <= 0:
            raise ValueError(
                f"max_batch_events must be > 0, got {max_batch_events}"
            )
        if max_queue_events < max_batch_events:
            raise ValueError(
                f"max_queue_events ({max_queue_events}) must be >= "
                f"max_batch_events ({max_batch_events})"
            )
        self.fleet = fleet
        self.max_batch_events = int(max_batch_events)
        self.max_queue_events = int(max_queue_events)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer: NullTracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock
        self._flush_gate = flush_gate
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._pending_events = 0
        self._n_flushes = 0
        self._stopped = False
        self._task: Optional["asyncio.Task[None]"] = None
        self._instrument()

    def _instrument(self) -> None:
        reg = self.registry
        reg.gauge(
            "repro_gateway_queue_depth",
            help="events admitted but not yet flushed to the fleet",
            fn=lambda: float(self._pending_events),
        )
        self._flushes_c = reg.counter(
            "repro_gateway_flushes_total",
            help="coalesced micro-batches flushed to the fleet",
        )
        self._ingested_c = reg.counter(
            "repro_gateway_ingested_events_total",
            help="events the fleet accepted through the gateway",
        )
        self._quarantined_c = reg.counter(
            "repro_gateway_quarantined_events_total",
            help="gateway events the fleet diverted to the dead-letter queue",
        )
        self._batch_h = reg.histogram(
            "repro_gateway_batch_events",
            help="events per coalesced flush",
            buckets=BATCH_EVENT_BUCKETS,
        )
        self._flush_h = reg.histogram(
            "repro_gateway_flush_seconds",
            help="wall time per coalesced fleet flush",
        )

    # ------------------------------------------------------------ admission
    @property
    def pending_events(self) -> int:
        """Events admitted but not yet flushed."""
        return self._pending_events

    @property
    def n_flushes(self) -> int:
        """Lifetime flush count."""
        return self._n_flushes

    def try_submit(
        self, events: Sequence[DiskEvent]
    ) -> Optional["asyncio.Future[FlushResult]"]:
        """Admit one ingest request, or refuse it.

        Returns a future resolving to the request's :class:`FlushResult`,
        or None when the admission queue is full (the caller sheds) or
        the batcher has stopped.  Must be called on the event loop
        thread.
        """
        if self._stopped:
            return None
        if self._pending_events + len(events) > self.max_queue_events:
            return None
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[FlushResult]" = loop.create_future()
        self._pending_events += len(events)
        self._queue.put_nowait(_Submission(list(events), future))
        return future

    # ---------------------------------------------------------- flush loop
    def start(self) -> "asyncio.Task[None]":
        """Spawn the flush loop task (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="gateway-batcher"
            )
        return self._task

    async def drain_and_stop(self) -> None:
        """Flush everything already admitted, then stop the loop.

        New :meth:`try_submit` calls are refused from this point on.
        FIFO ordering guarantees every submission admitted before the
        stop sentinel is flushed before the loop exits — the heart of
        the graceful-drain contract.
        """
        self._stopped = True
        self._queue.put_nowait(_STOP)
        if self._task is not None:
            await self._task

    async def cancel(self) -> None:
        """Abort the flush loop without flushing (hard-stop path)."""
        self._stopped = True
        if self._task is not None and not self._task.done():
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass

    async def _run(self) -> None:
        while True:
            head = await self._queue.get()
            if isinstance(head, _Stop):
                return
            batch: List[_Submission] = [head]
            n_events = len(head.events)
            saw_stop = False
            while n_events < self.max_batch_events:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break  # flush-on-idle
                if isinstance(nxt, _Stop):
                    saw_stop = True
                    break
                batch.append(nxt)
                n_events += len(nxt.events)
            if self._flush_gate is not None:
                await self._flush_gate.wait()
            self._flush(batch)
            if saw_stop:
                return

    def _flush(self, batch: List[_Submission]) -> None:
        events: List[DiskEvent] = []
        for sub in batch:
            events.extend(sub.events)
        fleet = self.fleet
        seq_before = fleet.n_samples
        dl_before = fleet.dead_letters.total
        t0 = self._clock()
        error: Optional[BaseException] = None
        alarms: List[EmittedAlarm] = []
        with self.tracer.span("gateway.flush", items=len(events)):
            try:
                alarms = fleet.ingest(events)
            except Exception as exc:
                # strict-mode fleets raise on bad events; the flush loop
                # must survive to serve the next batch either way
                error = exc
        self._flush_h.observe(self._clock() - t0)
        self._pending_events -= len(events)
        self._n_flushes += 1
        self._flushes_c.inc()
        self._batch_h.observe(float(len(events)))
        if error is not None:
            for sub in batch:
                if not sub.future.done():
                    sub.future.set_exception(error)
            return
        accepted = fleet.n_samples - seq_before
        quarantined = fleet.dead_letters.total - dl_before
        self._ingested_c.inc(accepted)
        self._quarantined_c.inc(quarantined)
        result = FlushResult(
            events=len(events),
            accepted=accepted,
            quarantined=quarantined,
            requests=len(batch),
            flush_seq=self._n_flushes - 1,
            alarms=alarms,
        )
        for sub in batch:
            if not sub.future.done():
                sub.future.set_result(result)
