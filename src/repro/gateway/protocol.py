"""Wire protocol of the gateway: versioned newline-delimited JSON.

One request per line, one response per line, UTF-8 JSON with a ``"v"``
protocol-version field on every message.  JSON is the only encoding a
stdlib-only stack can both emit and parse without dependencies, and
newline framing keeps the server parseable with ``readline`` and the
protocol debuggable with ``nc``.

Determinism note: Python's ``json`` round-trips floats exactly —
``json.dumps`` emits ``repr(float)`` (the shortest string that parses
back to the same IEEE-754 double) and ``json.loads`` parses it back bit
for bit.  That property is what lets a stream ingested through the
gateway produce *bit-identical* forests and alarms to a direct
:meth:`~repro.service.fleet.FleetMonitor.ingest` of the same events.
Non-finite values (NaN/Inf) also survive the trip (Python's JSON
dialect) and are then quarantined by the fleet's admission check with
the same reason codes as a direct ingest.

Requests::

    {"v": 1, "op": "ingest", "id": 7, "events": [EVENT, ...]}
    {"v": 1, "op": "digest", "id": 8}
    {"v": 1, "op": "metrics", "id": 9}
    {"v": 1, "op": "healthz", "id": 10}
    {"v": 1, "op": "drain", "id": 11, "token": "..."}

where ``EVENT`` is ``{"disk_id": int|str, "x": [float, ...] | null,
"failed": bool, "tag": <json>}`` (``x`` and ``tag`` optional, ``failed``
defaults false).  ``id`` is an opaque client echo — responses carry it
back verbatim so pipelined clients can match replies.

Responses are ``{"v": 1, "id": ..., "ok": true, ...}`` on success and
``{"v": 1, "id": ..., "ok": false, "error": {"code": ..., "message":
...}}`` on failure; :data:`ERROR_CODES` is the closed set of codes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.service.fleet import DiskEvent, EmittedAlarm

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_CODES",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_OP",
    "ERR_OVERLOADED",
    "ERR_DRAINING",
    "ERR_UNAUTHORIZED",
    "ERR_INTERNAL",
    "ERR_TOO_LARGE",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "event_to_wire",
    "event_from_wire",
    "events_from_wire",
    "alarm_to_wire",
    "ok_response",
    "error_response",
]

#: bump on breaking wire changes; both ends reject a mismatched ``"v"``
PROTOCOL_VERSION = 1

#: default cap on one framed line (requests and responses); a line this
#: long is either a runaway client or an attack, not telemetry
MAX_LINE_BYTES = 4 * 1024 * 1024

#: the closed operation set
OPS: Tuple[str, ...] = ("ingest", "digest", "metrics", "healthz", "drain")

ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_OP = "unknown_op"
ERR_OVERLOADED = "overloaded"
ERR_DRAINING = "draining"
ERR_UNAUTHORIZED = "unauthorized"
ERR_INTERNAL = "internal"
ERR_TOO_LARGE = "too_large"

#: closed error-code set (also the label space of
#: ``repro_gateway_errors_total``, so it must stay bounded)
ERROR_CODES: Tuple[str, ...] = (
    ERR_BAD_REQUEST,
    ERR_UNKNOWN_OP,
    ERR_OVERLOADED,
    ERR_DRAINING,
    ERR_UNAUTHORIZED,
    ERR_INTERNAL,
    ERR_TOO_LARGE,
)


class ProtocolError(ValueError):
    """A message that violates the wire protocol (carries an error code)."""

    def __init__(self, message: str, *, code: str = ERR_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


def encode_message(payload: Dict[str, Any]) -> bytes:
    """One protocol message as a compact UTF-8 JSON line."""
    return (
        json.dumps(payload, separators=(",", ":"), ensure_ascii=False) + "\n"
    ).encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one framed line; raises :exc:`ProtocolError` on junk.

    Checks framing and the version field only — per-op fields are the
    dispatcher's job.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"unparseable message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this end speaks v{PROTOCOL_VERSION})"
        )
    return payload


# ------------------------------------------------------------------ events
def event_to_wire(event: DiskEvent) -> Dict[str, Any]:
    """A :class:`DiskEvent` as a JSON-ready dict.

    ``x`` becomes a plain float list (``repr`` round-trip exact, see the
    module docstring); ``tag`` must already be JSON-representable.
    """
    x = event.x
    return {
        "disk_id": event.disk_id,
        "x": None if x is None else [float(v) for v in np.asarray(x).ravel()],
        "failed": bool(event.failed),
        "tag": event.tag,
    }


def event_from_wire(obj: Any) -> DiskEvent:
    """Decode one wire event; raises :exc:`ProtocolError` on bad shape.

    Only *structural* validity is checked here (the fields exist and
    have JSON-sensible types); *semantic* admission — dimension, finite
    values, shardable id — stays in the fleet's
    :func:`~repro.service.faults.validate_event`, so gateway and direct
    ingestion reject exactly the same events with the same reason codes.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"event must be an object, got {type(obj).__name__}"
        )
    if "disk_id" not in obj:
        raise ProtocolError("event is missing 'disk_id'")
    disk_id = obj["disk_id"]
    if not isinstance(disk_id, (int, str)) or isinstance(disk_id, bool):
        raise ProtocolError(
            f"disk_id must be an int or str, got {type(disk_id).__name__}"
        )
    raw_x = obj.get("x")
    x: Optional[np.ndarray]
    if raw_x is None:
        x = None
    elif isinstance(raw_x, list):
        try:
            x = np.asarray(raw_x, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"x is not a numeric vector: {exc}") from exc
    else:
        raise ProtocolError(
            f"x must be a list of numbers or null, got {type(raw_x).__name__}"
        )
    failed = obj.get("failed", False)
    if not isinstance(failed, bool):
        raise ProtocolError(
            f"failed must be a bool, got {type(failed).__name__}"
        )
    return DiskEvent(disk_id=disk_id, x=x, failed=failed, tag=obj.get("tag"))


def events_from_wire(raw: Any) -> List[DiskEvent]:
    """Decode an ingest request's ``events`` list."""
    if not isinstance(raw, list):
        raise ProtocolError(
            f"'events' must be a list, got {type(raw).__name__}"
        )
    out: List[DiskEvent] = []
    for pos, obj in enumerate(raw):
        try:
            out.append(event_from_wire(obj))
        except ProtocolError as exc:
            raise ProtocolError(f"events[{pos}]: {exc}") from exc
    return out


def alarm_to_wire(emitted: EmittedAlarm) -> Dict[str, Any]:
    """One :class:`EmittedAlarm` as a JSON-ready dict."""
    return {
        "disk_id": emitted.alarm.disk_id,
        "score": float(emitted.alarm.score),
        "tag": emitted.alarm.tag,
        "action": emitted.action.value,
        "shard": emitted.shard,
        "seq": emitted.seq,
    }


# --------------------------------------------------------------- responses
def ok_response(request_id: Any, **fields: Any) -> Dict[str, Any]:
    """A success response envelope echoing the request id."""
    payload: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    payload.update(fields)
    return payload


def error_response(request_id: Any, code: str, message: str) -> Dict[str, Any]:
    """A failure response envelope (``code`` from :data:`ERROR_CODES`)."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
