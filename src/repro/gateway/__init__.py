"""repro.gateway — the network front door of the serving stack.

Until now every event entered :class:`~repro.service.fleet.FleetMonitor`
through an in-process call; the paper's deployment loop (§5) and the
telemetry-pipeline framing of DC-Prophet assume SMART events arrive
*over the network* from live collectors.  This subpackage is that
missing layer, stdlib-only (asyncio + json + socket):

* :mod:`~repro.gateway.protocol` — versioned newline-delimited-JSON
  wire format (``ingest`` / ``digest`` / ``metrics`` / ``healthz`` /
  authenticated ``drain``), float-exact by construction;
* :mod:`~repro.gateway.batcher` — :class:`MicroBatcher`: coalesces
  concurrent requests into fleet micro-batches under a deterministic,
  timer-free flush policy, behind a bounded admission queue;
* :mod:`~repro.gateway.server` — :class:`GatewayServer`: the asyncio
  TCP front-end with load shedding (``overloaded`` responses,
  per-connection in-flight caps, write-buffer limits), ``repro_gateway_*``
  metrics, and graceful drain ending in a final checkpoint rotation;
* :mod:`~repro.gateway.client` — :class:`GatewayClient`: the blocking
  client library collectors and the throughput bench drive.

``repro gateway`` on the CLI serves a persisted train bundle over TCP;
``benchmarks/bench_gateway_throughput.py`` measures the front-end under
closed-loop multi-connection load.

Determinism contract: a stream ingested through one gateway connection
(sequential request/response) produces alarms, shard digests, and
forests bit-identical to a direct ``FleetMonitor.ingest`` of the same
event batches — asserted by ``tests/gateway/test_server.py``.
"""

from repro.gateway.batcher import FlushResult, MicroBatcher
from repro.gateway.client import GatewayClient, GatewayError, IngestResult
from repro.gateway.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    alarm_to_wire,
    decode_message,
    encode_message,
    event_from_wire,
    event_to_wire,
    events_from_wire,
)
from repro.gateway.server import SHED_REASONS, GatewayServer

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_CODES",
    "SHED_REASONS",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "event_to_wire",
    "event_from_wire",
    "events_from_wire",
    "alarm_to_wire",
    "MicroBatcher",
    "FlushResult",
    "GatewayServer",
    "GatewayClient",
    "GatewayError",
    "IngestResult",
]
