"""Synchronous client library for the gateway wire protocol.

A :class:`GatewayClient` is one TCP connection speaking the
newline-delimited-JSON protocol of :mod:`repro.gateway.protocol` in
strict request/response lockstep — which means a single client's events
reach the fleet in exactly the order they were sent, each ``ingest``
forms its own flush, and the responses' alarm attribution is exact (the
single-connection determinism contract; see ``docs/operations.md``).

The client is deliberately dependency-free and blocking: collectors,
smoke tests, and the throughput bench all drive it from plain threads.
``ingest`` never raises on *load-shedding* responses (``overloaded`` /
``draining``) — shedding is the server working as designed under
pressure, so it is surfaced as :attr:`IngestResult.shed` for the caller
to retry or drop; every other failure raises :exc:`GatewayError`.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.gateway.protocol import (
    ERR_DRAINING,
    ERR_OVERLOADED,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    event_to_wire,
)
from repro.service.fleet import DiskEvent

__all__ = [
    "GatewayError",
    "IngestResult",
    "GatewayClient",
]

WireEvent = Union[DiskEvent, Dict[str, Any]]


class GatewayError(RuntimeError):
    """Transport failure or non-shedding error response.

    ``code`` carries the server's error code when the failure was a
    protocol-level error response (None for transport failures).
    """

    def __init__(self, message: str, *, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one ``ingest`` request.

    ``shed=True`` means the server refused the whole request under load
    (``overloaded``) or during a drain (``draining``) — none of its
    events were admitted, and ``shed_reason`` holds the error code.
    Otherwise ``accepted``/``quarantined`` partition the *flush* that
    carried this request and ``alarms`` holds the flush's emitted
    alarms in wire form (see the flush-scoped attribution note in
    ``docs/operations.md``).
    """

    ok: bool
    shed: bool = False
    shed_reason: Optional[str] = None
    events: int = 0
    accepted: int = 0
    quarantined: int = 0
    flush_seq: int = -1
    alarms: List[Dict[str, Any]] = field(default_factory=list)


class GatewayClient:
    """One blocking connection to a :class:`~repro.gateway.server.
    GatewayServer`.

    Parameters
    ----------
    host / port:
        The gateway's bound address.
    timeout:
        Socket timeout in seconds for connect, send, and receive.
    connect_retries:
        Extra connection attempts after a refused/failed connect —
        handy when the server process is still binding its socket.
    retry_delay:
        Seconds slept between connection attempts.
    sleep:
        The sleep callable used between retries, held by reference
        (default ``time.sleep``) so tests can inject a no-op and the
        library itself never calls the wall clock (RPR102).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        connect_retries: int = 0,
        retry_delay: float = 0.05,
        sleep: Callable[[float], Any] = time.sleep,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._next_id = 0
        last_exc: Optional[OSError] = None
        sock: Optional[socket.socket] = None
        for attempt in range(int(connect_retries) + 1):
            if attempt:
                sleep(retry_delay)
            try:
                sock = socket.create_connection(
                    (host, self.port), timeout=self.timeout
                )
                break
            except OSError as exc:
                last_exc = exc
        if sock is None:
            raise GatewayError(
                f"cannot connect to {host}:{port}: {last_exc}"
            ) from last_exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    # ------------------------------------------------------------- plumbing
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(self, op: str, **fields: Any) -> Dict[str, Any]:
        self._next_id += 1
        request_id = self._next_id
        payload: Dict[str, Any] = {
            "v": PROTOCOL_VERSION, "op": op, "id": request_id,
        }
        payload.update(fields)
        data = encode_message(payload)
        if len(data) > MAX_LINE_BYTES:
            raise GatewayError(
                f"request of {len(data)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte frame limit; send smaller batches"
            )
        try:
            self._sock.sendall(data)
            line = self._rfile.readline(MAX_LINE_BYTES + 1)
        except OSError as exc:
            raise GatewayError(f"connection to gateway lost: {exc}") from exc
        if not line:
            raise GatewayError("gateway closed the connection")
        try:
            response = decode_message(line)
        except ProtocolError as exc:
            raise GatewayError(f"malformed gateway response: {exc}") from exc
        if response.get("id") != request_id:
            raise GatewayError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r} (is something else sharing "
                "this connection?)"
            )
        return response

    @staticmethod
    def _error_code(response: Dict[str, Any]) -> str:
        error = response.get("error")
        if isinstance(error, dict):
            return str(error.get("code", "unknown"))
        return "unknown"

    @staticmethod
    def _error_message(response: Dict[str, Any]) -> str:
        error = response.get("error")
        if isinstance(error, dict):
            return str(error.get("message", ""))
        return repr(response)

    def _checked(self, op: str, **fields: Any) -> Dict[str, Any]:
        response = self._request(op, **fields)
        if response.get("ok") is not True:
            raise GatewayError(
                f"{op} failed: {self._error_message(response)}",
                code=self._error_code(response),
            )
        return response

    # ------------------------------------------------------------------ ops
    def ingest(self, events: Sequence[WireEvent]) -> IngestResult:
        """Send one batch of events; never raises on load shedding."""
        wire = [
            event_to_wire(ev) if isinstance(ev, DiskEvent) else ev
            for ev in events
        ]
        response = self._request("ingest", events=wire)
        if response.get("ok") is True:
            flush = response.get("flush") or {}
            return IngestResult(
                ok=True,
                events=int(response.get("events", 0)),
                accepted=int(response.get("accepted", 0)),
                quarantined=int(response.get("quarantined", 0)),
                flush_seq=int(flush.get("seq", -1)),
                alarms=list(response.get("alarms", [])),
            )
        code = self._error_code(response)
        if code in (ERR_OVERLOADED, ERR_DRAINING):
            return IngestResult(ok=False, shed=True, shed_reason=code)
        raise GatewayError(
            f"ingest failed: {self._error_message(response)}", code=code
        )

    def digest(self) -> Dict[str, Any]:
        """The fleet's :meth:`~repro.service.fleet.FleetMonitor.digest`."""
        payload = self._checked("digest").get("digest")
        if not isinstance(payload, dict):
            raise GatewayError("digest response carried no digest object")
        return payload

    def metrics(self) -> str:
        """The Prometheus text exposition of the gateway's registry."""
        return str(self._checked("metrics").get("metrics", ""))

    def healthz(self) -> Dict[str, Any]:
        """Liveness probe: status, event count, queue depth."""
        response = self._checked("healthz")
        return {
            "status": response.get("status"),
            "events": response.get("events"),
            "queue_depth": response.get("queue_depth"),
        }

    def drain(self, token: str) -> Dict[str, Any]:
        """Authenticated graceful shutdown; returns the drain summary."""
        response = self._checked("drain", token=token)
        return {
            "status": response.get("status"),
            "events": response.get("events"),
            "flushes": response.get("flushes"),
            "checkpoint": response.get("checkpoint"),
        }
