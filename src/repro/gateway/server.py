"""The asyncio TCP front-end over a :class:`FleetMonitor`.

A :class:`GatewayServer` accepts newline-delimited-JSON connections
(:mod:`repro.gateway.protocol`), admission-controls ingest traffic
through a :class:`~repro.gateway.batcher.MicroBatcher`, and serves the
observer/admin operations (``digest``, ``metrics``, ``healthz``,
``drain``) directly.  Everything is stdlib-only and single-threaded:
one event loop owns the fleet, so no fleet state is ever touched
concurrently.

**Backpressure & load shedding** — three bounded valves, each of which
sheds with an ``overloaded`` response (counted in
``repro_gateway_shed_total{reason=...}``) instead of queueing without
bound:

* the batcher's admission queue (``max_queue_events``) — reason
  ``queue_full``;
* a per-connection in-flight request cap (``max_inflight``) — reason
  ``inflight`` — which also bounds pending-response memory per
  connection;
* during a drain, all new ingests — reason ``draining`` (the response
  error code is ``draining`` so clients can tell the cases apart).

Slow readers are bounded too: each connection's transport gets a write
buffer limit, and response writers ``drain()`` before accepting the
backlog, so a client that stops reading stalls only its own connection.

**Graceful drain** — the authenticated ``drain`` op (1) stops accepting
connections, (2) refuses new ingests, (3) flushes every admitted event
through the batcher, (4) waits for all pending responses to be written,
(5) takes a final :class:`~repro.service.checkpoint.CheckpointRotator`
rotation, then (6) answers the drain request with a summary and closes
the remaining connections.  ``serve_until_drained`` returns at that
point.
"""

from __future__ import annotations

import asyncio
import hmac
import time
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.gateway.batcher import FlushResult, MicroBatcher
from repro.gateway.protocol import (
    ERR_BAD_REQUEST,
    ERR_DRAINING,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_TOO_LARGE,
    ERR_UNAUTHORIZED,
    ERR_UNKNOWN_OP,
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    alarm_to_wire,
    decode_message,
    encode_message,
    error_response,
    events_from_wire,
    ok_response,
)
from repro.obs.tracing import NULL_TRACER, NullTracer
from repro.service.fleet import FleetBackend
from repro.service.metrics import MetricsRegistry

__all__ = [
    "SHED_REASONS",
    "GatewayServer",
]

#: closed label set of ``repro_gateway_shed_total{reason=...}``
SHED_REASONS: Tuple[str, ...] = ("queue_full", "inflight", "draining")

#: healthz lifecycle states
_STATUS_SERVING = "serving"
_STATUS_DRAINING = "draining"
_STATUS_DRAINED = "drained"


class GatewayServer:
    """Networked serving front-end for a fleet monitor.

    Parameters
    ----------
    fleet:
        The :class:`~repro.service.fleet.FleetBackend` behind the wire
        (``FleetMonitor`` in-process, or a ``FleetSupervisor`` for the
        shard-per-process runtime).
        Build it with ``strict=False`` for tolerant serving (the CLI
        default) — in strict mode a bad event fails its whole flush.
    host / port:
        Bind address; ``port=0`` binds an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    admin_token:
        Shared secret for the ``drain`` op.  ``None`` disables remote
        drain entirely (every attempt is ``unauthorized``).
    registry:
        Metrics sink; defaults to the fleet's own registry so gateway
        and fleet metrics render in one ``metrics`` response.
    tracer:
        Stage tracer (``gateway.request`` / ``gateway.flush`` spans);
        defaults to the no-op tracer.
    max_batch_events / max_queue_events:
        Batcher coalescing cap and admission bound (see
        :class:`~repro.gateway.batcher.MicroBatcher`).
    max_inflight:
        Per-connection cap on requests admitted but not yet answered.
    max_line_bytes:
        Longest accepted request line; longer ones get ``too_large``
        and the connection is closed (framing is unrecoverable).
    write_buffer_limit:
        High-water mark (bytes) on each connection's transport write
        buffer before response writers block on ``drain()``.
    clock:
        Zero-argument monotonic-seconds callable held by reference
        (default ``time.perf_counter``), read only for the
        ``repro_gateway_request_seconds`` histogram.
    flush_gate:
        Passed through to the batcher (tests hold flushes with it).
    """

    def __init__(
        self,
        fleet: FleetBackend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        admin_token: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        max_batch_events: int = 1024,
        max_queue_events: int = 8192,
        max_inflight: int = 64,
        max_line_bytes: int = MAX_LINE_BYTES,
        write_buffer_limit: int = 1024 * 1024,
        clock: Callable[[], float] = time.perf_counter,
        flush_gate: Optional["asyncio.Event"] = None,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be > 0, got {max_inflight}")
        if max_line_bytes <= 0:
            raise ValueError(
                f"max_line_bytes must be > 0, got {max_line_bytes}"
            )
        self.fleet = fleet
        self.host = host
        self._requested_port = int(port)
        self._admin_token = admin_token
        self.registry = registry if registry is not None else fleet.registry
        self.tracer: NullTracer = tracer if tracer is not None else NULL_TRACER
        self.max_inflight = int(max_inflight)
        self.max_line_bytes = int(max_line_bytes)
        self.write_buffer_limit = int(write_buffer_limit)
        self._clock = clock
        self.batcher = MicroBatcher(
            fleet,
            max_batch_events=max_batch_events,
            max_queue_events=max_queue_events,
            registry=self.registry,
            tracer=self.tracer,
            clock=clock,
            flush_gate=flush_gate,
        )
        self._server: Optional["asyncio.Server"] = None
        self._status = _STATUS_SERVING
        self._drained = asyncio.Event()
        self._drain_started = False
        self._n_open = 0
        self._writers: Set[asyncio.StreamWriter] = set()
        self._response_tasks: Set["asyncio.Task[None]"] = set()
        self._final_checkpoint: Optional[str] = None
        self._instrument()

    def _instrument(self) -> None:
        reg = self.registry
        self._conns_c = reg.counter(
            "repro_gateway_connections_total",
            help="connections accepted over the gateway's lifetime",
        )
        reg.gauge(
            "repro_gateway_connections_open",
            help="currently open client connections",
            fn=lambda: float(self._n_open),
        )
        reg.gauge(
            "repro_gateway_draining",
            help="1 once a drain has started, 0 while serving",
            fn=lambda: 0.0 if self._status == _STATUS_SERVING else 1.0,
        )
        self._requests_c = {
            op: reg.counter(
                "repro_gateway_requests_total",
                help="requests handled, by operation",
                labels={"op": op},
            )
            for op in OPS
        }
        self._errors_c: Dict[str, Any] = {}
        self._shed_c = {
            reason: reg.counter(
                "repro_gateway_shed_total",
                help="ingest requests refused by admission control",
                labels={"reason": reason},
            )
            for reason in SHED_REASONS
        }
        self._request_h = reg.histogram(
            "repro_gateway_request_seconds",
            help="wall time from request decode to response write",
        )

    def _count_error(self, code: str) -> None:
        counter = self._errors_c.get(code)
        if counter is None:
            counter = self.registry.counter(
                "repro_gateway_errors_total",
                help="error responses sent, by protocol error code",
                labels={"code": code},
            )
            self._errors_c[code] = counter
        counter.inc()

    # ------------------------------------------------------------ lifecycle
    @property
    def port(self) -> int:
        """The bound port (the real one once started, even for port 0)."""
        if self._server is None:
            return self._requested_port
        socks = self._server.sockets
        if not socks:
            return self._requested_port
        return int(socks[0].getsockname()[1])

    @property
    def status(self) -> str:
        """``serving`` → ``draining`` → ``drained``."""
        return self._status

    @property
    def final_checkpoint(self) -> Optional[str]:
        """Path of the drain-time checkpoint, once one was taken."""
        return self._final_checkpoint

    async def start(self) -> None:
        """Bind the listener and spawn the batcher flush loop."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=self.max_line_bytes,
        )

    async def serve_until_drained(self) -> None:
        """Block until a drain completes (the normal CLI run mode)."""
        if self._server is None:
            raise RuntimeError("gateway not started")
        await self._drained.wait()

    async def stop(self) -> None:
        """Hard stop: close the listener and connections without a flush.

        Prefer the ``drain`` op (or :meth:`drain`) in production — this
        exists for tests and error paths.  Events already admitted but
        not flushed are *not* processed.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.cancel()
        for writer in list(self._writers):
            writer.close()
        self._status = _STATUS_DRAINED
        self._drained.set()

    async def drain(self) -> Dict[str, Any]:
        """Graceful shutdown; returns the drain summary.

        Idempotent-ish: a second concurrent call waits for the first to
        finish and returns the same summary shape.
        """
        if self._drain_started:
            await self._drained.wait()
            return self._drain_summary()
        self._drain_started = True
        self._status = _STATUS_DRAINING
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # everything admitted before this point flushes, in order
        await self.batcher.drain_and_stop()
        # let every already-resolved response hit its socket
        pending = [t for t in self._response_tasks if not t.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        ckpt = self.fleet.checkpoint()
        self._final_checkpoint = str(ckpt) if ckpt is not None else None
        self._status = _STATUS_DRAINED
        self._drained.set()
        return self._drain_summary()

    def _drain_summary(self) -> Dict[str, Any]:
        return {
            "status": self._status,
            "events": int(self.fleet.n_samples),
            "flushes": self.batcher.n_flushes,
            "checkpoint": self._final_checkpoint,
        }

    # ----------------------------------------------------------- connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns_c.inc()
        self._n_open += 1
        self._writers.add(writer)
        transport = writer.transport
        if transport is not None:
            transport.set_write_buffer_limits(high=self.write_buffer_limit)
        write_lock = asyncio.Lock()
        inflight = 0

        def _release() -> None:
            nonlocal inflight
            inflight -= 1

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # StreamReader.readline surfaces an over-limit line
                    # as ValueError; framing is lost either way
                    await self._write(
                        writer, write_lock,
                        error_response(
                            None, ERR_TOO_LARGE,
                            f"request line exceeds {self.max_line_bytes} bytes",
                        ),
                    )
                    self._count_error(ERR_TOO_LARGE)
                    break  # framing is lost; the connection is unrecoverable
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if len(line) > self.max_line_bytes:
                    await self._write(
                        writer, write_lock,
                        error_response(
                            None, ERR_TOO_LARGE,
                            f"request line exceeds {self.max_line_bytes} bytes",
                        ),
                    )
                    self._count_error(ERR_TOO_LARGE)
                    break
                if inflight >= self.max_inflight:
                    self._shed_c["inflight"].inc()
                    self._count_error(ERR_OVERLOADED)
                    await self._write(
                        writer, write_lock,
                        error_response(
                            None, ERR_OVERLOADED,
                            f"more than {self.max_inflight} requests in "
                            "flight on this connection",
                        ),
                    )
                    continue
                inflight += 1
                done = await self._dispatch(line, writer, write_lock, _release)
                if done:
                    break
        finally:
            self._n_open -= 1
            self._writers.discard(writer)
            writer.close()

    async def _dispatch(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        release: Callable[[], None],
    ) -> bool:
        """Handle one framed request; returns True to close the connection."""
        t0 = self._clock()
        request_id: Any = None
        try:
            payload = decode_message(line)
            request_id = payload.get("id")
            op = payload.get("op")
            if not isinstance(op, str) or op not in OPS:
                raise ProtocolError(
                    f"unknown op {op!r} (expected one of {', '.join(OPS)})",
                    code=ERR_UNKNOWN_OP,
                )
        except ProtocolError as exc:
            release()
            self._count_error(exc.code)
            await self._write(
                writer, write_lock, error_response(request_id, exc.code, str(exc))
            )
            return False

        with self.tracer.span("gateway.request", items=1):
            if op == "ingest":
                return await self._op_ingest(
                    payload, request_id, writer, write_lock, release, t0
                )
            # count before building the response, so a `metrics` reply
            # already includes its own request
            self._requests_c[op].inc()
            try:
                if op == "digest":
                    response = ok_response(request_id, digest=self.fleet.digest())
                elif op == "metrics":
                    response = ok_response(
                        request_id, metrics=self.registry.render()
                    )
                elif op == "healthz":
                    response = ok_response(
                        request_id,
                        status=self._status,
                        events=int(self.fleet.n_samples),
                        queue_depth=self.batcher.pending_events,
                    )
                else:  # drain
                    response = await self._op_drain(payload, request_id)
            except Exception as exc:
                self._count_error(ERR_INTERNAL)
                response = error_response(
                    request_id, ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                )
            release()
            await self._write(writer, write_lock, response)
            self._request_h.observe(self._clock() - t0)
            return op == "drain" and response.get("ok") is True

    async def _op_ingest(
        self,
        payload: Dict[str, Any],
        request_id: Any,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        release: Callable[[], None],
        t0: float,
    ) -> bool:
        self._requests_c["ingest"].inc()
        if self._status != _STATUS_SERVING:
            release()
            self._shed_c["draining"].inc()
            self._count_error(ERR_DRAINING)
            await self._write(
                writer, write_lock,
                error_response(
                    request_id, ERR_DRAINING,
                    "gateway is draining; no new events accepted",
                ),
            )
            return False
        try:
            events = events_from_wire(payload.get("events"))
        except ProtocolError as exc:
            release()
            self._count_error(ERR_BAD_REQUEST)
            await self._write(
                writer, write_lock,
                error_response(request_id, ERR_BAD_REQUEST, str(exc)),
            )
            return False
        future = self.batcher.try_submit(events)
        if future is None:
            release()
            self._shed_c["queue_full"].inc()
            self._count_error(ERR_OVERLOADED)
            await self._write(
                writer, write_lock,
                error_response(
                    request_id, ERR_OVERLOADED,
                    f"admission queue full "
                    f"({self.batcher.max_queue_events} events)",
                ),
            )
            return False

        # respond asynchronously when the flush lands, so the reader can
        # keep admitting pipelined requests (bounded by max_inflight)
        async def _respond() -> None:
            try:
                result: FlushResult = await future
                response = ok_response(
                    request_id,
                    events=len(events),
                    accepted=result.accepted,
                    quarantined=result.quarantined,
                    flush={
                        "seq": result.flush_seq,
                        "events": result.events,
                        "requests": result.requests,
                    },
                    alarms=[alarm_to_wire(a) for a in result.alarms],
                )
            except Exception as exc:
                self._count_error(ERR_INTERNAL)
                response = error_response(
                    request_id, ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                )
            release()
            await self._write(writer, write_lock, response)
            self._request_h.observe(self._clock() - t0)

        task = asyncio.get_running_loop().create_task(_respond())
        self._response_tasks.add(task)
        task.add_done_callback(self._response_tasks.discard)
        return False

    async def _op_drain(
        self, payload: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        token = payload.get("token")
        if (
            self._admin_token is None
            or not isinstance(token, str)
            or not hmac.compare_digest(
                token.encode("utf-8"), self._admin_token.encode("utf-8")
            )
        ):
            self._count_error(ERR_UNAUTHORIZED)
            return error_response(
                request_id, ERR_UNAUTHORIZED,
                "drain requires a valid admin token"
                if self._admin_token is not None
                else "drain is disabled (no admin token configured)",
            )
        summary = await self.drain()
        return ok_response(request_id, **summary)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> None:
        """Serialize one response onto the connection, respecting the
        write-buffer high-water mark (slow clients stall only their own
        responses)."""
        data = encode_message(payload)
        async with write_lock:
            if writer.is_closing():
                return
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return
