"""Dependency-free metrics registry with a text exposition format.

A serving layer is only operable if its internals are observable:
samples/s, labeling-queue depth, alarms raised vs. suppressed, tree
replacements, checkpoint age.  This module provides the three standard
instrument kinds — :class:`Counter` (monotone), :class:`Gauge` (set or
callback-backed), :class:`Histogram` (fixed buckets) — behind a
:class:`MetricsRegistry` that renders the whole set in the
Prometheus-compatible text format, without depending on any client
library.

Instruments are identified by ``(name, labels)``; asking the registry
for the same pair twice returns the same instrument, so call sites never
need to thread instrument handles around.  All mutation is lock-guarded,
matching the thread-backed shard executor of the fleet monitor.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram bucket upper bounds (seconds-flavored, Prometheus's)
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelMap = Mapping[str, str]
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[LabelMap]) -> _LabelKey:
    if not labels:
        return ()
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and line feed are the three characters the
    format reserves inside quoted label values — in that order, so an
    escape sequence is never re-escaped.  Anything else (including a
    gateway client's arbitrary disk-id strings) passes through verbatim.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` comment (backslash and line feed only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: _LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _render_value(v: float) -> str:
    v = float(v)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v.is_integer():
        return str(int(v))
    return repr(v)


class _Instrument:
    """Base: a named, labeled sample source."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_key: _LabelKey) -> None:
        self.name = name
        self.help = help
        self._label_key = label_key
        self._lock = threading.Lock()

    def sample_lines(self) -> List[str]:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count (events, samples, alarms)."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_key: _LabelKey) -> None:
        super().__init__(name, help, label_key)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def sample_lines(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(self._label_key)} "
            f"{_render_value(self._value)}"
        ]


class Gauge(_Instrument):
    """A value that can go up and down — or be computed on demand.

    Pass ``fn`` to make the gauge callback-backed: its value is read from
    the callable at exposition time (queue depths, checkpoint age), so
    the serving loop never has to remember to push updates.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        label_key: _LabelKey,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name, help, label_key)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Set the gauge (invalid for callback-backed gauges)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (may be negative)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract *amount*."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value (invokes the callback if one backs the gauge).

        A raising callback yields NaN rather than propagating: one
        broken gauge (e.g. reading a degraded shard) must not take the
        whole metrics exposition — the operator's only window into the
        failure — down with it.
        """
        if self._fn is None:
            return self._value
        try:
            return float(self._fn())
        except Exception:  # repro: noqa RPR302 — one broken gauge must not take down the whole exposition; NaN is the documented containment value
            return float("nan")

    def sample_lines(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(self._label_key)} "
            f"{_render_value(self.value)}"
        ]


class Histogram(_Instrument):
    """Fixed-bucket distribution (latencies, batch sizes, scores)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_key: _LabelKey,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_key)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation (NaN is rejected: it would poison
        ``_sum`` and every derived rate forever)."""
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"cannot observe NaN on histogram {self.name!r}")
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def sample_lines(self) -> List[str]:
        lines: List[str] = []
        cumulative = 0
        for bound, c in zip(self.bounds, self._counts):
            cumulative += c
            le = _render_labels(self._label_key, ("le", _render_value(bound)))
            lines.append(f"{self.name}_bucket{le} {cumulative}")
        le = _render_labels(self._label_key, ("le", "+Inf"))
        lines.append(f"{self.name}_bucket{le} {self._count}")
        labels = _render_labels(self._label_key)
        lines.append(f"{self.name}_sum{labels} {_render_value(self._sum)}")
        lines.append(f"{self.name}_count{labels} {self._count}")
        return lines


class MetricsRegistry:
    """Get-or-create instrument store with text exposition.

    >>> reg = MetricsRegistry()
    >>> reg.counter("samples_total", help="samples seen").inc()
    >>> print(reg.render())        # doctest: +SKIP
    # HELP samples_total samples seen
    # TYPE samples_total counter
    samples_total 1
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, _LabelKey], _Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._helps: Dict[str, str] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------- factories
    def counter(
        self, name: str, *, help: str = "", labels: Optional[LabelMap] = None
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        *,
        help: str = "",
        labels: Optional[LabelMap] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Get or create a gauge (optionally callback-backed via *fn*)."""
        return self._get_or_create(Gauge, name, help, labels, fn=fn)

    def histogram(
        self,
        name: str,
        *,
        help: str = "",
        labels: Optional[LabelMap] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram with the given bucket bounds."""
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Optional[LabelMap],
        **kwargs: Any,
    ) -> _Instrument:
        if not _NAME_RE.match(name or ""):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            if name in self._kinds and self._kinds[name] != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{self._kinds[name]}, not {cls.kind}"
                )
            instrument = cls(name, help, key[1], **kwargs)
            self._instruments[key] = instrument
            if name not in self._kinds:
                self._kinds[name] = cls.kind
                self._helps[name] = help
                self._order.append(name)
            return instrument

    # ------------------------------------------------------------ inspection
    def get(
        self, name: str, labels: Optional[LabelMap] = None
    ) -> Optional[_Instrument]:
        """Look up an instrument; None if never registered."""
        return self._instruments.get((name, _label_key(labels)))

    def value(self, name: str, labels: Optional[LabelMap] = None) -> float:
        """Current value of a counter or gauge (KeyError if absent)."""
        instrument = self.get(name, labels)
        if instrument is None:
            raise KeyError(f"no metric {name!r} with labels {labels!r}")
        return instrument.value  # type: ignore[union-attr]

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name{labels}: value}`` view of counters and gauges."""
        out: Dict[str, float] = {}
        with self._lock:
            items = list(self._instruments.items())
        for (name, key), instrument in items:
            if isinstance(instrument, (Counter, Gauge)):
                out[f"{name}{_render_labels(key)}"] = instrument.value
        return out

    def render(self) -> str:
        """Render every instrument in the Prometheus text format."""
        with self._lock:
            by_name: Dict[str, List[_Instrument]] = {}
            for (name, _), instrument in self._instruments.items():
                by_name.setdefault(name, []).append(instrument)
            order = list(self._order)
        lines: List[str] = []
        for name in order:
            if self._helps.get(name):
                lines.append(f"# HELP {name} {_escape_help(self._helps[name])}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for instrument in by_name.get(name, []):
                lines.extend(instrument.sample_lines())
        return "\n".join(lines) + ("\n" if lines else "")
