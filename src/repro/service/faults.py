"""Fault isolation, event quarantine, and fault injection for serving.

Field telemetry is dirty: DC-Prophet (Lee et al.) reports that real
traces are riddled with missing and malformed readings, and a fleet
monitor that dies on the first junk SMART vector is not a monitor.  This
module supplies the robustness primitives the
:class:`~repro.service.fleet.FleetMonitor` composes:

* :func:`validate_event` — the up-front admission check run on every
  event *before* any shard mutates, returning a stable reason code for
  anything a predictor would choke on (missing vector, wrong dimension,
  NaN/Inf values);
* :class:`DeadLetterQueue` — a bounded quarantine for rejected events,
  keyed by reason code, so tolerant serving never raises *and* never
  silently discards (every rejection is counted and inspectable);
* :class:`ShardHealth` — per-shard degraded/healthy state.  A shard
  whose bucket raised mid-batch is in an indeterminate, half-mutated
  state; it is fenced off and its traffic reroutes to the dead-letter
  queue while the sibling shards keep serving;
* :exc:`ShardFault` — the error strict mode raises once the healthy
  remainder of a batch has been applied;
* a **fault-injection harness** (:class:`FaultyPredictor`,
  :func:`salt_events`) used by the test suite and the ``repro serve
  --fault-rate`` chaos drill to prove all of the above actually holds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import numpy as np

from repro.core.predictor import Alarm

if TYPE_CHECKING:  # circular at runtime: fleet.py imports this module
    from repro.service.fleet import DiskEvent

# stable reason codes recorded on quarantined events and metric labels
REASON_MISSING_VECTOR = "missing_vector"
REASON_BAD_VECTOR = "bad_vector"
REASON_WRONG_DIMENSION = "wrong_dimension"
REASON_NON_FINITE = "non_finite"
REASON_UNSHARDABLE_ID = "unshardable_id"
REASON_SHARD_FAULT = "shard_fault"
REASON_DEGRADED_SHARD = "degraded_shard"


def validate_event(event: "DiskEvent", n_features: int) -> Optional[str]:
    """Admission check for one :class:`~repro.service.fleet.DiskEvent`.

    Returns a reason code when the event would corrupt or crash a
    predictor shard, or None when it is safe to dispatch.  A failure
    event with ``x=None`` is legitimate (dead disks often report nothing
    on their death day); a *working* sample without a vector is not.
    """
    x = event.x
    if x is None:
        return None if event.failed else REASON_MISSING_VECTOR
    try:
        arr = np.asarray(x, dtype=np.float64)
    except (TypeError, ValueError):
        return REASON_BAD_VECTOR
    if arr.shape != (int(n_features),):
        return REASON_WRONG_DIMENSION
    if not np.all(np.isfinite(arr)):
        return REASON_NON_FINITE
    return None


@dataclass(frozen=True)
class QuarantinedEvent:
    """One event diverted to the dead-letter queue."""

    event: object
    reason: str
    shard: Optional[int] = None
    seq: Optional[int] = None
    detail: str = ""


class DeadLetterQueue:
    """Bounded quarantine for events the fleet refused to serve.

    Keeps the most recent *maxlen* :class:`QuarantinedEvent` records for
    inspection; lifetime totals (:attr:`total`, :attr:`reason_counts`,
    :attr:`dropped`) keep counting past the bound, so accounting never
    lies even when old entries have been evicted.
    """

    def __init__(self, maxlen: int = 1024) -> None:
        if maxlen <= 0:
            raise ValueError(f"maxlen must be > 0, got {maxlen}")
        self.maxlen = int(maxlen)
        self._entries: Deque[QuarantinedEvent] = deque(maxlen=self.maxlen)
        self._reason_counts: Dict[str, int] = {}
        self._total = 0

    def put(
        self,
        event: "DiskEvent",
        reason: str,
        *,
        shard: Optional[int] = None,
        seq: Optional[int] = None,
        detail: str = "",
    ) -> QuarantinedEvent:
        """Quarantine one event; returns the stored record."""
        record = QuarantinedEvent(event, reason, shard, seq, detail)
        self._entries.append(record)
        self._reason_counts[reason] = self._reason_counts.get(reason, 0) + 1
        self._total += 1
        return record

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QuarantinedEvent]:
        return iter(self._entries)

    @property
    def total(self) -> int:
        """Lifetime quarantined count (survives ring-buffer eviction)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Quarantined events evicted from the ring buffer by the bound."""
        return self._total - len(self._entries)

    @property
    def reason_counts(self) -> Dict[str, int]:
        """Copy of the lifetime per-reason tallies."""
        return dict(self._reason_counts)

    def items(self) -> List[QuarantinedEvent]:
        """The retained records, oldest first."""
        return list(self._entries)

    def drain(self) -> List[QuarantinedEvent]:
        """Pop and return every retained record (totals are kept)."""
        out = list(self._entries)
        self._entries.clear()
        return out


class ShardHealth:
    """Healthy/degraded state per predictor shard.

    A shard goes degraded when its bucket raised mid-batch: its labeler
    and forest may be half-mutated, so no further traffic is trusted to
    it until an operator restores it (typically after
    :meth:`~repro.service.fleet.FleetMonitor.ingest` resumes from a
    checkpoint or the shard is rebuilt).
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {n_shards}")
        self.n_shards = int(n_shards)
        self._errors: Dict[int, str] = {}

    def _check(self, shard: int) -> int:
        shard = int(shard)
        if not 0 <= shard < self.n_shards:
            raise IndexError(f"shard {shard} out of range [0, {self.n_shards})")
        return shard

    def mark_degraded(self, shard: int, error: object = "") -> bool:
        """Fence a shard off; returns True if it was newly degraded."""
        shard = self._check(shard)
        newly = shard not in self._errors
        self._errors[shard] = str(error)
        return newly

    def restore(self, shard: int) -> bool:
        """Clear a shard's degraded mark; returns True if it was set."""
        return self._errors.pop(self._check(shard), None) is not None

    def is_degraded(self, shard: int) -> bool:
        """Whether the shard is currently fenced off."""
        return self._check(shard) in self._errors

    @property
    def degraded(self) -> List[int]:
        """Degraded shard indices, ascending."""
        return sorted(self._errors)

    @property
    def n_degraded(self) -> int:
        """How many shards are currently degraded."""
        return len(self._errors)

    @property
    def errors(self) -> Dict[int, str]:
        """Copy of ``{shard: error string}`` for degraded shards."""
        return dict(self._errors)


class ShardFault(RuntimeError):
    """A shard's bucket raised mid-batch (strict mode re-raises this)."""

    def __init__(self, shard: int, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard} raised {type(cause).__name__}: {cause}"
        )
        self.shard = int(shard)
        self.cause = cause


# --------------------------------------------------------------- injection
class FaultyPredictor:
    """Wrap a predictor shard so it raises after *fail_after* events.

    A transparent proxy: every attribute not overridden here resolves on
    the wrapped predictor, so metrics gauges, checkpointing helpers, and
    ``forest``/``labeler``/``stats`` access all keep working.  Once the
    trigger fires, ``process``/``process_batch`` raise *exc_type* —
    mid-bucket, after genuinely mutating the shard with the events that
    preceded the fault, which is exactly the half-updated state the
    fleet's isolation has to contain.
    """

    def __init__(
        self,
        inner: Any,
        *,
        fail_after: int,
        exc_type: Type[BaseException] = RuntimeError,
        message: str = "injected shard fault",
    ) -> None:
        if fail_after < 0:
            raise ValueError(f"fail_after must be >= 0, got {fail_after}")
        self._inner = inner
        self._fail_after = int(fail_after)
        self._exc_type = exc_type
        self._message = message
        self._n_processed = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    @property
    def inner(self) -> Any:
        """The wrapped predictor."""
        return self._inner

    @property
    def n_processed(self) -> int:
        """Events processed before (or at) the fault trigger."""
        return self._n_processed

    def _tick(self) -> None:
        if self._n_processed >= self._fail_after:
            raise self._exc_type(self._message)
        self._n_processed += 1

    def process(
        self,
        disk_id: Hashable,
        x: Optional[np.ndarray],
        failed: bool,
        tag: Any = None,
    ) -> Optional[Alarm]:
        self._tick()
        return self._inner.process(disk_id, x, failed, tag)

    def process_batch(
        self,
        events: Sequence[Tuple[Hashable, Optional[np.ndarray], bool, Any]],
    ) -> List[Optional[Alarm]]:
        remaining = self._fail_after - self._n_processed
        if remaining >= len(events):
            self._n_processed += len(events)
            return self._inner.process_batch(events)
        # partially apply the bucket before faulting, so the shard is
        # left genuinely half-mutated like a real mid-batch crash
        for disk_id, x, failed, tag in events[:remaining]:
            self._n_processed += 1
            self._inner.process(disk_id, x, failed, tag)
        raise self._exc_type(self._message)


def salt_events(
    events: Iterable,
    *,
    rate: float,
    n_features: int,
    seed: int = 0,
) -> Iterator:
    """Corrupt a fraction of working-disk events in a stream.

    Each corrupted event keeps its disk id and tag but carries a payload
    the admission check must reject — a NaN vector, an Inf vector, a
    wrong-dimension vector, or no vector at all — cycling through the
    four kinds deterministically under *seed*.  Failure events pass
    through untouched (their semantics are load-bearing).  This is the
    chaos-drill generator behind ``repro serve --fault-rate``.
    """
    from repro.service.fleet import DiskEvent

    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rng = np.random.default_rng(seed)
    n_features = int(n_features)
    for ev in events:
        if ev.failed or rng.random() >= rate:
            yield ev
            continue
        kind = int(rng.integers(4))
        if kind == 0:
            bad = np.full(n_features, np.nan)
        elif kind == 1:
            bad = np.full(n_features, np.inf)
        elif kind == 2:
            bad = np.zeros(n_features + 1)
        else:
            bad = None
        yield DiskEvent(disk_id=ev.disk_id, x=bad, failed=False, tag=ev.tag)
