"""Fleet construction as data: the :class:`FleetConfig` object.

Until now every entry point that built a fleet — ``FleetMonitor.build``,
the ``serve``/``gateway`` CLI, the benchmarks, the examples — carried
its own copy of the same kwarg sprawl (``n_shards``, ``seed``,
``forest_kwargs``, ``queue_length``, …) plus a ``**fleet_kwargs``
escape hatch, so the *shape* of a fleet was never a value you could
store, diff, or stamp into a checkpoint.  :class:`FleetConfig` makes it
one: a frozen dataclass with a lossless JSON round trip
(:meth:`~FleetConfig.to_dict` / :meth:`~FleetConfig.from_dict`), strict
validation at construction, and a :meth:`~FleetConfig.build_shards`
factory both :class:`~repro.service.fleet.FleetMonitor` and
:class:`~repro.runtime.supervisor.FleetSupervisor` build from.

Because a config is JSON, checkpoint manifests embed it — restores can
*reject* a bundle whose topology (``n_features``, ``n_shards``,
``queue_length``) no longer matches the running fleet with the typed
:exc:`CheckpointConfigMismatch` instead of silently misrouting disks.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.forest import OnlineRandomForest
from repro.core.predictor import OnlineDiskFailurePredictor
from repro.utils.rng import SeedLike

#: fleet modes (micro-batch semantics inside each shard bucket)
MODES = ("exact", "batch")

#: serving runtimes a config can select
RUNTIMES = ("inproc", "process")

#: manifest keys a checkpoint restore must agree on with the running
#: fleet — disagreeing on any of these silently misroutes or corrupts
COMPAT_KEYS = ("n_features", "n_shards", "queue_length")


def shard_seeds(seed: SeedLike, n_shards: int) -> list:
    """Independent per-shard seeds derived from one fleet seed.

    With one shard the fleet inherits the caller's seed unchanged, which
    is what makes the N=1 fleet bit-identical to a plain predictor built
    with the same seed.
    """
    if n_shards == 1:
        return [seed]
    return list(np.random.SeedSequence(seed).spawn(n_shards))


def build_shard_predictors(
    n_features: int,
    *,
    n_shards: int = 1,
    seed: SeedLike = None,
    forest: Optional[Mapping[str, Any]] = None,
    queue_length: int = 7,
    alarm_threshold: float = 0.5,
    warmup_samples: int = 0,
    record_alarms: bool = False,
    max_recorded_alarms: Optional[int] = None,
) -> List[OnlineDiskFailurePredictor]:
    """Fresh seed-derived shard predictors (the one shard factory).

    Both the config path (:meth:`FleetConfig.build_shards`) and the
    legacy kwarg shim funnel through here, which is what makes the two
    construction APIs bit-identical by construction.
    """
    return [
        OnlineDiskFailurePredictor(
            OnlineRandomForest(n_features, seed=s, **dict(forest or {})),
            queue_length=queue_length,
            alarm_threshold=alarm_threshold,
            warmup_samples=warmup_samples,
            record_alarms=record_alarms,
            max_recorded_alarms=max_recorded_alarms,
        )
        for s in shard_seeds(seed, n_shards)
    ]


@dataclass(frozen=True)
class FleetConfig:
    """The complete, serializable shape of a fleet.

    Parameters
    ----------
    n_features:
        Feature dimension every ingested vector must match.
    n_shards:
        Predictor shards disk ids are hashed across.
    seed:
        Fleet seed (``None`` or an int — a config must round-trip
        through JSON, so richer ``SeedLike`` objects are rejected here;
        pass those through the legacy shard factory directly).
    forest:
        Keyword arguments for each shard's
        :class:`~repro.core.forest.OnlineRandomForest`.  Must be
        JSON-pure (the round trip is checked at construction).
    queue_length:
        Labeling-queue length *q* (paper Algorithm 1).
    alarm_threshold:
        Score threshold for raising an alarm.
    warmup_samples:
        Per-shard samples ingested before alarms may fire.
    record_alarms / max_recorded_alarms:
        Whether each shard keeps an in-memory alarm log, and its bound.
    mode:
        ``"exact"`` (sample-exact replay) or ``"batch"`` (vectorized
        micro-batch path).
    runtime:
        ``"inproc"`` (:class:`~repro.service.fleet.FleetMonitor`) or
        ``"process"`` (:class:`~repro.runtime.supervisor.FleetSupervisor`,
        one worker process per shard).
    """

    n_features: int
    n_shards: int = 1
    seed: Optional[int] = None
    forest: Dict[str, Any] = field(default_factory=dict)
    queue_length: int = 7
    alarm_threshold: float = 0.5
    warmup_samples: int = 0
    record_alarms: bool = False
    max_recorded_alarms: Optional[int] = None
    mode: str = "exact"
    runtime: str = "inproc"

    def __post_init__(self) -> None:
        if int(self.n_features) < 1:
            raise ValueError(f"n_features must be >= 1, got {self.n_features}")
        if int(self.n_shards) < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError(
                "FleetConfig.seed must be None or an int so the config "
                f"survives a JSON round trip; got {type(self.seed).__name__} "
                "(build shards via build_shard_predictors for exotic seeds)"
            )
        if int(self.queue_length) < 1:
            raise ValueError(
                f"queue_length must be >= 1, got {self.queue_length}"
            )
        if not 0.0 <= float(self.alarm_threshold) <= 1.0:
            raise ValueError(
                f"alarm_threshold must be in [0, 1], got {self.alarm_threshold}"
            )
        if int(self.warmup_samples) < 0:
            raise ValueError(
                f"warmup_samples must be >= 0, got {self.warmup_samples}"
            )
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.runtime not in RUNTIMES:
            raise ValueError(
                f"runtime must be one of {RUNTIMES}, got {self.runtime!r}"
            )
        object.__setattr__(self, "forest", dict(self.forest))
        try:
            encoded = json.dumps(self.forest, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"forest kwargs are not JSON-serializable: {exc}; executors "
                "and other live objects belong on the fleet, not the config"
            ) from exc
        if json.loads(encoded) != self.forest:
            raise ValueError(
                "forest kwargs do not survive a JSON round trip (tuples "
                "decode as lists; use lists in the config)"
            )

    # ------------------------------------------------------------ round trip
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation; lossless through :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Strict on unknown keys: a typo'd or future field raises rather
        than being dropped on the floor.
        """
        fields = {
            "n_features", "n_shards", "seed", "forest", "queue_length",
            "alarm_threshold", "warmup_samples", "record_alarms",
            "max_recorded_alarms", "mode", "runtime",
        }
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(
                f"unknown FleetConfig keys {unknown}; known keys are "
                f"{sorted(fields)}"
            )
        if "n_features" not in data:
            raise ValueError("FleetConfig dict is missing 'n_features'")
        return cls(**dict(data))

    # -------------------------------------------------------------- building
    def build_shards(self) -> List[OnlineDiskFailurePredictor]:
        """Fresh seed-derived shard predictors for this config."""
        return build_shard_predictors(
            int(self.n_features),
            n_shards=int(self.n_shards),
            seed=self.seed,
            forest=self.forest,
            queue_length=int(self.queue_length),
            alarm_threshold=float(self.alarm_threshold),
            warmup_samples=int(self.warmup_samples),
            record_alarms=bool(self.record_alarms),
            max_recorded_alarms=self.max_recorded_alarms,
        )


class CheckpointConfigMismatch(ValueError):
    """A checkpoint's embedded config disagrees with the running fleet.

    Raised by restore paths (``FleetMonitor.from_checkpoint``,
    ``load_checkpoint``/``load_latest`` with an expected config) when a
    compatibility key — feature dimension, shard count, labeling-queue
    length — differs.  Restoring across any of these silently misroutes
    disks or corrupts labeling queues, so the mismatch is a typed,
    inspectable error instead of a warning.
    """

    def __init__(
        self, mismatches: Mapping[str, Tuple[object, object]]
    ) -> None:
        self.mismatches: Dict[str, Tuple[object, object]] = dict(mismatches)
        detail = ", ".join(
            f"{key}: checkpoint has {found!r}, fleet expects {wanted!r}"
            for key, (found, wanted) in sorted(self.mismatches.items())
        )
        super().__init__(f"checkpoint config mismatch — {detail}")


def check_checkpoint_config(
    manifest: Mapping[str, Any], expected: Optional[FleetConfig]
) -> None:
    """Reject a manifest whose embedded config conflicts with *expected*.

    Manifests from before configs were stamped (no ``"config"`` key)
    pass — there is nothing to compare — except that ``n_shards`` is
    always present in a manifest and is still enforced.
    """
    if expected is None:
        return
    mismatches: Dict[str, Tuple[object, object]] = {}
    stamped = manifest.get("config")
    if stamped is not None:
        for key in COMPAT_KEYS:
            found = stamped.get(key)
            wanted = getattr(expected, key)
            if found is not None and int(found) != int(wanted):
                mismatches[key] = (int(found), int(wanted))
    else:
        found = manifest.get("n_shards")
        if found is not None and int(found) != int(expected.n_shards):
            mismatches["n_shards"] = (int(found), int(expected.n_shards))
    if mismatches:
        raise CheckpointConfigMismatch(mismatches)
