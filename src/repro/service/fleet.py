"""Fleet-scale serving: hash-sharded Algorithm-2 monitors.

The paper's deployment (§5, Fig. 1) watches *every* disk in a data
center continuously.  One :class:`~repro.core.predictor.
OnlineDiskFailurePredictor` is a single stream; the
:class:`FleetMonitor` scales it out by hash-sharding disks across N
independent predictor shards — each with its own labeler and forest —
and driving micro-batched ingestion over them:

* **stable sharding** — ``crc32(repr(disk_id)) % N``; never Python's
  salted ``hash()``, so replays are deterministic across processes;
* **micro-batching** — events are bucketed per shard and each shard
  processes its bucket in arrival order, either sample-exact
  (``mode="exact"``, bit-identical to the plain predictor loop) or
  through :meth:`~repro.core.predictor.OnlineDiskFailurePredictor.
  process_batch` (``mode="batch"``, which funnels updates through
  ``partial_fit`` and scoring through the vectorized
  ``predict_score``/``route_batch`` path);
* **parallel shards** — buckets map over a
  :class:`~repro.parallel.pool.TreeExecutor` (serial or thread; shards
  are mutated in place, so the process backend belongs *inside* each
  shard's forest, not at the fleet level);
* **deterministic replay** — with one shard and the serial executor the
  fleet is bit-identical (alarms and final forest) to the plain
  Algorithm-2 loop under the same seed; with N shards every disk's
  trajectory depends only on its own shard's stream, so per-disk alarm
  sets are a stable partition.

Alarm decisions flow through an :class:`~repro.service.alarms.
AlarmManager`, operational counters through a
:class:`~repro.service.metrics.MetricsRegistry`, and snapshots through
an attached :class:`~repro.service.checkpoint.CheckpointRotator`.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.predictor import Alarm, OnlineDiskFailurePredictor
from repro.obs.tracing import NULL_TRACER, NullTracer
from repro.parallel.pool import ProcessExecutor, SerialExecutor, TreeExecutor
from repro.persistence import save_model
from repro.service.alarms import AlarmAction, AlarmManager
from repro.service.checkpoint import CheckpointRotator, load_checkpoint
from repro.service.config import (
    FleetConfig,
    build_shard_predictors,
    check_checkpoint_config,
    shard_seeds,
)
from repro.service.faults import (
    REASON_DEGRADED_SHARD,
    REASON_SHARD_FAULT,
    REASON_UNSHARDABLE_ID,
    DeadLetterQueue,
    FaultyPredictor,
    ShardFault,
    ShardHealth,
    validate_event,
)
from repro.service.metrics import Counter, Histogram, MetricsRegistry

if TYPE_CHECKING:  # annotation-only: eval is a consumer layer, not a dependency
    from repro.eval.protocol import LabeledArrays

__all__ = [
    "DiskEvent",
    "EmittedAlarm",
    "FleetBackend",
    "FleetInstruments",
    "FleetMonitor",
    "admit_events",
    "apply_lifecycle",
    "fleet_events",
    "quarantine_event",
    "shard_of",
    "shard_seeds",
]


def shard_of(disk_id: Hashable, n_shards: int) -> int:
    """Stable shard assignment for a disk id.

    Uses ``crc32`` of the id's ``repr`` — Python's builtin ``hash`` is
    salted per process and would break deterministic replay.  Ids whose
    type inherits the default ``object.__repr__`` are rejected: that
    repr embeds a per-process memory address, so the "stable" shard
    assignment would silently change on every run.
    """
    if type(disk_id).__repr__ is object.__repr__:
        raise TypeError(
            f"disk id of type {type(disk_id).__name__!r} has no stable "
            "repr (object.__repr__ embeds a memory address, so shard "
            "assignment would differ across processes); use int or str "
            "ids, or define __repr__ on the id type"
        )
    return zlib.crc32(repr(disk_id).encode("utf-8")) % n_shards


@dataclass(frozen=True)
class DiskEvent:
    """One fleet event: a SMART sample, or a disk's death.

    ``x`` may be None only for a failure with no final snapshot.
    """

    disk_id: Hashable
    x: Optional[np.ndarray]
    failed: bool = False
    tag: object = None


@dataclass(frozen=True)
class EmittedAlarm:
    """An alarm that survived the lifecycle manager and reached the operator."""

    alarm: Alarm
    action: AlarmAction
    shard: int
    seq: int


def _drain_shard(
    payload: Tuple[OnlineDiskFailurePredictor, List[Tuple[int, "DiskEvent"]], str],
) -> Tuple[List[Tuple[int, "DiskEvent", Optional[Alarm]]], Optional[Exception]]:
    """Worker: run one shard's event bucket, in arrival order.

    Module-level with an explicit payload, matching the executor
    contract of :mod:`repro.core.forest`.  Returns ``(results, error)``
    — a raising bucket is *captured*, never propagated through the
    executor, so one faulting shard can never abort its siblings'
    already-running buckets.
    """
    predictor, bucket, mode = payload
    try:
        if mode == "batch":
            alarms = predictor.process_batch(
                [(ev.disk_id, ev.x, ev.failed, ev.tag) for _, ev in bucket]
            )
            return (
                [(seq, ev, alarm) for (seq, ev), alarm in zip(bucket, alarms)],
                None,
            )
        return (
            [
                (seq, ev, predictor.process(ev.disk_id, ev.x, ev.failed, ev.tag))
                for seq, ev in bucket
            ],
            None,
        )
    except Exception as exc:  # the shard is now in an indeterminate state
        return [], exc


class FleetInstruments:
    """The ``repro_fleet_*`` instruments shared by both serving runtimes.

    Registered here — and *only* here — so every shared metric name has
    a single literal registration site (RPR601): the in-process
    :class:`FleetMonitor` and the process-runtime
    :class:`~repro.runtime.supervisor.FleetSupervisor` feed the same
    time series instead of forking the namespace per backend.
    Runtime-specific gauges (live shard introspection in-process, worker
    health in the supervisor) stay with their owners.
    """

    def __init__(self, registry: MetricsRegistry, n_shards: int) -> None:
        self.registry = registry
        self.samples: List[Counter] = []
        self.failures: List[Counter] = []
        for i in range(int(n_shards)):
            labels = {"shard": str(i)}
            self.samples.append(registry.counter(
                "repro_fleet_samples_total",
                help="SMART samples ingested", labels=labels,
            ))
            self.failures.append(registry.counter(
                "repro_fleet_failures_total",
                help="disk failures observed", labels=labels,
            ))
        self.checkpoint_failures = registry.counter(
            "repro_fleet_checkpoint_failures_total",
            help="checkpoint rotations abandoned after I/O retries",
        )
        self.ingest_seconds = registry.histogram(
            "repro_fleet_ingest_seconds",
            help="wall time per ingest() micro-batch",
        )
        self._quarantine: Dict[str, Counter] = {}

    def seed_shard_counts(
        self, shard: int, n_samples: int, n_failures: int
    ) -> None:
        """Fast-forward a shard's counters to its lifetime stats.

        Used on checkpoint resume so counters and ``digest()`` agree
        with :class:`~repro.core.predictor.PredictorStats`; fresh shards
        contribute zero and are left untouched.
        """
        samples_c = self.samples[shard]
        failures_c = self.failures[shard]
        if n_samples > samples_c.value:
            samples_c.inc(int(n_samples) - int(samples_c.value))
        if n_failures > failures_c.value:
            failures_c.inc(int(n_failures) - int(failures_c.value))

    def quarantine_counter(self, reason: str) -> Counter:
        """The per-reason quarantine counter, registered lazily."""
        counter = self._quarantine.get(reason)
        if counter is None:
            counter = self.registry.counter(
                "repro_fleet_quarantined_total",
                help="events diverted to the dead-letter queue",
                labels={"reason": reason},
            )
            self._quarantine[reason] = counter
        return counter


def quarantine_event(
    dead_letters: DeadLetterQueue,
    instruments: FleetInstruments,
    ev: DiskEvent,
    reason: str,
    *,
    shard: Optional[int] = None,
    seq: Optional[int] = None,
    detail: str = "",
) -> None:
    """Divert one event to the dead-letter queue and count it."""
    dead_letters.put(ev, reason, shard=shard, seq=seq, detail=detail)
    instruments.quarantine_counter(reason).inc()


def admit_events(
    events: Sequence[DiskEvent],
    *,
    n_features: int,
    n_shards: int,
    strict: bool,
    health: ShardHealth,
) -> Tuple[List[Tuple[int, DiskEvent]], List[Tuple[DiskEvent, str, Optional[int]]]]:
    """Admission-check a whole micro-batch before any shard mutates.

    Returns ``(accepted, rejected)`` where accepted entries carry their
    shard index and rejected entries a reason code.  In strict mode the
    first rejection raises instead — crucially *before* any sequence
    number has been assigned or any bucket dispatched, so a bad batch
    leaves the fleet exactly as it found it.  Shared by both serving
    runtimes, which is what makes their quarantine decisions identical
    by construction.
    """
    accepted: List[Tuple[int, DiskEvent]] = []
    rejected: List[Tuple[DiskEvent, str, Optional[int]]] = []
    for pos, ev in enumerate(events):
        reason = validate_event(ev, n_features)
        if reason is not None:
            if strict:
                raise ValueError(
                    f"invalid event at batch position {pos} "
                    f"(disk {ev.disk_id!r}): {reason}; no shard was "
                    "mutated — pass strict=False to quarantine instead"
                )
            rejected.append((ev, reason, None))
            continue
        try:
            shard_i = shard_of(ev.disk_id, n_shards)
        except TypeError as exc:
            if strict:
                raise
            rejected.append((ev, REASON_UNSHARDABLE_ID, None))
            del exc
            continue
        if health.is_degraded(shard_i):
            # a degraded shard's state is untrusted; fence its
            # traffic off rather than deepening the corruption
            if strict:
                raise ShardFault(
                    shard_i,
                    RuntimeError(health.errors.get(shard_i, "degraded")),
                )
            rejected.append((ev, REASON_DEGRADED_SHARD, shard_i))
            continue
        accepted.append((shard_i, ev))
    return accepted, rejected


def apply_lifecycle(
    merged: Sequence[Tuple[int, int, DiskEvent, Optional[Alarm]]],
    *,
    alarms: AlarmManager,
    instruments: FleetInstruments,
) -> List[EmittedAlarm]:
    """Run shard results through the alarm lifecycle in arrival order.

    *merged* is ``(seq, shard, event, alarm)`` tuples sorted by ``seq``.
    Shared by both serving runtimes so the emitted alarm stream — dedup,
    cooldown, escalation, retirement — is identical by construction.
    """
    emitted: List[EmittedAlarm] = []
    for seq, shard_i, ev, alarm in merged:
        if ev.failed:
            instruments.failures[shard_i].inc()
            alarms.retire(ev.disk_id)
            continue
        instruments.samples[shard_i].inc()
        decision = alarms.observe(ev.disk_id, alarm)
        if decision.emitted:
            emitted.append(EmittedAlarm(
                alarm=decision.alarm,
                action=decision.action,
                shard=shard_i,
                seq=seq,
            ))
    return emitted


class FleetBackend(Protocol):
    """Structural surface shared by the serving runtimes.

    Both :class:`FleetMonitor` (in-process) and
    :class:`~repro.runtime.supervisor.FleetSupervisor` (one worker
    process per shard) satisfy this protocol, which is what the gateway
    and the ``serve`` replay loop are written against — a runtime is an
    implementation detail behind ``--runtime {inproc,process}``.
    """

    registry: MetricsRegistry
    dead_letters: DeadLetterQueue
    alarms: AlarmManager

    @property
    def n_shards(self) -> int: ...

    @property
    def n_samples(self) -> int: ...

    @property
    def n_features(self) -> int: ...

    def ingest(self, events: Sequence[DiskEvent]) -> List[EmittedAlarm]: ...

    def digest(self) -> dict: ...

    def checkpoint(self) -> Optional[object]: ...

    def alarm_state(self) -> Optional[dict]: ...

    def effective_config(self) -> FleetConfig: ...

    def write_shard_snapshots(self, directory: Union[str, Path]) -> int: ...


class FleetMonitor:
    """Sharded, observable, checkpointable Algorithm-2 serving layer.

    Parameters
    ----------
    shards:
        One :class:`OnlineDiskFailurePredictor` per shard; disk ids are
        routed by :func:`shard_of`.  Build with :meth:`build` for
        seed-derived shard forests.
    alarm_manager:
        Lifecycle policy; a default :class:`AlarmManager` (registered on
        *registry*) is created when omitted.
    registry:
        Metrics sink; a private one is created when omitted.
    executor:
        Maps per-shard buckets during :meth:`ingest`.  Serial (default)
        or thread — shards are mutated in place, so the process backend
        is rejected here (use it *inside* shard forests instead).
    mode:
        ``"exact"`` replays Algorithm 2 sample by sample (bit-identical
        to the unsharded loop); ``"batch"`` uses the micro-batched
        predictor path (same forest evolution, scores computed once per
        bucket after its updates).
    rotator:
        Optional :class:`CheckpointRotator`; its cadence is checked
        after every ingest.
    strict:
        ``True`` (default): an invalid event makes :meth:`ingest` raise
        *before any shard mutates* (the batch is admission-checked up
        front, so ``_seq`` never advances with sibling shards
        half-updated), and a faulting shard re-raises as
        :exc:`ShardFault` after the healthy shards' results are applied.
        ``False`` (tolerant serving): invalid events and the traffic of
        degraded shards divert to the dead-letter queue with a reason
        code instead of raising, and checkpoint I/O errors are counted
        rather than fatal.
    dead_letters:
        Quarantine sink for rejected events; a fresh bounded
        :class:`~repro.service.faults.DeadLetterQueue` of
        *max_dead_letters* entries is created when omitted.
    clock:
        Zero-argument monotonic-seconds callable used for the ingest
        latency histogram — the *only* thing the fleet reads time for.
        Defaults to ``time.perf_counter``; tests inject a fake to make
        latency metrics deterministic, and the determinism lint rule
        (``RPR102``) stays satisfied because the library itself never
        *calls* the wall clock, it only defaults to it.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`.  When given, it is
        propagated to every shard predictor, every shard's forest, and
        the rotator, so one trace covers the whole hot path — admission,
        shard routing, labeler release, forest update, scoring, alarm
        lifecycle, checkpoint rotation.  ``None`` (default) leaves the
        no-op tracer in place: results are bit-identical and the
        overhead is a handful of attribute lookups per batch (measured
        < 5% end to end by ``benchmarks/bench_serve_latency.py``).
    """

    def __init__(
        self,
        shards: Sequence[OnlineDiskFailurePredictor],
        *,
        config: Optional[FleetConfig] = None,
        alarm_manager: Optional[AlarmManager] = None,
        registry: Optional[MetricsRegistry] = None,
        executor: Optional[TreeExecutor] = None,
        mode: str = "exact",
        rotator: Optional[CheckpointRotator] = None,
        strict: bool = True,
        dead_letters: Optional[DeadLetterQueue] = None,
        max_dead_letters: int = 1024,
        clock: Callable[[], float] = time.perf_counter,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        if mode not in ("exact", "batch"):
            raise ValueError(f"mode must be 'exact' or 'batch', got {mode!r}")
        if isinstance(executor, ProcessExecutor):
            raise ValueError(
                "process executors cannot map fleet shards (workers mutate "
                "copies); attach one to each shard's forest instead"
            )
        if config is not None and int(config.n_shards) != len(shards):
            raise ValueError(
                f"config declares {config.n_shards} shard(s) but "
                f"{len(shards)} were supplied"
            )
        self.config = config
        self.shards = list(shards)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.alarms = (
            alarm_manager
            if alarm_manager is not None
            else AlarmManager(registry=self.registry)
        )
        self.mode = mode
        self.rotator = rotator
        self.strict = bool(strict)
        self.dead_letters = (
            dead_letters
            if dead_letters is not None
            else DeadLetterQueue(max_dead_letters)
        )
        self.health = ShardHealth(len(self.shards))
        self._executor = executor or SerialExecutor()
        self._clock = clock
        self.tracer: NullTracer = tracer if tracer is not None else NULL_TRACER
        # one tracer covers the whole pipeline: shard predictors and
        # their forests record the inner stages of the same trace
        for shard in self.shards:
            shard.tracer = self.tracer
            shard.forest.tracer = self.tracer
        if rotator is not None:
            rotator.tracer = self.tracer
        self._seq = 0
        self._instrument()
        # warm every tree's compiled inference snapshot up front so the
        # first scored event pays no materialization cost (restored
        # checkpoints arrive pre-compiled; fresh forests are tiny)
        self.compile()

    def compile(self) -> "FleetMonitor":
        """Warm the compiled inference snapshots of every shard's forest.

        Representation-only (scores and alarms are unchanged); called at
        construction and safe to call again at any time — e.g. after a
        long pure-ingest stretch grew the trees, to move recompilation
        off the next scored request.  Returns self.
        """
        for shard in self.shards:
            shard.compile()
        return self

    def _instrument(self) -> None:
        reg = self.registry
        n = len(self.shards)
        self.instruments = FleetInstruments(reg, n)
        self._samples_c = self.instruments.samples
        self._failures_c = self.instruments.failures
        for i, shard in enumerate(self.shards):
            labels = {"shard": str(i)}
            # seed from the shard's lifetime stats so counters and
            # digest() agree with PredictorStats after a checkpoint
            # resume (fresh shards contribute zero)
            self.instruments.seed_shard_counts(
                i, int(shard.stats.n_samples), int(shard.stats.n_failures)
            )
            reg.gauge(
                "repro_fleet_shard_healthy",
                help="1 while the shard serves, 0 once degraded",
                labels=labels,
                fn=lambda i=i: 0.0 if self.health.is_degraded(i) else 1.0,
            )
            reg.gauge(
                "repro_fleet_queue_depth",
                help="samples awaiting a label", labels=labels,
                fn=lambda s=shard: s.labeler.n_pending,
            )
            reg.gauge(
                "repro_fleet_monitored_disks",
                help="disks holding a labeling queue", labels=labels,
                fn=lambda s=shard: s.n_monitored_disks,
            )
            reg.gauge(
                "repro_fleet_tree_replacements_total",
                help="decayed trees regrown", labels=labels,
                fn=lambda s=shard: s.forest.n_replacements,
            )
        reg.gauge(
            "repro_fleet_shards", help="shard count", fn=lambda: n,
        )
        reg.gauge(
            "repro_fleet_degraded_shards",
            help="shards fenced off after a mid-batch fault",
            fn=lambda: self.health.n_degraded,
        )
        reg.gauge(
            "repro_fleet_dead_letter_depth",
            help="quarantined events retained for inspection",
            fn=lambda: len(self.dead_letters),
        )
        self._ckpt_failures_c = self.instruments.checkpoint_failures
        reg.gauge(
            "repro_fleet_checkpoint_age_samples",
            help="fleet samples since the last checkpoint rotation",
            fn=lambda: (
                self.rotator.samples_since_rotate(self.n_samples)
                if self.rotator is not None else 0
            ),
        )
        self._ingest_hist = self.instruments.ingest_seconds

    # -------------------------------------------------------------- builders
    @classmethod
    def build(
        cls,
        config: Union[FleetConfig, int],
        *,
        alarm_manager: Optional[AlarmManager] = None,
        registry: Optional[MetricsRegistry] = None,
        executor: Optional[TreeExecutor] = None,
        rotator: Optional[CheckpointRotator] = None,
        strict: bool = True,
        dead_letters: Optional[DeadLetterQueue] = None,
        max_dead_letters: int = 1024,
        clock: Callable[[], float] = time.perf_counter,
        tracer: Optional[NullTracer] = None,
        mode: Optional[str] = None,
        **legacy: Any,
    ) -> "FleetMonitor":
        """Construct a fleet of fresh seed-derived shards.

        The first argument is a :class:`~repro.service.config.
        FleetConfig`; everything that is *data* about the fleet's shape
        (shards, seed, forest kwargs, queue length, thresholds, mode)
        lives on the config, while live collaborators (registry, alarm
        manager, executor, rotator, tracer, clock) stay keyword
        arguments here.  With ``n_shards=1`` the single forest is seeded
        with the config's seed itself, so the fleet reproduces a plain
        ``OnlineDiskFailurePredictor(OnlineRandomForest(..., seed=seed))``
        loop bit for bit.

        Passing an integer feature count with loose keyword arguments
        (``n_shards=``, ``seed=``, ``forest_kwargs=`` …) is the
        deprecated legacy spelling: it emits a
        :exc:`DeprecationWarning`, builds the equivalent config, and
        constructs a bit-identical fleet through the same shard factory.
        """
        if isinstance(config, FleetConfig):
            if legacy:
                raise TypeError(
                    "unexpected keyword arguments alongside a FleetConfig: "
                    f"{sorted(legacy)} — fleet shape belongs on the config"
                )
            if mode is not None and mode != config.mode:
                raise ValueError(
                    f"mode={mode!r} conflicts with config.mode="
                    f"{config.mode!r}; set it on the config"
                )
            return cls(
                config.build_shards(),
                config=config,
                mode=config.mode,
                alarm_manager=alarm_manager,
                registry=registry,
                executor=executor,
                rotator=rotator,
                strict=strict,
                dead_letters=dead_letters,
                max_dead_letters=max_dead_letters,
                clock=clock,
                tracer=tracer,
            )
        # ----------------------------------------- legacy kwarg shim
        warnings.warn(
            "FleetMonitor.build(n_features, n_shards=..., seed=..., "
            "forest_kwargs=...) is deprecated; construct a FleetConfig "
            "and call FleetMonitor.build(config, ...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        n_features = int(config)
        defaults: Dict[str, Any] = {
            "n_shards": 1,
            "seed": None,
            "forest_kwargs": None,
            "queue_length": 7,
            "alarm_threshold": 0.5,
            "warmup_samples": 0,
            "record_alarms": False,
            "max_recorded_alarms": None,
        }
        params = {k: legacy.pop(k, v) for k, v in defaults.items()}
        if legacy:
            raise TypeError(
                f"unexpected keyword arguments: {sorted(legacy)}"
            )
        shards = build_shard_predictors(
            n_features,
            n_shards=int(params["n_shards"]),
            seed=params["seed"],
            forest=params["forest_kwargs"],
            queue_length=int(params["queue_length"]),
            alarm_threshold=float(params["alarm_threshold"]),
            warmup_samples=int(params["warmup_samples"]),
            record_alarms=bool(params["record_alarms"]),
            max_recorded_alarms=params["max_recorded_alarms"],
        )
        built_config: Optional[FleetConfig]
        try:
            # stamp the equivalent config when it is expressible as one
            # (an exotic seed object or non-JSON forest kwargs are not)
            built_config = FleetConfig(
                n_features=n_features,
                n_shards=int(params["n_shards"]),
                seed=params["seed"],
                forest=dict(params["forest_kwargs"] or {}),
                queue_length=int(params["queue_length"]),
                alarm_threshold=float(params["alarm_threshold"]),
                warmup_samples=int(params["warmup_samples"]),
                record_alarms=bool(params["record_alarms"]),
                max_recorded_alarms=params["max_recorded_alarms"],
                mode=mode if mode is not None else "exact",
            )
        except ValueError:
            built_config = None
        return cls(
            shards,
            config=built_config,
            mode=mode if mode is not None else "exact",
            alarm_manager=alarm_manager,
            registry=registry,
            executor=executor,
            rotator=rotator,
            strict=strict,
            dead_letters=dead_letters,
            max_dead_letters=max_dead_letters,
            clock=clock,
            tracer=tracer,
        )

    @classmethod
    def from_checkpoint(
        cls,
        path: Union[str, Path],
        *,
        config: Optional[FleetConfig] = None,
        **fleet_kwargs: Any,
    ) -> "FleetMonitor":
        """Resume a fleet from a checkpoint directory.

        Shard predictors (forests, labeling queues, counters) restore
        bit-exactly; the alarm manager's dynamic state is reloaded from
        the manifest into the manager passed via ``alarm_manager`` (or
        the default one).  When *config* is given, the checkpoint's
        embedded config must agree on the compatibility keys
        (``n_features``, ``n_shards``, ``queue_length``) or the restore
        raises :exc:`~repro.service.config.CheckpointConfigMismatch`
        instead of silently misrouting disks; when omitted, the stamped
        config (if any) is adopted.
        """
        manifest, shards = load_checkpoint(path, expect_config=config)
        if config is None:
            stamped = manifest.get("config")
            if stamped is not None:
                try:
                    config = FleetConfig.from_dict(stamped)
                except ValueError:
                    config = None  # unreadable stamp: restore without one
        if config is not None:
            fleet_kwargs.setdefault("mode", config.mode)
        fleet = cls(shards, config=config, **fleet_kwargs)
        fleet._seq = int(manifest.get("n_samples", 0))
        alarm_state = manifest.get("alarms")
        if alarm_state is not None:
            fleet.alarms.load_state_dict(alarm_state)
        return fleet

    # ---------------------------------------------------------------- stream
    def shard_index(self, disk_id: Hashable) -> int:
        """Which shard owns *disk_id*."""
        return shard_of(disk_id, len(self.shards))

    @property
    def n_features(self) -> int:
        """Feature dimension every ingested vector must match."""
        return int(self.shards[0].forest.n_features)

    def _quarantine(
        self,
        ev: DiskEvent,
        reason: str,
        *,
        shard: Optional[int] = None,
        seq: Optional[int] = None,
        detail: str = "",
    ) -> None:
        quarantine_event(
            self.dead_letters, self.instruments, ev, reason,
            shard=shard, seq=seq, detail=detail,
        )

    def _admit(
        self, events: Sequence[DiskEvent]
    ) -> Tuple[List[Tuple[int, DiskEvent]], List[Tuple[DiskEvent, str, Optional[int]]]]:
        """Admission-check a batch via the shared :func:`admit_events`."""
        return admit_events(
            events,
            n_features=self.n_features,
            n_shards=len(self.shards),
            strict=self.strict,
            health=self.health,
        )

    def ingest(self, events: Sequence[DiskEvent]) -> List[EmittedAlarm]:
        """Process one micro-batch of events; returns emitted alarms.

        The whole batch is admission-checked first (see
        :func:`~repro.service.faults.validate_event`); only then are
        events bucketed per shard (preserving per-disk arrival order),
        shard buckets run on the fleet executor, and lifecycle decisions
        applied in global arrival order — so the emitted stream is
        deterministic for any executor or shard count.  A shard whose
        bucket raises is marked degraded and its bucket quarantined;
        sibling shards complete the batch unaffected.
        """
        t0 = self._clock()
        with self.tracer.span("fleet.ingest", items=len(events)):
            with self.tracer.span("fleet.admit", items=len(events)):
                accepted, rejected = self._admit(events)
                for ev, reason, shard_i in rejected:
                    self._quarantine(ev, reason, shard=shard_i)

            with self.tracer.span("fleet.route", items=len(accepted)):
                buckets: List[List[Tuple[int, DiskEvent]]] = [
                    [] for _ in self.shards
                ]
                for shard_i, ev in accepted:
                    buckets[shard_i].append((self._seq, ev))
                    self._seq += 1
                busy = [(i, b) for i, b in enumerate(buckets) if b]
                payloads = [(self.shards[i], b, self.mode) for i, b in busy]

            with self.tracer.span("fleet.shards", items=len(accepted)):
                if len(busy) <= 1 or isinstance(self._executor, SerialExecutor):
                    results = [_drain_shard(p) for p in payloads]
                else:
                    results = self._executor.map(_drain_shard, payloads)

            merged: List[Tuple[int, int, DiskEvent, Optional[Alarm]]] = []
            faults: List[Tuple[int, BaseException]] = []
            for (shard_i, bucket), (shard_results, error) in zip(busy, results):
                if error is not None:
                    # the shard is half-mutated and untrusted: fence it off
                    # and account for every event of its bucket
                    self.health.mark_degraded(shard_i, error)
                    for seq, ev in bucket:
                        self._quarantine(
                            ev, REASON_SHARD_FAULT,
                            shard=shard_i, seq=seq, detail=str(error),
                        )
                    faults.append((shard_i, error))
                    continue
                for seq, ev, alarm in shard_results:
                    merged.append((seq, shard_i, ev, alarm))
            merged.sort(key=lambda item: item[0])

            with self.tracer.span("fleet.lifecycle", items=len(merged)):
                emitted = apply_lifecycle(
                    merged, alarms=self.alarms, instruments=self.instruments,
                )
        self._ingest_hist.observe(self._clock() - t0)
        if self.rotator is not None:
            try:
                self.rotator.maybe_rotate(self)
            except OSError:
                self._ckpt_failures_c.inc()
                if self.strict:
                    raise
        if faults and self.strict:
            shard_i, error = faults[0]
            raise ShardFault(shard_i, error)
        return emitted

    def replay(
        self, events: Iterable[DiskEvent], *, batch_size: int = 256
    ) -> List[EmittedAlarm]:
        """Drive an event stream through :meth:`ingest` in micro-batches."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        emitted: List[EmittedAlarm] = []
        batch: List[DiskEvent] = []
        for ev in events:
            batch.append(ev)
            if len(batch) >= batch_size:
                emitted.extend(self.ingest(batch))
                batch = []
        if batch:
            emitted.extend(self.ingest(batch))
        return emitted

    # ------------------------------------------------------------ inspection
    @property
    def n_shards(self) -> int:
        """Number of predictor shards."""
        return len(self.shards)

    @property
    def n_samples(self) -> int:
        """Total events ingested (samples + failures) — the rotation clock."""
        return self._seq

    def alarm_state(self) -> Optional[dict]:
        """Alarm-manager dynamic state for checkpoint manifests."""
        return self.alarms.state_dict()

    def effective_config(self) -> FleetConfig:
        """The config this fleet runs under, derived when none was given.

        Fleets built from a :class:`FleetConfig` return it (with the
        live ``mode``); fleets assembled from bare shard predictors get
        a topology-only config (``seed=None``, ``forest={}``) read off
        the first shard — enough for checkpoint-compatibility stamping,
        not enough to rebuild identical forests.
        """
        if self.config is not None:
            if self.config.mode == self.mode:
                return self.config
            return dataclasses.replace(self.config, mode=self.mode)
        shard = self.shards[0]
        return FleetConfig(
            n_features=self.n_features,
            n_shards=len(self.shards),
            seed=None,
            forest={},
            queue_length=int(shard.labeler.queue_length),
            alarm_threshold=float(shard.alarm_threshold),
            warmup_samples=int(shard.warmup_samples),
            record_alarms=bool(shard.record_alarms),
            max_recorded_alarms=shard.max_recorded_alarms,
            mode=self.mode,
            runtime="inproc",
        )

    def write_shard_snapshots(self, directory: Union[str, Path]) -> int:
        """Write ``shard{i}.npz`` for every shard into *directory*.

        The snapshot hook the :class:`~repro.service.checkpoint.
        CheckpointRotator` calls while staging — shards wrapped by the
        fault-injection proxy snapshot their real predictor, so a chaos
        drill's checkpoints restore clean.  Returns the shard count.
        """
        directory = Path(directory)
        for i, shard in enumerate(self.shards):
            target = shard.inner if isinstance(shard, FaultyPredictor) else shard
            save_model(target, directory / f"shard{i}.npz")
        return len(self.shards)

    def checkpoint(self) -> Optional[object]:
        """Force a rotation now (None when no rotator is attached)."""
        if self.rotator is None:
            return None
        return self.rotator.rotate(self)

    def digest(self) -> dict:
        """One-line health summary for logs and the ``serve`` CLI."""
        samples = sum(int(c.value) for c in self._samples_c)
        seconds = self._ingest_hist.sum
        return {
            "events": self._seq,
            "samples": samples,
            "failures": sum(int(c.value) for c in self._failures_c),
            "queue_depth": sum(s.labeler.n_pending for s in self.shards),
            "monitored_disks": sum(s.n_monitored_disks for s in self.shards),
            "tree_replacements": sum(
                s.forest.n_replacements for s in self.shards
            ),
            "alarms": {
                k: v for k, v in self.alarms.counts.items() if v
            },
            "quarantined": self.dead_letters.total,
            "quarantine_reasons": self.dead_letters.reason_counts,
            "degraded_shards": self.health.degraded,
            "samples_per_sec": (samples / seconds) if seconds > 0 else 0.0,
            "checkpoint_age": (
                self.rotator.samples_since_rotate(self.n_samples)
                if self.rotator is not None else None
            ),
        }


def fleet_events(
    arrays: "LabeledArrays", fail_day: Dict[int, int]
) -> Iterable[DiskEvent]:
    """Yield :class:`DiskEvent`\\ s from prepared arrays in stream order.

    *arrays* is a :class:`~repro.eval.protocol.LabeledArrays`;
    *fail_day* maps serial → failure day (the day's sample becomes the
    final snapshot of a ``failed=True`` event, matching the CLI monitor
    loop).

    A dead disk often reports *nothing* on its death day, so a failed
    serial may have no SMART row at ``fail_day`` — without an explicit
    death event its labeling queue would leak forever and its queued
    positives would never reach the forest.  Such disks get a trailing
    ``DiskEvent(x=None, failed=True)`` after the stream.
    """
    from repro.eval.protocol import stream_order

    order = stream_order(arrays.days, arrays.serials)
    seen: set = set()
    death_emitted: set = set()
    for i in order:
        serial = int(arrays.serials[i])
        day = int(arrays.days[i])
        failed = fail_day.get(serial) == day
        seen.add(serial)
        if failed:
            death_emitted.add(serial)
        yield DiskEvent(
            disk_id=serial,
            x=arrays.X[i],
            failed=failed,
            tag=day,
        )
    for serial in sorted(seen - death_emitted):
        fd = fail_day.get(serial)
        if fd is not None:
            yield DiskEvent(disk_id=serial, x=None, failed=True, tag=int(fd))
