"""Fleet service layer: the gap between a classifier and a deployment.

The paper's §5 deployment story needs more than Algorithm 2: something
has to shard the fleet across predictors, manage the life of an alarm
after it fires, keep checkpoints fresh and bounded, and expose the
numbers an operator watches.  This subpackage is that serving layer:

* :class:`FleetMonitor` — hash-sharded, micro-batched, deterministic
  replay of the Algorithm-2 loop at fleet scale;
* :class:`AlarmManager` — dedup, cooldown, escalation, drain
  suppression (the alarm lifecycle);
* :class:`CheckpointRotator` — cadence-driven shard snapshots with
  retention and a crash-consistent ``LATEST`` pointer;
* :class:`MetricsRegistry` — dependency-free counters/gauges/histograms
  with Prometheus-style text exposition;
* :mod:`~repro.service.faults` — event admission checks, the
  :class:`DeadLetterQueue` quarantine, :class:`ShardHealth` fencing,
  and the fault-injection harness that proves the degradation story.

``repro serve`` on the CLI wires all of it together over a CSV replay.
"""

from repro.service.alarms import (
    AlarmAction,
    AlarmDecision,
    AlarmManager,
    AlarmRecord,
    AlarmState,
)
from repro.service.checkpoint import (
    CheckpointRotator,
    load_checkpoint,
    load_latest,
)
from repro.service.config import (
    CheckpointConfigMismatch,
    FleetConfig,
    build_shard_predictors,
    shard_seeds,
)
from repro.service.faults import (
    DeadLetterQueue,
    FaultyPredictor,
    QuarantinedEvent,
    ShardFault,
    ShardHealth,
    salt_events,
    validate_event,
)
from repro.service.fleet import (
    DiskEvent,
    EmittedAlarm,
    FleetBackend,
    FleetMonitor,
    fleet_events,
    shard_of,
)
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "FleetConfig",
    "FleetMonitor",
    "FleetBackend",
    "CheckpointConfigMismatch",
    "build_shard_predictors",
    "DiskEvent",
    "EmittedAlarm",
    "fleet_events",
    "shard_of",
    "shard_seeds",
    "AlarmManager",
    "AlarmAction",
    "AlarmDecision",
    "AlarmRecord",
    "AlarmState",
    "CheckpointRotator",
    "load_checkpoint",
    "load_latest",
    "DeadLetterQueue",
    "QuarantinedEvent",
    "ShardFault",
    "ShardHealth",
    "FaultyPredictor",
    "salt_events",
    "validate_event",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
]
