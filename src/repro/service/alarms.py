"""Alarm lifecycle management for fleet serving.

Algorithm 2 emits a raw :class:`~repro.core.predictor.Alarm` for every
risky-looking sample, so a degrading disk that reports daily fires daily
— useless to an operator who already dispatched a migration on day one.
The :class:`AlarmManager` sits between the raw predictor stream and the
operator and implements the lifecycle the deployment story (§5) needs:

* **dedup** — repeated alarms for a disk fold into one open
  :class:`AlarmRecord` instead of re-paging;
* **cooldown** — an optional per-disk re-notification interval, counted
  in that disk's own samples (``cooldown=None`` never re-notifies while
  the record is open; ``0`` re-emits every alarm, the raw passthrough
  the shard-equivalence tests rely on);
* **escalation** — after K *consecutive* positive samples the record
  escalates once (a persistent signal beats a flapping one);
* **auto-suppression** — once migration reports the disk drained
  (:meth:`mark_drained`, wired to
  ``MigrationScheduler(on_drained=...)``), further alarms for it are
  suppressed: the operator already acted;
* **resolution** — after N consecutive negative samples the record
  closes, so a disk that recovers can legitimately re-alarm later.

All decisions depend only on the per-disk sample order, which the fleet
monitor preserves under any shard count or executor — the lifecycle is
therefore deterministic end to end.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, Optional

from repro.core.predictor import Alarm
from repro.service.metrics import MetricsRegistry


class AlarmState(str, enum.Enum):
    """Where an alarm record is in its life."""

    ACTIVE = "active"
    ESCALATED = "escalated"
    SUPPRESSED = "suppressed"
    RESOLVED = "resolved"


class AlarmAction(str, enum.Enum):
    """What the manager decided for one observed sample."""

    NONE = "none"              # negative sample, nothing open
    RAISED = "raised"          # emitted: new record or cooldown re-notify
    ESCALATED = "escalated"    # emitted: K consecutive positives
    DEDUPED = "deduped"        # folded into the open record, not emitted
    SUPPRESSED = "suppressed"  # disk drained; alarm swallowed
    RESOLVED = "resolved"      # record closed after quiet streak


#: actions that reach the operator
EMITTING_ACTIONS = frozenset({AlarmAction.RAISED, AlarmAction.ESCALATED})

#: lifecycle counters the manager maintains (and mirrors into a registry)
COUNTED_ACTIONS = (
    "raised", "escalated", "deduped", "suppressed", "resolved",
)


@dataclass
class AlarmRecord:
    """One open (or historical) alarm for one disk.

    Clocks (``opened_at`` etc.) tick in *that disk's* observed samples,
    not wall time, so records are comparable across replay speeds.
    """

    disk_id: Hashable
    state: AlarmState
    opened_at: int
    last_seen: int
    last_emit: int
    n_alarms: int = 1
    max_score: float = 0.0


@dataclass(frozen=True)
class AlarmDecision:
    """The manager's verdict on one observed sample."""

    action: AlarmAction
    emitted: bool
    alarm: Optional[Alarm] = None
    record: Optional[AlarmRecord] = None


_NONE_DECISION = AlarmDecision(AlarmAction.NONE, False)


@dataclass
class _DiskState:
    """Per-disk bookkeeping (sample clock, streaks, open record)."""

    clock: int = 0
    streak: int = 0       # consecutive positive samples
    neg_streak: int = 0   # consecutive negative samples
    drained: bool = False
    record: Optional[AlarmRecord] = None


class AlarmManager:
    """Stateful alarm lifecycle over a stream of per-disk verdicts.

    Parameters
    ----------
    cooldown:
        Per-disk re-notification interval while a record is open, in that
        disk's samples.  ``None`` (default) never re-notifies — pure
        dedup until the record resolves.  ``0`` emits every alarm.
    escalate_after:
        Escalate the open record once the disk has alarmed this many
        *consecutive* samples.  ``None`` disables escalation.
    resolve_after:
        Close the open record after this many consecutive negative
        samples.  ``None`` keeps records open until drain or retirement.
    registry:
        Optional :class:`MetricsRegistry`; lifecycle counters are
        mirrored into ``repro_alarms_<action>_total`` counters.
    history_limit:
        Closed records kept on :attr:`history` (a ring buffer).
    """

    def __init__(
        self,
        *,
        cooldown: Optional[int] = None,
        escalate_after: Optional[int] = 3,
        resolve_after: Optional[int] = 7,
        registry: Optional[MetricsRegistry] = None,
        history_limit: int = 256,
    ) -> None:
        if cooldown is not None and cooldown < 0:
            raise ValueError(f"cooldown must be >= 0 or None, got {cooldown}")
        if escalate_after is not None and escalate_after < 1:
            raise ValueError(
                f"escalate_after must be >= 1 or None, got {escalate_after}"
            )
        if resolve_after is not None and resolve_after < 1:
            raise ValueError(
                f"resolve_after must be >= 1 or None, got {resolve_after}"
            )
        self.cooldown = cooldown
        self.escalate_after = escalate_after
        self.resolve_after = resolve_after
        self.history: Deque[AlarmRecord] = deque(maxlen=history_limit)
        self._disks: Dict[Hashable, _DiskState] = {}
        self._counts: Dict[str, int] = {a: 0 for a in COUNTED_ACTIONS}
        self._counts["drained_disks"] = 0
        self._counts["retired_disks"] = 0
        self._metric_counters = {}
        if registry is not None:
            for action in COUNTED_ACTIONS:
                self._metric_counters[action] = registry.counter(
                    f"repro_alarms_{action}_total",
                    help=f"alarm lifecycle decisions: {action}",
                )

    def _count(self, action: str) -> None:
        self._counts[action] += 1
        counter = self._metric_counters.get(action)
        if counter is not None:
            counter.inc()

    # ---------------------------------------------------------------- stream
    def observe(self, disk_id: Hashable, alarm: Optional[Alarm]) -> AlarmDecision:
        """Feed one scored sample's verdict; returns the lifecycle decision.

        Call for *every* scored sample — ``alarm=None`` for a sample
        below the threshold — so streaks and resolution clocks advance.
        """
        st = self._disks.setdefault(disk_id, _DiskState())
        st.clock += 1

        if alarm is None:
            st.streak = 0
            st.neg_streak += 1
            rec = st.record
            if (
                rec is not None
                and rec.state in (AlarmState.ACTIVE, AlarmState.ESCALATED)
                and self.resolve_after is not None
                and st.neg_streak >= self.resolve_after
            ):
                rec.state = AlarmState.RESOLVED
                st.record = None
                self.history.append(rec)
                self._count("resolved")
                return AlarmDecision(AlarmAction.RESOLVED, False, None, rec)
            return _NONE_DECISION

        st.streak += 1
        st.neg_streak = 0
        if st.drained:
            self._count("suppressed")
            return AlarmDecision(AlarmAction.SUPPRESSED, False, alarm, st.record)

        rec = st.record
        if rec is None:
            rec = AlarmRecord(
                disk_id=disk_id,
                state=AlarmState.ACTIVE,
                opened_at=st.clock,
                last_seen=st.clock,
                last_emit=st.clock,
                max_score=float(alarm.score),
            )
            st.record = rec
            self._count("raised")
            return AlarmDecision(AlarmAction.RAISED, True, alarm, rec)

        rec.n_alarms += 1
        rec.last_seen = st.clock
        rec.max_score = max(rec.max_score, float(alarm.score))
        if (
            self.escalate_after is not None
            and st.streak >= self.escalate_after
            and rec.state is not AlarmState.ESCALATED
        ):
            rec.state = AlarmState.ESCALATED
            rec.last_emit = st.clock
            self._count("escalated")
            return AlarmDecision(AlarmAction.ESCALATED, True, alarm, rec)
        if self.cooldown is not None and st.clock - rec.last_emit >= self.cooldown:
            rec.last_emit = st.clock
            self._count("raised")
            return AlarmDecision(AlarmAction.RAISED, True, alarm, rec)
        self._count("deduped")
        return AlarmDecision(AlarmAction.DEDUPED, False, alarm, rec)

    # ------------------------------------------------------------ operations
    def mark_drained(self, disk_id: Hashable) -> bool:
        """Migration finished evacuating *disk_id*: suppress its alarms.

        Wire directly to the migration layer::

            scheduler = MigrationScheduler(
                capacity_tb=4, bandwidth_tb_per_day=8,
                on_drained=lambda disk, day: manager.mark_drained(disk),
            )

        Returns True if the disk was newly marked.
        """
        st = self._disks.setdefault(disk_id, _DiskState())
        newly = not st.drained
        st.drained = True
        if newly:
            self._counts["drained_disks"] += 1
        rec = st.record
        if rec is not None:
            rec.state = AlarmState.SUPPRESSED
            st.record = None
            self.history.append(rec)
        return newly

    def mark_active(self, disk_id: Hashable) -> None:
        """Undo :meth:`mark_drained` (disk restored to service)."""
        st = self._disks.get(disk_id)
        if st is not None:
            st.drained = False

    def retire(self, disk_id: Hashable) -> None:
        """Drop all state for a disk that left the fleet (failed/removed)."""
        st = self._disks.pop(disk_id, None)
        if st is None:
            return
        self._counts["retired_disks"] += 1
        if st.record is not None:
            st.record.state = AlarmState.RESOLVED
            self.history.append(st.record)

    # ------------------------------------------------------------ inspection
    @property
    def counts(self) -> Dict[str, int]:
        """Copy of the lifecycle counters."""
        return dict(self._counts)

    @property
    def active_records(self) -> Dict[Hashable, AlarmRecord]:
        """Open records keyed by disk id."""
        return {
            disk: st.record
            for disk, st in self._disks.items()
            if st.record is not None
        }

    def is_drained(self, disk_id: Hashable) -> bool:
        """Whether the disk is currently drain-suppressed."""
        st = self._disks.get(disk_id)
        return st is not None and st.drained

    # ----------------------------------------------------------- persistence
    def state_dict(self) -> dict:
        """JSON-serializable dynamic state (history excluded).

        Disk ids must themselves be JSON-serializable (int/str) for the
        dict to round-trip through a checkpoint manifest.
        """
        disks = []
        for disk, st in self._disks.items():
            rec = st.record
            disks.append([
                disk,
                {
                    "clock": st.clock,
                    "streak": st.streak,
                    "neg_streak": st.neg_streak,
                    "drained": st.drained,
                    "record": None if rec is None else {
                        "state": rec.state.value,
                        "opened_at": rec.opened_at,
                        "last_seen": rec.last_seen,
                        "last_emit": rec.last_emit,
                        "n_alarms": rec.n_alarms,
                        "max_score": rec.max_score,
                    },
                },
            ])
        return {"disks": disks, "counts": dict(self._counts)}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output; decisions continue exactly.

        Registry counters (if any) are not rewound — :attr:`counts` is
        the authoritative lifetime tally after a restore.
        """
        self._disks.clear()
        for disk, st in state["disks"]:
            rec_meta = st["record"]
            record = None
            if rec_meta is not None:
                record = AlarmRecord(
                    disk_id=disk,
                    state=AlarmState(rec_meta["state"]),
                    opened_at=rec_meta["opened_at"],
                    last_seen=rec_meta["last_seen"],
                    last_emit=rec_meta["last_emit"],
                    n_alarms=rec_meta["n_alarms"],
                    max_score=rec_meta["max_score"],
                )
            self._disks[disk] = _DiskState(
                clock=st["clock"],
                streak=st["streak"],
                neg_streak=st["neg_streak"],
                drained=st["drained"],
                record=record,
            )
        self._counts.update(state.get("counts", {}))
