"""Checkpoint rotation with crash-consistent latest-pointer semantics.

A fleet monitor runs for months; losing the forest to a host crash means
re-warming on live traffic.  The :class:`CheckpointRotator` snapshots
every shard (via :mod:`repro.persistence`, so restores are bit-exact,
labeling queues included) on a sample-count cadence, with:

* **atomicity** — a checkpoint is staged in a hidden temp directory and
  published with one ``os.rename``; readers never see a partial one;
* **crash-consistent latest pointer** — ``LATEST`` is a one-line file
  updated via write-temp + ``os.replace``, so it always names a fully
  written checkpoint even if the process dies mid-rotation;
* **retention** — only the newest *retention* checkpoints are kept
  (the one ``LATEST`` names is never pruned).

Layout::

    <dir>/ckpt-00000003/shard0.npz ... shardN.npz manifest.json
    <dir>/LATEST                 # contains "ckpt-00000003"
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from pathlib import Path
from typing import Any, List, Optional, Protocol, Tuple, Union

from repro.obs.tracing import NULL_TRACER, NullTracer
from repro.persistence import load_model
from repro.service.config import (
    CheckpointConfigMismatch,
    FleetConfig,
    check_checkpoint_config,
)
from repro.utils.validation import check_positive

PathLike = Union[str, Path]

LATEST_NAME = "LATEST"
MANIFEST_NAME = "manifest.json"
_FORMAT = 1


class SnapshotSource(Protocol):
    """What the rotator needs from a fleet: both runtimes provide it."""

    @property
    def n_shards(self) -> int: ...

    @property
    def n_samples(self) -> int: ...

    def alarm_state(self) -> Optional[dict]: ...

    def effective_config(self) -> FleetConfig: ...

    def write_shard_snapshots(self, directory: Union[str, Path]) -> int: ...


def load_checkpoint(
    path: PathLike, *, expect_config: Optional[FleetConfig] = None
) -> Tuple[dict, List[Any]]:
    """Load one checkpoint directory; returns ``(manifest, shards)``.

    Shards come back as fully restored
    :class:`~repro.core.predictor.OnlineDiskFailurePredictor` objects in
    shard order.  With *expect_config*, the manifest's embedded config
    is compared on the compatibility keys *before* any shard is read,
    raising :exc:`~repro.service.config.CheckpointConfigMismatch` on
    disagreement.
    """
    path = Path(path)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    check_checkpoint_config(manifest, expect_config)
    shards = [
        load_model(path / f"shard{i}.npz") for i in range(manifest["n_shards"])
    ]
    return manifest, shards


def _snapshot_candidates(directory: Path, name: str) -> List[Path]:
    """Published snapshot directories sharing *name*'s prefix, newest first.

    ``name`` is a ``<prefix>-<seq>`` checkpoint directory name (what the
    ``LATEST`` pointer holds); siblings with the same prefix are the
    fallback candidates when the pointed-at snapshot has been pruned.
    """
    prefix, dash, seq = name.rpartition("-")
    if not dash or not seq.isdigit():
        return []
    pattern = re.compile(rf"^{re.escape(prefix)}-(\d+)$")
    candidates: List[Tuple[int, Path]] = []
    for entry in directory.iterdir():
        m = pattern.match(entry.name)
        if m and entry.is_dir():
            candidates.append((int(m.group(1)), entry))
    return [path for _, path in sorted(candidates, reverse=True)]


def load_latest(
    directory: PathLike, *, expect_config: Optional[FleetConfig] = None
) -> Optional[Tuple[dict, List[Any]]]:
    """Load the checkpoint ``LATEST`` points at; None if there is none.

    A ``LATEST`` pointer can legitimately outlive its target — a crash
    between pruning and repointing, an operator ``rm``, a partially
    synced replica.  Losing *every* checkpoint to a stale one-line file
    would defeat the rotator's whole purpose, so when the pointed-at
    snapshot is missing or unreadable this falls back to the newest
    sibling snapshot that still loads (newest first), and returns None
    only when no snapshot is recoverable at all.

    With *expect_config*, a config mismatch is a *typed rejection*
    (:exc:`~repro.service.config.CheckpointConfigMismatch`), not
    corruption — it propagates instead of falling through to an older
    (and equally incompatible) snapshot.
    """
    directory = Path(directory)
    pointer = directory / LATEST_NAME
    if not pointer.exists():
        return None
    name = pointer.read_text().strip()
    target = directory / name
    fallbacks = [p for p in _snapshot_candidates(directory, name) if p != target]
    for candidate in [target, *fallbacks]:
        if not candidate.is_dir():
            continue
        try:
            return load_checkpoint(candidate, expect_config=expect_config)
        except CheckpointConfigMismatch:
            # a readable snapshot that *disagrees* is an answer, not
            # corruption: surface it rather than restoring a sibling
            # with the same embedded config
            raise
        except (OSError, ValueError, KeyError):
            # pruned mid-read or partially written: try the next-newest
            continue
    return None


class CheckpointRotator:
    """Cadence-driven shard snapshots with retention.

    Parameters
    ----------
    directory:
        Where checkpoints live (created if missing).
    every_samples:
        Rotate once this many fleet samples accumulated since the last
        rotation (:meth:`maybe_rotate` checks; :meth:`rotate` forces).
    retention:
        Checkpoints kept on disk (>= 1); older ones are pruned after
        each successful rotation.
    prefix:
        Checkpoint directory name prefix.
    retries:
        Extra snapshot attempts after a failed one.  Checkpoint I/O hits
        transient ``OSError``\\ s in real deployments (NFS hiccups, disk
        pressure, a laggy unmount) — one of those must not cost months
        of accumulated model state, so :meth:`rotate` retries with
        exponential backoff before giving up.
    backoff_seconds:
        Sleep before the first retry; doubles on each subsequent one.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        every_samples: int,
        retention: int = 3,
        prefix: str = "ckpt",
        retries: int = 2,
        backoff_seconds: float = 0.1,
    ) -> None:
        check_positive(every_samples, "every_samples")
        check_positive(retention, "retention")
        if not re.match(r"^[A-Za-z0-9_.-]+$", prefix):
            raise ValueError(f"invalid checkpoint prefix {prefix!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {backoff_seconds}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every_samples = int(every_samples)
        self.retention = int(retention)
        self.prefix = prefix
        self.retries = int(retries)
        self.backoff_seconds = float(backoff_seconds)
        self.n_retries = 0  # lifetime retry tally, for observability
        #: stage tracer; :class:`~repro.service.fleet.FleetMonitor`
        #: installs its own when one was passed at construction
        self.tracer: NullTracer = NULL_TRACER
        self._seq_re = re.compile(rf"^{re.escape(prefix)}-(\d+)$")
        existing = self._existing_seqs()
        self._next_seq = (max(existing) + 1) if existing else 0
        # resume the cadence from the latest manifest when one exists
        self._last_rotate_samples = 0
        latest = self.latest
        if latest is not None:
            try:
                manifest = json.loads((latest / MANIFEST_NAME).read_text())
                self._last_rotate_samples = int(manifest.get("n_samples", 0))
            except (OSError, ValueError):
                pass

    # -------------------------------------------------------------- plumbing
    def _existing_seqs(self) -> List[int]:
        seqs = []
        for entry in self.directory.iterdir():
            m = self._seq_re.match(entry.name)
            if m and entry.is_dir():
                seqs.append(int(m.group(1)))
        return seqs

    def checkpoints(self) -> List[Path]:
        """Published checkpoint directories, oldest first."""
        return [
            self.directory / f"{self.prefix}-{seq:08d}"
            for seq in sorted(self._existing_seqs())
        ]

    @property
    def latest(self) -> Optional[Path]:
        """The checkpoint ``LATEST`` points at (None before any rotation)."""
        pointer = self.directory / LATEST_NAME
        if not pointer.exists():
            return None
        target = self.directory / pointer.read_text().strip()
        return target if target.is_dir() else None

    def samples_since_rotate(self, n_samples: int) -> int:
        """Fleet samples accumulated since the last rotation."""
        return max(int(n_samples) - self._last_rotate_samples, 0)

    # -------------------------------------------------------------- rotation
    def maybe_rotate(self, fleet: SnapshotSource) -> Optional[Path]:
        """Rotate iff the cadence elapsed; returns the new path or None."""
        if self.samples_since_rotate(fleet.n_samples) >= self.every_samples:
            return self.rotate(fleet)
        return None

    def rotate(self, fleet: SnapshotSource) -> Path:
        """Snapshot every shard now; returns the published directory.

        *fleet* is any :class:`SnapshotSource` — the in-process
        :class:`~repro.service.fleet.FleetMonitor` or the
        process-runtime :class:`~repro.runtime.supervisor.
        FleetSupervisor` (whose workers write their own shard files
        into the staging directory).  Transient ``OSError``\\ s are
        retried up to :attr:`retries` times with exponential backoff;
        only after every attempt fails does the last error propagate.
        Failed attempts leave no partial checkpoint behind — the staged
        temp directory is torn down and ``LATEST`` still names the
        previous good snapshot.
        """
        with self.tracer.span("checkpoint.rotate", items=fleet.n_shards):
            last_exc: Optional[OSError] = None
            for attempt in range(self.retries + 1):
                if attempt:
                    self.n_retries += 1
                    time.sleep(self.backoff_seconds * (2 ** (attempt - 1)))
                try:
                    return self._rotate_once(fleet)
                except OSError as exc:
                    last_exc = exc
            assert last_exc is not None
            raise last_exc

    def _rotate_once(self, fleet: SnapshotSource) -> Path:
        seq = self._next_seq
        name = f"{self.prefix}-{seq:08d}"
        final = self.directory / name
        tmp = self.directory / f".{name}.tmp"
        try:
            if tmp.exists():
                shutil.rmtree(tmp)
            tmp.mkdir()
            n_shards = fleet.write_shard_snapshots(tmp)
            manifest = {
                "format": _FORMAT,
                "seq": seq,
                "n_samples": int(fleet.n_samples),
                "n_shards": int(n_shards),
                "alarms": fleet.alarm_state(),
                "config": fleet.effective_config().to_dict(),
            }
            (tmp / MANIFEST_NAME).write_text(json.dumps(manifest))
            os.rename(tmp, final)  # atomic publish of the whole directory
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self._publish_latest(name)
        self._next_seq = seq + 1
        self._last_rotate_samples = int(fleet.n_samples)
        self._prune()
        return final

    def _publish_latest(self, name: str) -> None:
        pointer = self.directory / LATEST_NAME
        tmp = self.directory / f".{LATEST_NAME}.tmp"
        tmp.write_text(name + "\n")
        os.replace(tmp, pointer)   # atomic pointer swap

    def _prune(self) -> None:
        keep = {p.name for p in self.checkpoints()[-self.retention:]}
        latest = self.latest
        if latest is not None:
            keep.add(latest.name)
        for path in self.checkpoints():
            if path.name not in keep:
                shutil.rmtree(path)

    # -------------------------------------------------------------- restore
    def load_latest(
        self, *, expect_config: Optional[FleetConfig] = None
    ) -> Optional[Tuple[dict, List[Any]]]:
        """Load the newest checkpoint in this rotator's directory."""
        return load_latest(self.directory, expect_config=expect_config)
