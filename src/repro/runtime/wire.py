"""Length-prefixed pickle frames over multiprocessing pipes.

The shard-host protocol is deliberately tiny: every message — in either
direction — is one *frame*, a fixed header (``!BI``: wire version byte
plus payload length) followed by a pickled ``(op, payload)`` tuple.
Commands flow supervisor → worker (``ingest_batch``, ``digest``,
``checkpoint``, ``drain``, ``heartbeat``); every command gets exactly
one reply (``ok`` or ``error``), so the conversation is strictly
request/response and a missing reply *is* the death signal — EOF or a
poll timeout on the reply is how the supervisor detects a dead or hung
worker.

Pickle is safe here because both ends are the same codebase on the same
host, parent and child of one process tree — this is an IPC framing,
not a network protocol (the TCP front door speaks the JSON gateway
protocol instead).
"""

from __future__ import annotations

import pickle
import struct
from multiprocessing.connection import Connection
from typing import Any, Optional, Tuple

#: bump on any incompatible change to the frame or payload shapes
WIRE_VERSION = 1

#: commands, supervisor → worker
OP_INGEST = "ingest_batch"
OP_DIGEST = "digest"
OP_CHECKPOINT = "checkpoint"
OP_DRAIN = "drain"
OP_HEARTBEAT = "heartbeat"

#: replies, worker → supervisor
REPLY_OK = "ok"
REPLY_ERROR = "error"

_HEADER = struct.Struct("!BI")


class WireError(RuntimeError):
    """A malformed or version-incompatible frame."""


class WorkerTimeout(RuntimeError):
    """No frame arrived within the allowed wait (a hung worker)."""


class WorkerGone(RuntimeError):
    """The peer process closed its pipe end (crash or kill)."""


def send_frame(conn: Connection, op: str, payload: Any = None) -> None:
    """Send one ``(op, payload)`` frame; raises :exc:`WorkerGone` on a
    closed pipe."""
    body = pickle.dumps((op, payload), protocol=pickle.HIGHEST_PROTOCOL)
    try:
        conn.send_bytes(_HEADER.pack(WIRE_VERSION, len(body)) + body)
    except (BrokenPipeError, ConnectionResetError, EOFError, OSError) as exc:
        raise WorkerGone(f"pipe closed while sending {op!r}: {exc}") from exc


def recv_frame(
    conn: Connection, timeout: Optional[float] = None
) -> Tuple[str, Any]:
    """Receive one frame; returns ``(op, payload)``.

    Raises :exc:`WorkerTimeout` when *timeout* seconds pass without a
    frame, :exc:`WorkerGone` when the peer's end is closed, and
    :exc:`WireError` on a frame that does not parse.
    """
    try:
        if timeout is not None and not conn.poll(timeout):
            raise WorkerTimeout(f"no frame within {timeout:.3f}s")
        data = conn.recv_bytes()
    except (EOFError, BrokenPipeError, ConnectionResetError) as exc:
        raise WorkerGone(f"pipe closed: {exc}") from exc
    if len(data) < _HEADER.size:
        raise WireError(f"truncated frame header ({len(data)} bytes)")
    version, length = _HEADER.unpack_from(data)
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version {version} != expected {WIRE_VERSION}"
        )
    body = data[_HEADER.size:]
    if len(body) != length:
        raise WireError(
            f"frame length mismatch: header says {length}, got {len(body)}"
        )
    try:
        op, payload = pickle.loads(body)
    except Exception as exc:  # repro: noqa RPR302 — any unpickling failure is the same protocol error
        raise WireError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(op, str):
        raise WireError(f"frame op must be a str, got {type(op).__name__}")
    return op, payload
