"""Process-supervised fleet serving: one worker process per shard.

:class:`FleetSupervisor` is the process-runtime twin of
:class:`~repro.service.fleet.FleetMonitor`: same construction API
(:meth:`build` from a :class:`~repro.service.config.FleetConfig`), same
serving surface (``ingest``/``replay``/``digest``/``checkpoint``/
``alarm_state``), same metrics instruments, same checkpoint manifests —
but every shard lives in its own :class:`~repro.runtime.worker.
ShardHost` process, reached over a length-prefixed pickle pipe
protocol (:mod:`repro.runtime.wire`).

**Bit-identity.**  Admission (:func:`~repro.service.fleet.
admit_events`), sharding (:func:`~repro.service.fleet.shard_of`), and
the alarm lifecycle (:func:`~repro.service.fleet.apply_lifecycle`) run
in the supervisor via the exact code the in-process fleet uses; shard
buckets execute in arrival order inside workers whose predictors come
from the same :func:`~repro.service.config.build_shard_predictors`
factory.  Under one seed the emitted alarms, digests, quarantine
decisions, and per-shard forest state match ``FleetMonitor`` bit for
bit — including across a worker kill, because recovery is replay, not
approximation.

**Supervision.**  Every admitted bucket is journaled *before* it is
dispatched.  When a worker dies (pipe EOF, heartbeat/reply timeout),
the supervisor respawns it from the shard's latest snapshot — the boot
spool copy, the last published :class:`~repro.service.checkpoint.
CheckpointRotator` rotation, or a forced spool snapshot taken when the
journal hits its bound — and replays the journal tail.  The last
replayed bucket *is* the in-flight one, so its results are recovered,
no admitted event is lost, and the restart is invisible in the alarm
stream.  A shard that keeps dying through ``max_restarts`` attempts,
or that *reports* a fault (a deterministic error, where restarting
cannot help), is fenced off exactly like an in-process degraded shard:
traffic quarantined, health marked, strict mode raising
:exc:`~repro.service.faults.ShardFault`.

Restarts are observable: ``repro_runtime_restarts_total{shard}``
counters, :attr:`FleetSupervisor.restart_log` records (reason, recovery
seconds, replayed events), and ``runtime.*`` tracing spans.
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import shutil
import tempfile
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.predictor import Alarm, OnlineDiskFailurePredictor
from repro.obs.tracing import NULL_TRACER, NullTracer
from repro.persistence import load_model, save_model
from repro.service.alarms import AlarmManager
from repro.service.checkpoint import CheckpointRotator, load_checkpoint
from repro.service.config import FleetConfig
from repro.service.faults import (
    REASON_SHARD_FAULT,
    DeadLetterQueue,
    FaultyPredictor,
    ShardFault,
    ShardHealth,
)
from repro.service.fleet import (
    DiskEvent,
    EmittedAlarm,
    FleetInstruments,
    admit_events,
    apply_lifecycle,
    quarantine_event,
    shard_of,
)
from repro.service.metrics import MetricsRegistry
from repro.runtime.wire import (
    OP_CHECKPOINT,
    OP_DIGEST,
    OP_DRAIN,
    OP_HEARTBEAT,
    OP_INGEST,
    REPLY_OK,
    WireError,
    WorkerGone,
    WorkerTimeout,
    recv_frame,
    send_frame,
)
from repro.runtime.worker import shard_host_main

__all__ = ["FleetSupervisor", "RestartRecord"]

PathLike = Union[str, Path]
ShardSpec = Union[OnlineDiskFailurePredictor, str, Path]


@dataclass(frozen=True)
class RestartRecord:
    """One successful worker recovery, for the restart log."""

    shard: int
    reason: str
    seconds: float
    replayed_events: int
    attempts: int


class _WorkerFault(RuntimeError):
    """A worker *replied* with an error: deterministic, not a crash."""


class _Worker:
    """A live shard host: its process handle and supervisor pipe end."""

    __slots__ = ("proc", "conn")

    def __init__(self, proc: Any, conn: Connection) -> None:
        self.proc = proc
        self.conn = conn


class FleetSupervisor:
    """Shard-per-process fleet with supervised restart.

    Parameters
    ----------
    shards:
        One entry per shard: either a live
        :class:`~repro.core.predictor.OnlineDiskFailurePredictor`
        (snapshotted into the spool as the shard's boot state) or a
        path to an ``.npz`` snapshot (copied into the spool).
    config:
        The :class:`FleetConfig` this fleet runs under; derived from
        the first shard when omitted (topology only — prefer
        :meth:`build`).
    mode:
        Bucket semantics inside each worker, as in ``FleetMonitor``.
    rotator:
        Optional :class:`CheckpointRotator`.  Rotations double as
        restart points: a published rotation becomes every shard's
        recovery snapshot and clears the journals.
    spool_dir:
        Where boot snapshots and forced journal-bound snapshots live.
        A private temp directory (removed on :meth:`close`) when
        omitted; pass a real path to keep spool state across runs.
    journal_max_events:
        Bound on the per-shard in-flight journal.  A shard whose
        journal exceeds it gets a forced spool snapshot, so recovery
        replay time stays bounded no matter how sparse rotations are.
    max_restarts:
        Lifetime restart budget per shard; exhausting it degrades the
        shard instead of crash-looping forever.
    request_timeout:
        Seconds to wait for any worker reply (None blocks — the
        default, since shard work time is workload-bound).  A timeout
        is treated as a hung worker: killed and restarted.
    boot_timeout:
        Seconds to wait for a spawned worker's hello frame.
    fault_options:
        Chaos-drill injection: ``{shard: {"fail_after": n,
        "kill_on_fault": True, ...}}`` applied to that shard's *first*
        spawn only — the restarted worker is clean, so a drill kills
        once and then proves recovery.
    start_method:
        Multiprocessing start method; defaults to ``fork`` where
        available (cheapest), else the platform default.
    """

    def __init__(
        self,
        shards: Sequence[ShardSpec],
        *,
        config: Optional[FleetConfig] = None,
        alarm_manager: Optional[AlarmManager] = None,
        registry: Optional[MetricsRegistry] = None,
        mode: str = "exact",
        rotator: Optional[CheckpointRotator] = None,
        strict: bool = True,
        dead_letters: Optional[DeadLetterQueue] = None,
        max_dead_letters: int = 1024,
        clock: Callable[[], float] = time.perf_counter,
        tracer: Optional[NullTracer] = None,
        spool_dir: Optional[PathLike] = None,
        journal_max_events: int = 4096,
        max_restarts: int = 5,
        request_timeout: Optional[float] = None,
        boot_timeout: float = 60.0,
        fault_options: Optional[Mapping[int, Mapping[str, Any]]] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        if mode not in ("exact", "batch"):
            raise ValueError(f"mode must be 'exact' or 'batch', got {mode!r}")
        if journal_max_events < 1:
            raise ValueError(
                f"journal_max_events must be >= 1, got {journal_max_events}"
            )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if config is not None and int(config.n_shards) != len(shards):
            raise ValueError(
                f"config declares {config.n_shards} shard(s) but "
                f"{len(shards)} were supplied"
            )
        self.mode = mode
        self.rotator = rotator
        self.strict = bool(strict)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.alarms = (
            alarm_manager
            if alarm_manager is not None
            else AlarmManager(registry=self.registry)
        )
        self.dead_letters = (
            dead_letters
            if dead_letters is not None
            else DeadLetterQueue(max_dead_letters)
        )
        self.health = ShardHealth(len(shards))
        self._clock = clock
        self.tracer: NullTracer = tracer if tracer is not None else NULL_TRACER
        if rotator is not None:
            rotator.tracer = self.tracer
        self.journal_max_events = int(journal_max_events)
        self.max_restarts = int(max_restarts)
        self.request_timeout = request_timeout
        self.boot_timeout = float(boot_timeout)
        self._fault_options: Dict[int, Dict[str, Any]] = {
            int(k): dict(v) for k, v in dict(fault_options or {}).items()
        }
        method = start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else available[0]
        self._mp = multiprocessing.get_context(method)

        # ------------------------------------------------ spool + boot state
        self._own_spool = spool_dir is None
        self._spool = (
            Path(tempfile.mkdtemp(prefix="repro-runtime-"))
            if spool_dir is None
            else Path(spool_dir)
        )
        boot_dir = self._spool / "boot"
        boot_dir.mkdir(parents=True, exist_ok=True)
        self._snapshot_paths: List[Path] = []
        first_live: Optional[OnlineDiskFailurePredictor] = None
        for i, shard in enumerate(shards):
            dest = boot_dir / f"shard{i}.npz"
            if isinstance(shard, (str, Path)):
                shutil.copyfile(shard, dest)
            else:
                target = (
                    shard.inner
                    if isinstance(shard, FaultyPredictor)
                    else shard
                )
                if first_live is None:
                    first_live = target
                save_model(target, dest)
            self._snapshot_paths.append(dest)
        self._config = (
            config
            if config is not None
            else self._derive_config(shards[0], first_live, len(shards))
        )

        # ----------------------------------------------------------- workers
        self._seq = 0
        self._workers: List[Optional[_Worker]] = [None] * len(shards)
        self._stats: List[Dict[str, int]] = [
            {
                "n_samples": 0,
                "n_failures": 0,
                "queue_depth": 0,
                "monitored_disks": 0,
                "tree_replacements": 0,
            }
            for _ in shards
        ]
        self._journals: List[List[List[Tuple[int, DiskEvent]]]] = [
            [] for _ in shards
        ]
        self._journal_events: List[int] = [0] * len(shards)
        self.restarts: List[int] = [0] * len(shards)
        self.restart_log: List[RestartRecord] = []
        self.checkpoint_requests: List[int] = [0] * len(shards)
        self._instrument()
        try:
            for i in range(len(shards)):
                stats = self._spawn(i)
                self._stats[i] = stats
                self.instruments.seed_shard_counts(
                    i, stats["n_samples"], stats["n_failures"]
                )
        except BaseException:
            self.close()
            raise

    # ----------------------------------------------------------- construction
    @staticmethod
    def _derive_config(
        first: ShardSpec,
        first_live: Optional[OnlineDiskFailurePredictor],
        n_shards: int,
    ) -> FleetConfig:
        shard = first_live
        if shard is None:
            loaded = load_model(first)  # type: ignore[arg-type]
            shard = (
                loaded.inner if isinstance(loaded, FaultyPredictor) else loaded
            )
        return FleetConfig(
            n_features=int(shard.forest.n_features),
            n_shards=n_shards,
            seed=None,
            forest={},
            queue_length=int(shard.labeler.queue_length),
            alarm_threshold=float(shard.alarm_threshold),
            warmup_samples=int(shard.warmup_samples),
            record_alarms=bool(shard.record_alarms),
            max_recorded_alarms=shard.max_recorded_alarms,
            mode="exact",
            runtime="process",
        )

    @classmethod
    def build(
        cls,
        config: FleetConfig,
        *,
        alarm_manager: Optional[AlarmManager] = None,
        registry: Optional[MetricsRegistry] = None,
        rotator: Optional[CheckpointRotator] = None,
        strict: bool = True,
        dead_letters: Optional[DeadLetterQueue] = None,
        max_dead_letters: int = 1024,
        clock: Callable[[], float] = time.perf_counter,
        tracer: Optional[NullTracer] = None,
        spool_dir: Optional[PathLike] = None,
        journal_max_events: int = 4096,
        max_restarts: int = 5,
        request_timeout: Optional[float] = None,
        boot_timeout: float = 60.0,
        fault_options: Optional[Mapping[int, Mapping[str, Any]]] = None,
        start_method: Optional[str] = None,
    ) -> "FleetSupervisor":
        """Construct a process fleet of fresh seed-derived shards.

        The shards come from the *same*
        :func:`~repro.service.config.build_shard_predictors` factory the
        in-process fleet uses, so ``FleetSupervisor.build(cfg)`` and
        ``FleetMonitor.build(cfg)`` start from bit-identical forests.
        (There is no legacy kwarg spelling here — the process runtime
        postdates its deprecation.)
        """
        if not isinstance(config, FleetConfig):
            raise TypeError(
                "FleetSupervisor.build takes a FleetConfig; the legacy "
                "kwarg spelling was never supported by the process runtime"
            )
        return cls(
            config.build_shards(),
            config=config,
            mode=config.mode,
            alarm_manager=alarm_manager,
            registry=registry,
            rotator=rotator,
            strict=strict,
            dead_letters=dead_letters,
            max_dead_letters=max_dead_letters,
            clock=clock,
            tracer=tracer,
            spool_dir=spool_dir,
            journal_max_events=journal_max_events,
            max_restarts=max_restarts,
            request_timeout=request_timeout,
            boot_timeout=boot_timeout,
            fault_options=fault_options,
            start_method=start_method,
        )

    @classmethod
    def from_checkpoint(
        cls,
        path: PathLike,
        *,
        config: Optional[FleetConfig] = None,
        **kwargs: Any,
    ) -> "FleetSupervisor":
        """Resume a process fleet from a checkpoint directory.

        Same contract as ``FleetMonitor.from_checkpoint``: shard state
        restores bit-exactly into fresh workers, alarm-manager state
        reloads from the manifest, and a *config* argument makes the
        restore reject topology mismatches with
        :exc:`~repro.service.config.CheckpointConfigMismatch`.
        """
        manifest, shards = load_checkpoint(path, expect_config=config)
        if config is None:
            stamped = manifest.get("config")
            if stamped is not None:
                try:
                    config = FleetConfig.from_dict(stamped)
                except ValueError:
                    config = None
        if config is not None:
            kwargs.setdefault("mode", config.mode)
        fleet = cls(shards, config=config, **kwargs)
        fleet._seq = int(manifest.get("n_samples", 0))
        alarm_state = manifest.get("alarms")
        if alarm_state is not None:
            fleet.alarms.load_state_dict(alarm_state)
        return fleet

    # -------------------------------------------------------------- plumbing
    def _instrument(self) -> None:
        reg = self.registry
        n = len(self._snapshot_paths)
        self.instruments = FleetInstruments(reg, n)
        self._ingest_hist = self.instruments.ingest_seconds
        self._ckpt_failures_c = self.instruments.checkpoint_failures
        self._restarts_c = [
            reg.counter(
                "repro_runtime_restarts_total",
                help="shard workers respawned after a crash or hang",
                labels={"shard": str(i)},
            )
            for i in range(n)
        ]
        self._spool_ckpt_c = reg.counter(
            "repro_runtime_spool_checkpoints_total",
            help="forced snapshots taken when a journal hit its bound",
        )
        for i in range(n):
            reg.gauge(
                "repro_runtime_journal_events",
                help="admitted events awaiting the next snapshot",
                labels={"shard": str(i)},
                fn=lambda i=i: self._journal_events[i],
            )
        reg.gauge(
            "repro_runtime_workers",
            help="live shard worker processes",
            fn=lambda: float(
                sum(
                    1
                    for w in self._workers
                    if w is not None and w.proc.is_alive()
                )
            ),
        )

    def _spawn(self, shard_i: int) -> Dict[str, int]:
        """Start shard *shard_i*'s worker; returns its hello stats."""
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        options: Dict[str, Any] = {"mode": self.mode}
        fault = self._fault_options.pop(shard_i, None)
        if fault is not None:
            options["fault"] = fault
        proc = self._mp.Process(
            target=shard_host_main,
            args=(
                child_conn,
                shard_i,
                str(self._snapshot_paths[shard_i]),
                options,
            ),
            name=f"repro-shard-{shard_i}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        try:
            op, payload = recv_frame(parent_conn, timeout=self.boot_timeout)
        except (WorkerGone, WorkerTimeout, WireError):
            parent_conn.close()
            proc.kill()
            proc.join(timeout=5.0)
            raise
        if op != REPLY_OK:
            parent_conn.close()
            proc.join(timeout=5.0)
            raise _WorkerFault(
                f"shard {shard_i} failed to boot: {payload}"
            )
        self._workers[shard_i] = _Worker(proc, parent_conn)
        return dict(payload["stats"])

    def _reap(self, shard_i: int) -> None:
        worker = self._workers[shard_i]
        if worker is None:
            return
        self._workers[shard_i] = None
        with contextlib.suppress(OSError):
            worker.conn.close()
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=5.0)

    def _conn(self, shard_i: int) -> Connection:
        worker = self._workers[shard_i]
        if worker is None:
            raise WorkerGone(f"shard {shard_i} has no live worker")
        return worker.conn

    def _request(
        self,
        shard_i: int,
        op: str,
        payload: Any,
        *,
        timeout: Optional[float] = None,
    ) -> Any:
        """One request/reply exchange; raises on death or error reply."""
        conn = self._conn(shard_i)
        send_frame(conn, op, payload)
        reply_op, reply = recv_frame(
            conn, timeout=timeout if timeout is not None else self.request_timeout
        )
        if reply_op != REPLY_OK:
            message = (
                reply.get("message", str(reply))
                if isinstance(reply, dict)
                else str(reply)
            )
            raise _WorkerFault(message)
        return reply

    # ------------------------------------------------------------- recovery
    def _replay_journal(
        self, shard_i: int
    ) -> Optional[List[Tuple[int, Optional[Alarm]]]]:
        """Re-drive the journal tail through a fresh worker.

        Every bucket before the last was already applied to the alarm
        lifecycle — the worker recomputes the same state (same snapshot,
        same events, same order) and the interim results are discarded.
        The *last* bucket's results are returned: when recovery happens
        mid-ingest that bucket is the in-flight one, and these are
        exactly the results the dead worker owed.
        """
        results: Optional[List[Tuple[int, Optional[Alarm]]]] = None
        for bucket in self._journals[shard_i]:
            reply = self._request(shard_i, OP_INGEST, bucket)
            self._stats[shard_i] = dict(reply["stats"])
            results = list(reply["results"])
        return results

    def _recover(
        self, shard_i: int, reason: str
    ) -> Optional[List[Tuple[int, Optional[Alarm]]]]:
        """Restart a dead/hung worker and replay its journal.

        Returns the last journal bucket's results on success, or None
        when the shard cannot be brought back (restart budget spent, or
        the fault reproduces deterministically on replay) — the caller
        degrades it.
        """
        t0 = self._clock()
        attempts = 0
        with self.tracer.span("runtime.restart", items=1):
            while self.restarts[shard_i] < self.max_restarts:
                self.restarts[shard_i] += 1
                attempts += 1
                self._restarts_c[shard_i].inc()
                self._reap(shard_i)
                try:
                    self._stats[shard_i] = self._spawn(shard_i)
                    results = self._replay_journal(shard_i)
                except (WorkerGone, WorkerTimeout, WireError) as exc:
                    reason = f"died again during recovery: {exc}"
                    continue
                except _WorkerFault:
                    # deterministic fault: the same events produce the
                    # same error on every replay — restarting cannot help
                    return None
                self.restart_log.append(
                    RestartRecord(
                        shard=shard_i,
                        reason=str(reason),
                        seconds=self._clock() - t0,
                        replayed_events=self._journal_events[shard_i],
                        attempts=attempts,
                    )
                )
                return results
        return None

    def _degrade(
        self,
        shard_i: int,
        error: BaseException,
        bucket: Optional[List[Tuple[int, DiskEvent]]],
    ) -> None:
        self.health.mark_degraded(shard_i, error)
        if bucket is not None:
            for seq, ev in bucket:
                quarantine_event(
                    self.dead_letters,
                    self.instruments,
                    ev,
                    REASON_SHARD_FAULT,
                    shard=shard_i,
                    seq=seq,
                    detail=str(error),
                )
        # the shard is fenced: no more traffic, so the journal is moot
        self._journals[shard_i].clear()
        self._journal_events[shard_i] = 0

    # ---------------------------------------------------------------- stream
    def ingest(self, events: Sequence[DiskEvent]) -> List[EmittedAlarm]:
        """Process one micro-batch; same contract as ``FleetMonitor.ingest``.

        Admission, sequencing, and lifecycle run in the supervisor;
        shard buckets are journaled, dispatched to every busy worker,
        then collected — a worker that died mid-bucket is restarted
        from its snapshot and the journal replayed before the batch
        completes, so callers never observe the crash.
        """
        t0 = self._clock()
        with self.tracer.span("runtime.ingest", items=len(events)):
            with self.tracer.span("runtime.admit", items=len(events)):
                accepted, rejected = admit_events(
                    events,
                    n_features=self.n_features,
                    n_shards=self.n_shards,
                    strict=self.strict,
                    health=self.health,
                )
                for ev, reason, shard_i in rejected:
                    quarantine_event(
                        self.dead_letters, self.instruments, ev, reason,
                        shard=shard_i,
                    )

            with self.tracer.span("runtime.route", items=len(accepted)):
                buckets: List[List[Tuple[int, DiskEvent]]] = [
                    [] for _ in range(self.n_shards)
                ]
                for shard_i, ev in accepted:
                    buckets[shard_i].append((self._seq, ev))
                    self._seq += 1
                busy = [(i, b) for i, b in enumerate(buckets) if b]
                # journal before dispatch: an admitted event must
                # survive a worker crash from this point on
                for shard_i, bucket in busy:
                    self._journals[shard_i].append(bucket)
                    self._journal_events[shard_i] += len(bucket)

            with self.tracer.span("runtime.dispatch", items=len(accepted)):
                sent: List[Tuple[int, List[Tuple[int, DiskEvent]], bool]] = []
                for shard_i, bucket in busy:
                    ok = True
                    try:
                        send_frame(self._conn(shard_i), OP_INGEST, bucket)
                    except WorkerGone:
                        ok = False
                    sent.append((shard_i, bucket, ok))

            merged: List[Tuple[int, int, DiskEvent, Optional[Alarm]]] = []
            faults: List[Tuple[int, BaseException]] = []
            with self.tracer.span("runtime.collect", items=len(accepted)):
                for shard_i, bucket, sent_ok in sent:
                    results: Optional[List[Tuple[int, Optional[Alarm]]]]
                    fault: Optional[BaseException] = None
                    if sent_ok:
                        try:
                            reply = self._request_reply(shard_i)
                            results = reply
                        except (WorkerGone, WorkerTimeout, WireError) as exc:
                            results = self._recover(shard_i, str(exc))
                        except _WorkerFault as exc:
                            results, fault = None, exc
                    else:
                        results = self._recover(
                            shard_i, "pipe closed before dispatch"
                        )
                    if fault is None and results is None:
                        fault = RuntimeError(
                            f"shard {shard_i} unrecoverable after "
                            f"{self.restarts[shard_i]} restart(s)"
                        )
                    if fault is not None:
                        self._degrade(shard_i, fault, bucket)
                        faults.append((shard_i, fault))
                        continue
                    assert results is not None
                    if len(results) != len(bucket):
                        raise WireError(
                            f"shard {shard_i} returned {len(results)} "
                            f"results for a {len(bucket)}-event bucket"
                        )
                    for (seq, ev), (r_seq, alarm) in zip(bucket, results):
                        if r_seq != seq:
                            raise WireError(
                                f"shard {shard_i} result out of order: "
                                f"expected seq {seq}, got {r_seq}"
                            )
                        merged.append((seq, shard_i, ev, alarm))
            merged.sort(key=lambda item: item[0])

            with self.tracer.span("runtime.lifecycle", items=len(merged)):
                emitted = apply_lifecycle(
                    merged, alarms=self.alarms, instruments=self.instruments,
                )
        self._ingest_hist.observe(self._clock() - t0)
        self._enforce_journal_bound()
        if self.rotator is not None:
            try:
                published = self.rotator.maybe_rotate(self)
            except OSError:
                self._ckpt_failures_c.inc()
                if self.strict:
                    raise
            else:
                if published is not None:
                    self._mark_rotation(Path(published))
        if faults and self.strict:
            shard_i, error = faults[0]
            raise ShardFault(shard_i, error)
        return emitted

    def _request_reply(
        self, shard_i: int
    ) -> List[Tuple[int, Optional[Alarm]]]:
        """Collect one already-dispatched ingest reply."""
        op, reply = recv_frame(
            self._conn(shard_i), timeout=self.request_timeout
        )
        if op != REPLY_OK:
            message = (
                reply.get("message", str(reply))
                if isinstance(reply, dict)
                else str(reply)
            )
            raise _WorkerFault(message)
        self._stats[shard_i] = dict(reply["stats"])
        return list(reply["results"])

    def replay(
        self, events: Iterable[DiskEvent], *, batch_size: int = 256
    ) -> List[EmittedAlarm]:
        """Drive an event stream through :meth:`ingest` in micro-batches."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        emitted: List[EmittedAlarm] = []
        batch: List[DiskEvent] = []
        for ev in events:
            batch.append(ev)
            if len(batch) >= batch_size:
                emitted.extend(self.ingest(batch))
                batch = []
        if batch:
            emitted.extend(self.ingest(batch))
        return emitted

    # ----------------------------------------------------------- checkpoints
    def _enforce_journal_bound(self) -> None:
        for shard_i in range(self.n_shards):
            if self._journal_events[shard_i] <= self.journal_max_events:
                continue
            if self.health.is_degraded(shard_i):
                continue
            spool = self._spool / "journal"
            spool.mkdir(exist_ok=True)
            dest = spool / f"shard{shard_i}-{self._seq:08d}.npz"
            try:
                self._checkpoint_shard(shard_i, dest)
            except OSError:
                self._ckpt_failures_c.inc()
                if self.strict:
                    raise
                continue
            old = self._snapshot_paths[shard_i]
            self._snapshot_paths[shard_i] = dest
            self._journals[shard_i].clear()
            self._journal_events[shard_i] = 0
            self._spool_ckpt_c.inc()
            if old.parent == spool:
                with contextlib.suppress(OSError):
                    old.unlink()

    def _checkpoint_shard(self, shard_i: int, dest: Path) -> None:
        """Ask one worker to snapshot itself to *dest* (OSError on failure,
        so the rotator's retry machinery applies)."""
        for attempt in (0, 1):
            try:
                self._request(shard_i, OP_CHECKPOINT, str(dest))
                self.checkpoint_requests[shard_i] += 1
                return
            except _WorkerFault as exc:
                raise OSError(
                    f"shard {shard_i} checkpoint write failed: {exc}"
                ) from exc
            except (WorkerGone, WorkerTimeout, WireError) as exc:
                if attempt or self._recover(shard_i, str(exc)) is None:
                    raise OSError(
                        f"shard {shard_i} worker unavailable for checkpoint"
                    ) from exc

    def write_shard_snapshots(self, directory: Union[str, Path]) -> int:
        """Write ``shard{i}.npz`` for every shard into *directory*.

        Live workers snapshot themselves (their state includes every
        collected bucket, so the rotator manifest's ``n_samples`` is
        honest); a degraded shard contributes its half-mutated live
        state when its worker still runs — matching the in-process
        rotator — or its last good snapshot when the worker is gone.
        """
        directory = Path(directory)
        for shard_i in range(self.n_shards):
            dest = directory / f"shard{shard_i}.npz"
            worker = self._workers[shard_i]
            alive = worker is not None and worker.proc.is_alive()
            if self.health.is_degraded(shard_i):
                if alive:
                    self._checkpoint_shard(shard_i, dest)
                else:
                    shutil.copyfile(self._snapshot_paths[shard_i], dest)
                continue
            if not alive and self._recover(shard_i, "dead at checkpoint") is None:
                self._degrade(
                    shard_i,
                    RuntimeError("unrecoverable at checkpoint"),
                    None,
                )
                shutil.copyfile(self._snapshot_paths[shard_i], dest)
                continue
            self._checkpoint_shard(shard_i, dest)
        return self.n_shards

    def _mark_rotation(self, published: Path) -> None:
        """A published rotation becomes every shard's restart point."""
        for shard_i in range(self.n_shards):
            shard_file = published / f"shard{shard_i}.npz"
            if shard_file.exists():
                self._snapshot_paths[shard_i] = shard_file
            self._journals[shard_i].clear()
            self._journal_events[shard_i] = 0

    def checkpoint(self) -> Optional[Path]:
        """Force a rotation now (None when no rotator is attached)."""
        if self.rotator is None:
            return None
        published = Path(self.rotator.rotate(self))
        self._mark_rotation(published)
        return published

    # ------------------------------------------------------------ inspection
    @property
    def n_shards(self) -> int:
        """Number of shard worker processes."""
        return len(self._snapshot_paths)

    @property
    def n_samples(self) -> int:
        """Total events ingested (samples + failures) — the rotation clock."""
        return self._seq

    @property
    def n_features(self) -> int:
        """Feature dimension every ingested vector must match."""
        return int(self._config.n_features)

    def shard_index(self, disk_id: Hashable) -> int:
        """Which shard owns *disk_id*."""
        return shard_of(disk_id, self.n_shards)

    def alarm_state(self) -> Optional[dict]:
        """Alarm-manager dynamic state for checkpoint manifests."""
        return self.alarms.state_dict()

    def effective_config(self) -> FleetConfig:
        """The config this fleet runs under, stamped into manifests."""
        cfg = self._config
        if cfg.mode != self.mode or cfg.runtime != "process":
            cfg = dataclasses.replace(
                cfg, mode=self.mode, runtime="process"
            )
        return cfg

    def heartbeat(self, *, timeout: float = 5.0) -> Dict[int, bool]:
        """Ping every worker; returns ``{shard: alive}`` without restarting
        anything (detection only — recovery happens on the serving path)."""
        alive: Dict[int, bool] = {}
        for shard_i in range(self.n_shards):
            worker = self._workers[shard_i]
            if worker is None or self.health.is_degraded(shard_i):
                alive[shard_i] = False
                continue
            try:
                self._request(
                    shard_i, OP_HEARTBEAT, shard_i, timeout=timeout
                )
                alive[shard_i] = True
            except (WorkerGone, WorkerTimeout, WireError, _WorkerFault):
                alive[shard_i] = False
        return alive

    def _refresh_stats(self) -> None:
        for shard_i in range(self.n_shards):
            if self.health.is_degraded(shard_i):
                continue  # last collected stats stand for fenced shards
            worker = self._workers[shard_i]
            if worker is None:
                continue
            try:
                self._stats[shard_i] = dict(
                    self._request(shard_i, OP_DIGEST, None)
                )
            except (WorkerGone, WorkerTimeout, WireError) as exc:
                if self._recover(shard_i, f"died during digest: {exc}") is None:
                    self._degrade(
                        shard_i,
                        RuntimeError(f"unrecoverable during digest: {exc}"),
                        None,
                    )
            except _WorkerFault:
                continue  # stats are best-effort; serving decides health

    def digest(self) -> dict:
        """One-line health summary — same keys as ``FleetMonitor.digest``."""
        self._refresh_stats()
        samples = sum(int(c.value) for c in self.instruments.samples)
        seconds = self._ingest_hist.sum
        return {
            "events": self._seq,
            "samples": samples,
            "failures": sum(
                int(c.value) for c in self.instruments.failures
            ),
            "queue_depth": sum(s["queue_depth"] for s in self._stats),
            "monitored_disks": sum(
                s["monitored_disks"] for s in self._stats
            ),
            "tree_replacements": sum(
                s["tree_replacements"] for s in self._stats
            ),
            "alarms": {k: v for k, v in self.alarms.counts.items() if v},
            "quarantined": self.dead_letters.total,
            "quarantine_reasons": self.dead_letters.reason_counts,
            "degraded_shards": self.health.degraded,
            "samples_per_sec": (samples / seconds) if seconds > 0 else 0.0,
            "checkpoint_age": (
                self.rotator.samples_since_rotate(self.n_samples)
                if self.rotator is not None
                else None
            ),
        }

    # -------------------------------------------------------------- shutdown
    def drain(self, *, checkpoint: bool = True) -> dict:
        """Graceful shutdown: optional final rotation (each shard
        snapshotted exactly once), final digest, then worker teardown.

        Returns ``{"digest": ..., "checkpoint": Path | None}``.
        """
        with self.tracer.span("runtime.drain", items=self.n_shards):
            final: Optional[Path] = None
            if checkpoint:
                final = self.checkpoint()
            summary = self.digest()
            self.close()
        return {"digest": summary, "checkpoint": final}

    def close(self) -> None:
        """Stop every worker (drain frame, then join/kill) and remove the
        private spool.  Idempotent."""
        for shard_i, worker in enumerate(self._workers):
            if worker is None:
                continue
            self._workers[shard_i] = None
            with contextlib.suppress(
                WorkerGone, WorkerTimeout, WireError, OSError
            ):
                send_frame(worker.conn, OP_DRAIN, None)
                recv_frame(worker.conn, timeout=5.0)
            with contextlib.suppress(OSError):
                worker.conn.close()
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
        if self._own_spool:
            shutil.rmtree(self._spool, ignore_errors=True)

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
