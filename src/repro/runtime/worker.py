"""The shard-host worker: one process, one shard, one command loop.

A :class:`ShardHost` owns exactly one predictor shard.  It boots by
restoring the shard from a snapshot file (so a restarted host is
bit-identical to the one that died, modulo the journal tail the
supervisor replays), sends a hello frame, then serves the wire ops —
``ingest_batch``, ``digest``, ``checkpoint``, ``drain``, ``heartbeat``
— until drained or orphaned.

Two deliberate properties:

* **crash-clean state** — the shard is mutated *only* inside
  ``ingest_batch``; a kill at any instant loses at most the in-flight
  bucket, which the supervisor re-derives from snapshot + journal.  The
  worker never writes its own snapshots except when told to
  (``checkpoint``), so there is exactly one checkpoint cadence.
* **fault drills** — the supervisor can ask for a
  :class:`~repro.service.faults.FaultyPredictor` wrap at boot; with
  ``kill_on_fault`` the injected fault escalates to ``SIGKILL`` of the
  host's own process, which is the chaos drill the restart path is
  tested against (a *reply* of the fault would be a degrade, not a
  death).
"""

from __future__ import annotations

import os
import signal
from multiprocessing.connection import Connection
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.predictor import Alarm
from repro.persistence import load_model, save_model
from repro.service.faults import FaultyPredictor
from repro.service.fleet import DiskEvent
from repro.runtime.wire import (
    OP_CHECKPOINT,
    OP_DIGEST,
    OP_DRAIN,
    OP_HEARTBEAT,
    OP_INGEST,
    REPLY_ERROR,
    REPLY_OK,
    WireError,
    WorkerGone,
    recv_frame,
    send_frame,
)

__all__ = ["ShardHost", "shard_host_main"]


def _describe(exc: BaseException) -> Dict[str, str]:
    return {"type": type(exc).__name__, "message": str(exc)}


class ShardHost:
    """The command loop serving one shard over a pipe connection.

    Parameters
    ----------
    conn:
        The worker end of the supervisor's duplex pipe.
    shard_index:
        Which shard this host owns (echoed in the hello frame).
    snapshot_path:
        ``.npz`` snapshot the shard predictor is restored from.
    options:
        ``mode`` (``"exact"``/``"batch"`` bucket semantics) and the
        optional ``fault`` mapping (:class:`FaultyPredictor` kwargs plus
        ``kill_on_fault``) applied on this boot only.
    """

    def __init__(
        self,
        conn: Connection,
        shard_index: int,
        snapshot_path: str,
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        opts = dict(options or {})
        self.conn = conn
        self.shard_index = int(shard_index)
        self.snapshot_path = snapshot_path
        self.mode = str(opts.get("mode", "exact"))
        self._kill_on_fault = False
        self.predictor: Any = None
        self._fault = opts.get("fault")

    # -------------------------------------------------------------- lifecycle
    def boot(self) -> None:
        """Restore the shard and send the hello frame.

        A boot failure (unreadable snapshot, bad fault options) is
        reported as an error frame so the supervisor sees *why*, then
        the host exits — booting is all-or-nothing.
        """
        try:
            predictor = load_model(Path(self.snapshot_path))
            if self._fault is not None:
                fault = dict(self._fault)
                self._kill_on_fault = bool(fault.pop("kill_on_fault", False))
                predictor = FaultyPredictor(predictor, **fault)
            # warm the compiled inference snapshots, mirroring
            # FleetMonitor construction (representation-only)
            predictor.compile()
            self.predictor = predictor
        except Exception as exc:  # repro: noqa RPR302 — every boot failure must reach the supervisor as a frame
            send_frame(self.conn, REPLY_ERROR, _describe(exc))
            raise SystemExit(1)
        send_frame(
            self.conn,
            REPLY_OK,
            {"shard": self.shard_index, "stats": self._stats()},
        )

    def serve(self) -> None:
        """Serve commands until drained, or until the supervisor is gone."""
        while True:
            try:
                op, payload = recv_frame(self.conn)
            except WorkerGone:
                return  # supervisor died; daemon children just exit
            except WireError as exc:
                send_frame(self.conn, REPLY_ERROR, _describe(exc))
                continue
            if op == OP_INGEST:
                self._handle_ingest(payload)
            elif op == OP_DIGEST:
                send_frame(self.conn, REPLY_OK, self._stats())
            elif op == OP_HEARTBEAT:
                send_frame(self.conn, REPLY_OK, payload)
            elif op == OP_CHECKPOINT:
                self._handle_checkpoint(payload)
            elif op == OP_DRAIN:
                send_frame(self.conn, REPLY_OK, self._stats())
                return
            else:
                send_frame(
                    self.conn,
                    REPLY_ERROR,
                    {"type": "WireError", "message": f"unknown op {op!r}"},
                )

    # --------------------------------------------------------------- handlers
    def _handle_ingest(
        self, bucket: List[Tuple[int, DiskEvent]]
    ) -> None:
        try:
            results = self._run_bucket(bucket)
        except Exception as exc:  # repro: noqa RPR302 — mirror of _drain_shard: a faulting bucket is captured, not propagated
            if self._kill_on_fault:
                # the chaos drill: die exactly as a segfault/OOM would —
                # no reply, no cleanup, half-mutated state simply gone
                os.kill(os.getpid(), signal.SIGKILL)
            send_frame(self.conn, REPLY_ERROR, _describe(exc))
            return
        send_frame(
            self.conn,
            REPLY_OK,
            {"results": results, "stats": self._stats()},
        )

    def _run_bucket(
        self, bucket: List[Tuple[int, DiskEvent]]
    ) -> List[Tuple[int, Optional[Alarm]]]:
        """Run one bucket in arrival order — the worker-side mirror of
        :func:`repro.service.fleet._drain_shard`."""
        predictor = self.predictor
        if self.mode == "batch":
            alarms = predictor.process_batch(
                [(ev.disk_id, ev.x, ev.failed, ev.tag) for _, ev in bucket]
            )
            return [
                (seq, alarm) for (seq, _), alarm in zip(bucket, alarms)
            ]
        return [
            (seq, predictor.process(ev.disk_id, ev.x, ev.failed, ev.tag))
            for seq, ev in bucket
        ]

    def _handle_checkpoint(self, path: str) -> None:
        target = self.predictor
        if isinstance(target, FaultyPredictor):
            target = target.inner  # drills snapshot the real predictor
        try:
            save_model(target, Path(path))
        except OSError as exc:
            send_frame(self.conn, REPLY_ERROR, _describe(exc))
            return
        send_frame(self.conn, REPLY_OK, path)

    # ------------------------------------------------------------------ stats
    def _stats(self) -> Dict[str, int]:
        p = self.predictor
        return {
            "n_samples": int(p.stats.n_samples),
            "n_failures": int(p.stats.n_failures),
            "queue_depth": int(p.labeler.n_pending),
            "monitored_disks": int(p.n_monitored_disks),
            "tree_replacements": int(p.forest.n_replacements),
        }


def shard_host_main(
    conn: Connection,
    shard_index: int,
    snapshot_path: str,
    options: Optional[Dict[str, Any]] = None,
) -> None:
    """Process entry point for one shard host (module-level so it is
    importable under any multiprocessing start method).

    Ignores ``SIGINT``: an operator's Ctrl-C must reach the supervisor,
    which drains workers deliberately — workers dying first would turn
    every interactive shutdown into a restart storm.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    host = ShardHost(conn, shard_index, snapshot_path, options)
    try:
        host.boot()
        host.serve()
    except WorkerGone:
        pass  # supervisor vanished mid-reply; nothing left to tell
    finally:
        conn.close()
