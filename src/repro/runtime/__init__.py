"""Process runtime: shard-per-process serving with supervised restart.

The :class:`FleetSupervisor` runs each hash shard in a dedicated
:class:`ShardHost` worker process (selected with ``repro serve
--runtime process``), speaking the length-prefixed pickle protocol of
:mod:`repro.runtime.wire` over pipes, restarting dead workers from
checkpoints, and replaying the journaled in-flight tail so no admitted
event is lost.  It exposes the same serving surface as the in-process
:class:`~repro.service.fleet.FleetMonitor` and is bit-identical to it
under one seed.
"""

from repro.runtime.supervisor import FleetSupervisor, RestartRecord
from repro.runtime.wire import (
    WIRE_VERSION,
    WireError,
    WorkerGone,
    WorkerTimeout,
)
from repro.runtime.worker import ShardHost, shard_host_main

__all__ = [
    "FleetSupervisor",
    "RestartRecord",
    "ShardHost",
    "WIRE_VERSION",
    "WireError",
    "WorkerGone",
    "WorkerTimeout",
    "shard_host_main",
]
