"""Hoeffding tree (VFDT) for binary classification on [0, 1] features.

Domingos & Hulten's Very Fast Decision Tree: a leaf accumulates
sufficient statistics and splits on the best attribute once the
Hoeffding bound guarantees (with confidence 1-δ) that the observed best
beats the runner-up on the true distribution::

    ε = sqrt(R² ln(1/δ) / 2n)      split when ΔG_best - ΔG_second > ε
                                   (or ε < τ — the tie break)

Numeric attributes are handled with fixed equi-width histograms, which
is exact for this library's min-max-scaled features (all values lie in
[0, 1]).  Split quality is Gini gain, matching the ORF so the A6
comparison isolates the *algorithmic* difference (Hoeffding bound +
exhaustive per-feature histograms vs. random tests + α/β gates).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.node_stats import gini
from repro.utils.validation import (
    check_array_2d,
    check_binary_labels,
    check_feature_count,
    check_in_range,
    check_positive,
)


class _LeafStats:
    """Per-leaf histograms: counts[feature, bin, class]."""

    __slots__ = ("counts", "class_counts", "n_seen", "n_since_check")

    def __init__(self, n_features: int, n_bins: int) -> None:
        self.counts = np.zeros((n_features, n_bins, 2), dtype=np.float64)
        self.class_counts = np.zeros(2, dtype=np.float64)
        self.n_seen = 0.0
        self.n_since_check = 0

    def update(self, bins: np.ndarray, y: int, weight: float) -> None:
        """Fold one binned sample into the histograms."""
        self.counts[np.arange(bins.shape[0]), bins, y] += weight
        self.class_counts[y] += weight
        self.n_seen += weight
        self.n_since_check += 1

    def best_two_splits(self) -> Tuple[float, float, int, int]:
        """(best ΔG, second-best ΔG, best feature, best bin boundary).

        For every feature, prefix sums over bins give the class masses on
        each side of every boundary; Gini gain is evaluated vectorized
        for all (feature, boundary) pairs at once.
        """
        total = self.class_counts.sum()
        if total <= 0:
            return 0.0, 0.0, -1, -1
        parent_g = float(gini(self.class_counts))

        left = np.cumsum(self.counts, axis=1)[:, :-1, :]  # (F, B-1, 2)
        right = self.class_counts[None, None, :] - left
        lw = left.sum(axis=2)
        rw = right.sum(axis=2)
        child = (lw * gini(left) + rw * gini(right)) / total
        gains = parent_g - child  # (F, B-1)
        # boundaries with an empty side are useless; mask them out
        gains = np.where((lw > 0) & (rw > 0), gains, -np.inf)

        flat = gains.ravel()
        if flat.size == 0 or not np.isfinite(flat.max()):
            return 0.0, 0.0, -1, -1
        best_idx = int(np.argmax(flat))
        best = float(flat[best_idx])
        f, b = divmod(best_idx, gains.shape[1])
        # second best must come from a *different feature* (splitting on a
        # neighbouring boundary of the same feature is not a real rival)
        other = gains.copy()
        other[f, :] = -np.inf
        second = float(other.max()) if np.isfinite(other.max()) else 0.0
        return best, max(second, 0.0), int(f), int(b)

    def posterior_positive(self, laplace: float = 1.0) -> float:
        """Smoothed P(y = 1) at this leaf."""
        c0, c1 = self.class_counts
        return (c1 + laplace) / (c0 + c1 + 2.0 * laplace)


class HoeffdingTreeClassifier:
    """Binary VFDT over min-max-scaled features.

    Parameters
    ----------
    n_features:
        Input dimensionality; values are assumed in [0, 1] (clipped).
    n_bins:
        Histogram resolution per feature.
    delta:
        Hoeffding confidence parameter (split when the bound allows).
    tau:
        Tie-break threshold: split anyway when ε < τ.
    grace_period:
        Samples between split checks at a leaf.
    max_depth:
        Depth cap.
    """

    def __init__(
        self,
        n_features: int,
        *,
        n_bins: int = 16,
        delta: float = 1e-5,
        tau: float = 0.05,
        grace_period: int = 100,
        max_depth: int = 20,
    ) -> None:
        check_positive(n_features, "n_features")
        check_positive(n_bins, "n_bins")
        check_in_range(delta, "delta", 0.0, 1.0, inclusive=False)
        check_positive(tau, "tau", strict=False)
        check_positive(grace_period, "grace_period")
        check_positive(max_depth, "max_depth")
        self.n_features = int(n_features)
        self.n_bins = int(n_bins)
        self.delta = float(delta)
        self.tau = float(tau)
        self.grace_period = int(grace_period)
        self.max_depth = int(max_depth)

        self._feature: List[int] = []
        self._threshold: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._depth: List[int] = []
        self._leaf_stats: Dict[int, _LeafStats] = {}
        self._add_leaf(0)
        self.n_samples_seen = 0.0

    # ------------------------------------------------------------- plumbing
    def _add_leaf(self, depth: int) -> int:
        nid = len(self._feature)
        self._feature.append(-1)
        self._threshold.append(math.nan)
        self._left.append(-1)
        self._right.append(-1)
        self._depth.append(depth)
        self._leaf_stats[nid] = _LeafStats(self.n_features, self.n_bins)
        return nid

    @property
    def n_nodes(self) -> int:
        """Total node count (branches + leaves)."""
        return len(self._feature)

    @property
    def n_leaves(self) -> int:
        """Leaf count."""
        return len(self._leaf_stats)

    @property
    def depth(self) -> int:
        """Depth of the deepest node (root = 0)."""
        return max(self._depth) if self._depth else 0

    def _find_leaf(self, x: np.ndarray) -> int:
        nid = 0
        while self._feature[nid] >= 0:
            nid = (
                self._right[nid]
                if x[self._feature[nid]] > self._threshold[nid]
                else self._left[nid]
            )
        return nid

    def _bins_of(self, x: np.ndarray) -> np.ndarray:
        return np.clip(
            (np.clip(x, 0.0, 1.0) * self.n_bins).astype(np.int64),
            0,
            self.n_bins - 1,
        )

    def _hoeffding_bound(self, n: float) -> float:
        # Gini gain range R = 0.5 for binary labels (impurity in [0, 0.5])
        r = 0.5
        return math.sqrt(r * r * math.log(1.0 / self.delta) / (2.0 * max(n, 1.0)))

    # ----------------------------------------------------------------- train
    def update(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        """Fold one labeled sample into the tree."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_features,):
            raise ValueError(f"x must have shape ({self.n_features},)")
        if y not in (0, 1):
            raise ValueError(f"y must be 0 or 1, got {y!r}")
        self.n_samples_seen += weight
        nid = self._find_leaf(x)
        stats = self._leaf_stats[nid]
        stats.update(self._bins_of(x), y, weight)
        if (
            stats.n_since_check >= self.grace_period
            and self._depth[nid] < self.max_depth
        ):
            stats.n_since_check = 0
            self._maybe_split(nid, stats)

    def _maybe_split(self, nid: int, stats: _LeafStats) -> None:
        best, second, f, b = stats.best_two_splits()
        if f < 0 or best <= 0:
            return
        eps = self._hoeffding_bound(stats.n_seen)
        if best - second > eps or eps < self.tau:
            threshold = (b + 1) / self.n_bins
            depth = self._depth[nid]
            left_id = self._add_leaf(depth + 1)
            right_id = self._add_leaf(depth + 1)
            # children inherit the parent's class distribution on their side
            left_counts = stats.counts[f, : b + 1, :].sum(axis=0)
            right_counts = stats.counts[f, b + 1 :, :].sum(axis=0)
            self._leaf_stats[left_id].class_counts += left_counts
            self._leaf_stats[right_id].class_counts += right_counts
            self._feature[nid] = f
            self._threshold[nid] = threshold
            self._left[nid] = left_id
            self._right[nid] = right_id
            del self._leaf_stats[nid]

    def partial_fit(self, X: np.ndarray, y: np.ndarray, *, weights: Optional[np.ndarray] = None) -> "HoeffdingTreeClassifier":
        """Stream a batch in row order; returns self."""
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features, "X")
        y = check_binary_labels(y, n_rows=X.shape[0])
        if weights is None:
            weights = np.ones(X.shape[0])
        for i in range(X.shape[0]):
            if weights[i] > 0:
                self.update(X[i], int(y[i]), float(weights[i]))
        return self

    # ------------------------------------------------------------ prediction
    def predict_one(self, x: np.ndarray) -> float:
        """P(y = 1) for one sample."""
        return self._leaf_stats[self._find_leaf(np.asarray(x))].posterior_positive()

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """P(y = 1) per row (vectorized group traversal)."""
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features, "X")
        out = np.empty(X.shape[0])
        stack: List[Tuple[int, np.ndarray]] = [(0, np.arange(X.shape[0]))]
        while stack:
            nid, rows = stack.pop()
            if rows.size == 0:
                continue
            f = self._feature[nid]
            if f < 0:
                out[rows] = self._leaf_stats[nid].posterior_positive()
                continue
            go_right = X[rows, f] > self._threshold[nid]
            stack.append((self._left[nid], rows[~go_right]))
            stack.append((self._right[nid], rows[go_right]))
        return out

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 labels at a score threshold."""
        return (self.predict_score(X) >= threshold).astype(np.int8)
