"""Trivial streaming baselines — the floors any real model must beat.

On data this imbalanced, raw accuracy is a meaningless yardstick (always
predicting "healthy" is 99.9% accurate and 0% useful, §3.2 of the
paper).  These two baselines make that concrete in tests and benches:

* :class:`MajorityClassBaseline` — predicts the majority class's
  probability; detects nothing.
* :class:`PriorProbabilityBaseline` — scores every sample with the
  running positive rate; its FDR/FAR curve is the diagonal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_array_2d, check_binary_labels


class _CountingBaseline:
    def __init__(self) -> None:
        self.n_pos = 0.0
        self.n_neg = 0.0

    def update(self, x: Optional[np.ndarray], y: int, weight: float = 1.0) -> None:
        """Count one labeled sample (features are ignored)."""
        if y not in (0, 1):
            raise ValueError(f"y must be 0 or 1, got {y!r}")
        if y == 1:
            self.n_pos += weight
        else:
            self.n_neg += weight

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "_CountingBaseline":
        """Count a batch of labels; returns self."""
        X = check_array_2d(X, "X")
        y = check_binary_labels(y, n_rows=X.shape[0])
        for label in y:
            self.update(None, int(label))
        return self

    @property
    def positive_rate(self) -> float:
        """Running P(y = 1); 0.5 before any observation."""
        total = self.n_pos + self.n_neg
        return self.n_pos / total if total > 0 else 0.5

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at a score threshold."""
        return (self.predict_score(X) >= threshold).astype(np.int8)


class MajorityClassBaseline(_CountingBaseline):
    """Scores 1.0 when positives are the majority, else 0.0."""

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """1.0 for every row when positives are the majority, else 0.0."""
        X = check_array_2d(X, "X")
        score = 1.0 if self.n_pos > self.n_neg else 0.0
        return np.full(X.shape[0], score)


class PriorProbabilityBaseline(_CountingBaseline):
    """Scores every sample with the running base rate P(y = 1)."""

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """The running base rate, for every row."""
        X = check_array_2d(X, "X")
        return np.full(X.shape[0], self.positive_rate)
