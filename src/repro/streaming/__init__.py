"""Alternative streaming learners.

The ORF is not the only way to learn from a SMART stream; the
online-learning ecosystem's workhorse is the Hoeffding tree (VFDT —
what river and MOA ship as their default stream classifier).  This
subpackage provides from-scratch implementations so the repo can
compare the paper's choice against the standard alternative on equal
footing (ablation bench A6).
"""

from repro.streaming.hoeffding import HoeffdingTreeClassifier
from repro.streaming.baselines import MajorityClassBaseline, PriorProbabilityBaseline

__all__ = [
    "HoeffdingTreeClassifier",
    "MajorityClassBaseline",
    "PriorProbabilityBaseline",
]
