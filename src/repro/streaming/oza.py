"""Oza & Russell online ensembles (AISTATS'01).

The paper's online bagging is the machinery inside the ORF (each tree's
k ~ Poisson(λ)); this module provides the *generic* ensembles from the
same work so the repo can test two of the reproduced paper's §3.2
claims against real alternatives:

* :class:`OnlineBaggingEnsemble` — k ~ Poisson(1) per base learner per
  sample; with Hoeffding-tree bases this is the classic "online bagged
  VFDT" (river/MOA territory).
* :class:`OzaBoostClassifier` — online AdaBoost: the sample's weight λ
  is amplified through the stage chain whenever the current stage
  misclassifies it.  Boosting's focus on hard (= often *mislabeled*)
  samples is exactly why the paper calls forests "more robust against
  label noise compared to boosting" — ablation bench A7 measures that.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    check_array_2d,
    check_binary_labels,
    check_positive,
)

#: factory(seed) -> base learner with update(x, y, weight) / predict_score(X)
BaseFactory = Callable[[np.random.Generator], object]


class OnlineBaggingEnsemble:
    """Oza-Russell online bagging over any streaming base learner.

    Parameters
    ----------
    base_factory:
        ``factory(rng) -> learner``; the learner must expose
        ``update(x, y, weight)`` and ``predict_score(X)``.
    n_estimators:
        Ensemble size.
    lam:
        Poisson rate (1.0 reproduces offline bootstrap in the limit).
    """

    def __init__(
        self,
        base_factory: BaseFactory,
        *,
        n_estimators: int = 10,
        lam: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_estimators, "n_estimators")
        check_positive(lam, "lam")
        self.lam = float(lam)
        rng = as_generator(seed)
        self._rng = rng
        self.estimators: List[object] = [
            base_factory(child) for child in rng.spawn(n_estimators)
        ]
        self.n_samples_seen = 0

    def update(self, x: np.ndarray, y: int) -> None:
        """Fold one labeled sample into every member, k ~ Poisson(λ) times."""
        self.n_samples_seen += 1
        ks = self._rng.poisson(self.lam, size=len(self.estimators))
        for est, k in zip(self.estimators, ks):
            if k > 0:
                est.update(x, y, float(k))

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "OnlineBaggingEnsemble":
        """Stream a batch in row order; returns self."""
        X = check_array_2d(X, "X")
        y = check_binary_labels(y, n_rows=X.shape[0])
        for i in range(X.shape[0]):
            self.update(X[i], int(y[i]))
        return self

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """Mean member score per row."""
        X = check_array_2d(X, "X")
        return np.mean([est.predict_score(X) for est in self.estimators], axis=0)

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at a score threshold."""
        return (self.predict_score(X) >= threshold).astype(np.int8)


class OzaBoostClassifier:
    """Oza-Russell online boosting (the streaming AdaBoost.M1).

    Per sample, the running weight λ starts at 1 and flows through the
    stage chain: each stage trains ``k ~ Poisson(λ)`` times, then λ is
    *shrunk* if the stage now classifies the sample correctly and
    *amplified* if not — so later stages concentrate on the hard
    samples.  Votes are weighted ``log((1-ε_m)/ε_m)`` with ε_m the
    stage's tracked weighted error.
    """

    def __init__(
        self,
        base_factory: BaseFactory,
        *,
        n_estimators: int = 10,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_estimators, "n_estimators")
        rng = as_generator(seed)
        self._rng = rng
        self.estimators: List[object] = [
            base_factory(child) for child in rng.spawn(n_estimators)
        ]
        self.lambda_correct = np.zeros(n_estimators)
        self.lambda_wrong = np.zeros(n_estimators)
        self.n_samples_seen = 0

    def update(self, x: np.ndarray, y: int) -> None:
        """Run one labeled sample through the boosting chain."""
        self.n_samples_seen += 1
        lam = 1.0
        for m, est in enumerate(self.estimators):
            k = int(self._rng.poisson(lam))
            if k > 0:
                est.update(x, y, float(k))
            correct = (est.predict_score(x.reshape(1, -1))[0] >= 0.5) == bool(y)
            if correct:
                self.lambda_correct[m] += lam
                total = self.lambda_correct[m] + self.lambda_wrong[m]
                lam *= total / (2.0 * self.lambda_correct[m])
            else:
                self.lambda_wrong[m] += lam
                total = self.lambda_correct[m] + self.lambda_wrong[m]
                lam *= total / (2.0 * self.lambda_wrong[m])
            lam = min(lam, 1e4)  # guard against runaway amplification

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "OzaBoostClassifier":
        """Stream a batch in row order; returns self."""
        X = check_array_2d(X, "X")
        y = check_binary_labels(y, n_rows=X.shape[0])
        for i in range(X.shape[0]):
            self.update(X[i], int(y[i]))
        return self

    def stage_errors(self) -> np.ndarray:
        """Tracked weighted error ε_m per stage (0.5 when unobserved)."""
        total = self.lambda_correct + self.lambda_wrong
        with np.errstate(invalid="ignore", divide="ignore"):
            eps = np.where(total > 0, self.lambda_wrong / np.where(total > 0, total, 1), 0.5)
        return eps

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """Weighted-vote positive score, normalized to [0, 1]."""
        X = check_array_2d(X, "X")
        eps = np.clip(self.stage_errors(), 1e-6, 1 - 1e-6)
        weights = np.log((1.0 - eps) / eps)
        weights = np.maximum(weights, 0.0)  # stages worse than chance abstain
        if weights.sum() <= 0:
            return np.full(X.shape[0], 0.5)
        votes = np.array(
            [
                (est.predict_score(X) >= 0.5).astype(np.float64)
                for est in self.estimators
            ]
        )  # (M, n)
        return (weights[:, None] * votes).sum(axis=0) / weights.sum()

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at a weighted-vote threshold."""
        return (self.predict_score(X) >= threshold).astype(np.int8)
