"""Month-scale drift processes — the root cause of model aging.

The paper (§1) attributes model aging to the shifting distribution of
cumulative SMART attributes as the fleet ages.  This module centralizes
every non-stationary knob of the simulator so the mechanisms are explicit
and individually testable:

* :func:`scare_rate_by_day` — healthy drives develop benign media events
  more often as they age, pushing a stale decision boundary toward false
  alarms (drives Figures 4/5's "No updating" FAR climb);
* :func:`load_cycle_rate_by_day` — workload policy drift of the
  load/unload rate (shifts Load Cycle Count, a Table-2 feature);
* :func:`recalibration_offset_by_day` — a vendor firmware update lands at
  a fixed month and shifts the normalization of the seek/read error
  attributes (an abrupt covariate shift);
* :func:`vintage_norm_offset` — drives of newer vintage report slightly
  different Norm baselines (population turnover shift).
"""

from __future__ import annotations

import numpy as np

from repro.smart.drive_model import DriftProfile

DAYS_PER_MONTH = 30


def month_of_day(days: np.ndarray) -> np.ndarray:
    """Calendar month index (0-based) of each day index."""
    return np.asarray(days) // DAYS_PER_MONTH


def scare_rate_by_day(
    drift: DriftProfile, days: np.ndarray, drive_age_days: np.ndarray
) -> np.ndarray:
    """Per-day probability of a benign scare event for a healthy drive.

    Grows geometrically with the *drive's* age (wear) — month-scale fleet
    aging then emerges from the fleet's age mix.
    """
    age_months = np.minimum(np.maximum(drive_age_days, 0) / DAYS_PER_MONTH, 1200.0)
    rate = drift.scare_rate_per_day * (1.0 + drift.scare_growth_per_month) ** age_months
    return np.minimum(rate, 0.25)  # sanity ceiling


def load_cycle_rate_by_day(
    drift: DriftProfile, days: np.ndarray, base_rate: float = 8.0
) -> np.ndarray:
    """Expected load/unload cycles per day; drifts with calendar month."""
    months = month_of_day(days)
    return base_rate * (1.0 + drift.load_cycle_drift_per_month) ** months


def recalibration_offset_by_day(drift: DriftProfile, days: np.ndarray) -> np.ndarray:
    """Additive Norm offset for rate-type attributes from the firmware update.

    Ramps linearly from 0 at ``recalibration_month`` to the full shift
    ``recalibration_ramp_months`` later (staged fleet-wide rollout).
    """
    days = np.asarray(days)
    if drift.recalibration_month is None:
        return np.zeros(days.shape, dtype=np.float64)
    start = drift.recalibration_month * DAYS_PER_MONTH
    ramp_days = max(drift.recalibration_ramp_months, 1) * DAYS_PER_MONTH
    fraction = np.clip((days - start) / ramp_days, 0.0, 1.0)
    return fraction * drift.recalibration_shift


def vintage_norm_offset(vintage_month: int) -> float:
    """Small Norm baseline offset for newer-vintage drives.

    Vintage -1 (the day-0 fleet) is the reference; each year of vintage
    shifts rate-type Norm baselines by about +2 points.
    """
    return 2.0 * max(vintage_month, 0) / 12.0
