"""Pre-failure degradation and benign-anomaly processes.

All functions here are vectorized over one drive's observation days and
return per-day *increments* or *levels* for SMART error counters.  The
generator composes them into the 24-attribute snapshot table.

Two kinds of events exist:

* **Degradation ramps** (failing, predictable drives only): inside the
  degradation window, error events arrive as an inhomogeneous Poisson
  process whose rate accelerates exponentially toward the failure day —
  ``rate(p) = base * exp(acceleration * p)`` with ``p`` the window
  progress in [0, 1].
* **Benign scares** (any drive): rare, small media events that persist
  but never progress.  They are the hard negatives that make the paper's
  FDR/FAR trade-off (Tables 3 & 4) non-trivial, and their frequency
  grows with drive age (one of the drift mechanisms of §4.5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.signal import lfilter

from repro.smart.drive_model import DegradationProfile


def window_progress(
    days: np.ndarray, start_day: Optional[int], fail_day: Optional[int]
) -> np.ndarray:
    """Degradation-window progress p ∈ [0, 1] per day; 0 outside the window.

    ``p`` ramps linearly from 0 at ``start_day`` to 1 at ``fail_day``.
    """
    p = np.zeros(days.shape, dtype=np.float64)
    if start_day is None or fail_day is None or fail_day <= start_day:
        return p
    inside = (days >= start_day) & (days <= fail_day)
    p[inside] = (days[inside] - start_day) / float(fail_day - start_day)
    return p


def accelerating_event_increments(
    rng: np.random.Generator,
    progress: np.ndarray,
    base_rate: float,
    acceleration: float,
) -> np.ndarray:
    """Daily Poisson event counts with exponentially accelerating rate.

    Days with ``progress == 0`` (outside the window) produce no events.
    """
    if base_rate < 0:
        raise ValueError(f"base_rate must be >= 0, got {base_rate}")
    rate = np.where(progress > 0, base_rate * np.exp(acceleration * progress), 0.0)
    return rng.poisson(rate).astype(np.float64)


def scare_event_increments(
    rng: np.random.Generator,
    n_days: int,
    daily_rate: np.ndarray,
    magnitude: float,
    *,
    tail_prob: float = 0.08,
    tail_scale: float = 12.0,
) -> np.ndarray:
    """Benign scare events: Bernoulli(day rate) occurrences of size ~Poisson.

    A fraction ``tail_prob`` of events is heavy-tailed (×~``tail_scale``):
    healthy drives occasionally remap dozens of sectors and live on.
    These are the hard negatives — without them, any error count cleanly
    separates failing from healthy drives and the paper's FDR/FAR
    trade-off (Tables 3/4) degenerates.

    Returns per-day sector increments; almost all days are zero.
    """
    if daily_rate.shape != (n_days,):
        raise ValueError("daily_rate must have one entry per day")
    if not 0.0 <= tail_prob <= 1.0:
        raise ValueError(f"tail_prob must be in [0, 1], got {tail_prob}")
    hits = rng.uniform(size=n_days) < daily_rate
    increments = np.zeros(n_days, dtype=np.float64)
    n_hits = int(hits.sum())
    if n_hits:
        sizes = 1.0 + rng.poisson(magnitude, size=n_hits)
        heavy = rng.uniform(size=n_hits) < tail_prob
        sizes = np.where(
            heavy, sizes * rng.uniform(0.5 * tail_scale, 2.0 * tail_scale, size=n_hits), sizes
        )
        increments[hits] = sizes
    return increments


def decaying_level(increments: np.ndarray, retention: float) -> np.ndarray:
    """Current-value counter: new events pile up, then drain geometrically.

    Models Current Pending Sector Count, where pending sectors are later
    either reallocated or cleared:  ``level[t] = retention * level[t-1] +
    increments[t]``.  Implemented with :func:`scipy.signal.lfilter` so the
    recursion stays vectorized.
    """
    if not 0.0 <= retention < 1.0:
        raise ValueError(f"retention must be in [0, 1), got {retention}")
    if increments.size == 0:
        return increments.astype(np.float64)
    return lfilter([1.0], [1.0, -retention], increments.astype(np.float64))


def derived_event_increments(
    rng: np.random.Generator, source_increments: np.ndarray, probability: float
) -> np.ndarray:
    """Thin a parent event stream: each parent event spawns a child w.p. p.

    Used to correlate counters (e.g. uncorrectable sectors are a random
    subset of pending-sector events), which matters for feature-selection
    experiments — correlated features should be found redundant.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    counts = np.maximum(source_increments, 0.0).astype(np.int64)
    out = np.zeros(counts.shape, dtype=np.float64)
    nz = counts > 0
    if nz.any():
        out[nz] = rng.binomial(counts[nz], probability)
    return out


def degradation_rates(profile: DegradationProfile) -> dict:
    """Base event rates per counter, keyed by SMART attribute id."""
    return {
        5: profile.realloc_rate,
        183: profile.bad_block_rate,
        184: profile.end_to_end_rate,
        187: profile.uncorrectable_rate,
        189: profile.high_fly_rate,
        197: profile.pending_rate,
        199: profile.crc_rate,
    }
