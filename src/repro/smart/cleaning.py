"""Field-data cleaning and validation.

The public Backblaze archive is not pristine: drives skip reporting
days, attributes appear and disappear with firmware versions, and some
raw fields carry sentinel garbage.  The synthetic generator never
produces such data — but `read_backblaze_csv` + the real archive will,
and every model in this library rejects NaN/inf inputs by design.

:func:`clean_dataset` makes a dataset model-ready (per-drive forward
fill, then global fallback, plus physical-range clipping);
:func:`validate_dataset` reports integrity problems without mutating
anything, so users can decide what to do about them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.smart.attributes import ALL_ATTRIBUTES, feature_index
from repro.smart.dataset import SmartDataset


@dataclass(frozen=True)
class ValidationIssue:
    """One integrity problem found in a dataset."""

    kind: str
    serial: int  # -1 for dataset-wide issues
    detail: str


def validate_dataset(
    dataset: SmartDataset, *, max_drives_checked: int = 500
) -> List[ValidationIssue]:
    """Report integrity problems; never mutates the dataset.

    Checks: non-finite feature values; duplicate (serial, day) rows;
    failed drives whose failure flag is missing; Norm columns outside
    the 1-byte [0, 255] range; cumulative counters that go backwards.
    Per-drive checks are capped at *max_drives_checked* drives (the
    dataset-wide checks always run in full).
    """
    issues: List[ValidationIssue] = []

    n_bad = int(np.sum(~np.isfinite(dataset.X)))
    if n_bad:
        issues.append(
            ValidationIssue("non_finite", -1, f"{n_bad} non-finite feature values")
        )

    pairs = dataset.serials.astype(np.int64) * 10**7 + dataset.days
    n_dup = pairs.size - np.unique(pairs).size
    if n_dup:
        issues.append(
            ValidationIssue("duplicate_rows", -1, f"{n_dup} duplicate (serial, day) rows")
        )

    flagged = set(dataset.serials[dataset.failure_flags].tolist())
    for d in dataset.drives:
        if d.failed and d.serial not in flagged:
            issues.append(
                ValidationIssue(
                    "missing_failure_flag", d.serial,
                    f"drive failed on day {d.fail_day} but no row is flagged",
                )
            )

    norm_cols = [feature_index(a.id, "norm") for a in ALL_ATTRIBUTES]
    with np.errstate(invalid="ignore"):
        norms = dataset.X[:, norm_cols]
        out_of_range = int(np.sum((norms < 0) | (norms > 255)))
    if out_of_range:
        issues.append(
            ValidationIssue(
                "norm_out_of_range", -1,
                f"{out_of_range} Norm values outside [0, 255]",
            )
        )

    cumulative_cols = [
        feature_index(a.id, "raw") for a in ALL_ATTRIBUTES if a.cumulative
    ]
    for d in dataset.drives[:max_drives_checked]:
        rows = dataset.rows_for_serial(d.serial)
        if rows.size < 2:
            continue
        vals = dataset.X[rows][:, cumulative_cols]
        finite = np.isfinite(vals).all(axis=0)
        if not finite.any():
            continue
        drops = np.diff(vals[:, finite], axis=0) < -1e-3
        if drops.any():
            issues.append(
                ValidationIssue(
                    "cumulative_decrease", d.serial,
                    f"{int(drops.sum())} backward step(s) in cumulative counters",
                )
            )
    return issues


def clean_dataset(dataset: SmartDataset) -> SmartDataset:
    """Return a model-ready copy of *dataset*.

    * non-finite values are forward-filled within each drive's day-ordered
      rows, then back-filled, then replaced by the column median (0 when
      the whole column is missing);
    * Norm columns are clipped into [0, 255];
    * raw error counters are floored at 0.

    The original dataset is untouched.
    """
    X = dataset.X.astype(np.float32).copy()  # repro: noqa RPR202 — SmartDataset.X is float32 by schema (Backblaze payload width)

    if not np.isfinite(X).all():
        # per-drive forward/backward fill, vectorized per drive
        for d in dataset.drives:
            rows = dataset.rows_for_serial(d.serial)
            block = X[rows]
            bad = ~np.isfinite(block)
            if not bad.any():
                continue
            idx = np.arange(block.shape[0])[:, None]
            # forward fill: index of the last finite row at or before i
            last_good = np.where(bad, -1, idx)
            last_good = np.maximum.accumulate(last_good, axis=0)
            fillable = last_good >= 0
            cols = np.broadcast_to(
                np.arange(block.shape[1]), block.shape
            )
            block = np.where(
                fillable, block[np.maximum(last_good, 0), cols], block
            )
            # backward fill what the forward pass could not reach
            bad = ~np.isfinite(block)
            if bad.any():
                nxt_good = np.where(bad, block.shape[0], idx)
                nxt_good = np.minimum.accumulate(nxt_good[::-1], axis=0)[::-1]
                fillable = nxt_good < block.shape[0]
                block = np.where(
                    fillable,
                    block[np.minimum(nxt_good, block.shape[0] - 1), cols],
                    block,
                )
            X[rows] = block
        # global fallback: column medians of the finite entries
        still_bad = ~np.isfinite(X)
        if still_bad.any():
            medians = np.zeros(X.shape[1], dtype=np.float32)
            for j in np.flatnonzero(still_bad.any(axis=0)):
                col = X[:, j]
                finite = np.isfinite(col)
                medians[j] = np.median(col[finite]) if finite.any() else 0.0
            X = np.where(still_bad, medians[None, :], X)

    norm_cols = [feature_index(a.id, "norm") for a in ALL_ATTRIBUTES]
    X[:, norm_cols] = np.clip(X[:, norm_cols], 0.0, 255.0)
    error_raw_cols = [
        feature_index(a.id, "raw") for a in ALL_ATTRIBUTES if a.error_counter
    ]
    X[:, error_raw_cols] = np.maximum(X[:, error_raw_cols], 0.0)

    return SmartDataset(
        spec=dataset.spec,
        drives=list(dataset.drives),
        serials=dataset.serials.copy(),
        days=dataset.days.copy(),
        X=X,
        failure_flags=dataset.failure_flags.copy(),
    )
