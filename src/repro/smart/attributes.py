"""SMART attribute catalogue.

Each monitored drive reports 24 SMART attributes; every attribute carries
a vendor-normalized 1-byte value (*Norm*) and a 6-byte raw counter
(*Raw*), giving 48 candidate features (§4.2 of the paper).  The paper's
Table 2 selects 19 of them (9 Norms + 10 Raws); :data:`SELECTED_FEATURES`
reproduces that table, including the per-attribute contribution rank.

Feature-vector convention used throughout the library: column order is
``[attr_0_norm, attr_0_raw, attr_1_norm, attr_1_raw, ...]`` with
attributes sorted by SMART ID, i.e. column ``2*i`` is the Norm and
``2*i + 1`` the Raw of :data:`ALL_ATTRIBUTES`\\ ``[i]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class SmartAttribute:
    """Static description of one SMART attribute.

    Parameters
    ----------
    id:
        The SMART attribute ID (the ``#`` column of the paper's Table 2).
    name:
        Canonical attribute name.
    cumulative:
        True for counters that only ever grow over a drive's life
        (Power-On Hours, Reallocated Sectors Count, ...).  The paper
        identifies these as the strong failure indicators whose shifting
        distribution drives model aging.
    error_counter:
        True for attributes that count error events (zero on a pristine
        drive) as opposed to workload/usage meters.
    """

    id: int
    name: str
    cumulative: bool
    error_counter: bool


#: The 24 attributes reported by the simulated Seagate-like drives.  The 13
#: attributes of the paper's Table 2 are all present; the remainder are the
#: usual workload/environment attributes Backblaze drives of this era report
#: (they carry little failure signal and exist so feature selection has
#: something to reject).
ALL_ATTRIBUTES: Tuple[SmartAttribute, ...] = (
    SmartAttribute(1, "Read Error Rate", False, True),
    SmartAttribute(3, "Spin-Up Time", False, False),
    SmartAttribute(4, "Start/Stop Count", True, False),
    SmartAttribute(5, "Reallocated Sectors Count", True, True),
    SmartAttribute(7, "Seek Error Rate", False, True),
    SmartAttribute(9, "Power-On Hours", True, False),
    SmartAttribute(10, "Spin Retry Count", True, True),
    SmartAttribute(12, "Power Cycle Count", True, False),
    SmartAttribute(183, "Runtime Bad Block", True, True),
    SmartAttribute(184, "End-to-End Error", True, True),
    SmartAttribute(187, "Reported Uncorrectable Errors", True, True),
    SmartAttribute(188, "Command Timeout", True, True),
    SmartAttribute(189, "High Fly Writes", True, True),
    SmartAttribute(190, "Airflow Temperature", False, False),
    SmartAttribute(192, "Power-off Retract Count", True, False),
    SmartAttribute(193, "Load Cycle Count", True, False),
    SmartAttribute(194, "Temperature", False, False),
    SmartAttribute(195, "Hardware ECC Recovered", False, True),
    SmartAttribute(197, "Current Pending Sector Count", False, True),
    SmartAttribute(198, "Uncorrectable Sector Count", True, True),
    SmartAttribute(199, "UltraDMA CRC Error Count", True, True),
    SmartAttribute(240, "Head Flying Hours", True, False),
    SmartAttribute(241, "Total LBAs Written", True, False),
    SmartAttribute(242, "Total LBAs Read", True, False),
)

NUM_ATTRIBUTES: int = len(ALL_ATTRIBUTES)
NUM_CANDIDATE_FEATURES: int = 2 * NUM_ATTRIBUTES

ATTRIBUTE_BY_ID: Dict[int, SmartAttribute] = {a.id: a for a in ALL_ATTRIBUTES}

_ID_TO_POS: Dict[int, int] = {a.id: i for i, a in enumerate(ALL_ATTRIBUTES)}

#: Table 2 of the paper: (smart_id, kind, rank).  ``kind`` is "norm" or
#: "raw"; ``rank`` is the attribute-level contribution rank (1 = strongest).
SELECTED_FEATURES: Tuple[Tuple[int, str, int], ...] = (
    (187, "norm", 1),
    (187, "raw", 1),
    (197, "norm", 2),
    (197, "raw", 2),
    (5, "norm", 3),
    (5, "raw", 3),
    (184, "norm", 4),
    (184, "raw", 4),
    (9, "raw", 5),
    (193, "norm", 6),
    (193, "raw", 6),
    (7, "norm", 7),
    (183, "raw", 8),
    (198, "norm", 9),
    (198, "raw", 9),
    (189, "norm", 10),
    (12, "raw", 11),
    (199, "raw", 12),
    (1, "norm", 13),
)


def feature_index(smart_id: int, kind: str) -> int:
    """Column index of a (smart_id, kind) feature in the 48-wide layout."""
    if smart_id not in _ID_TO_POS:
        raise KeyError(f"unknown SMART attribute id {smart_id}")
    if kind not in ("norm", "raw"):
        raise ValueError(f"kind must be 'norm' or 'raw', got {kind!r}")
    return 2 * _ID_TO_POS[smart_id] + (0 if kind == "norm" else 1)


def feature_name(smart_id: int, kind: str) -> str:
    """Backblaze-style column name, e.g. ``smart_5_raw``."""
    if kind not in ("norm", "raw"):
        raise ValueError(f"kind must be 'norm' or 'raw', got {kind!r}")
    suffix = "normalized" if kind == "norm" else "raw"
    return f"smart_{smart_id}_{suffix}"


def candidate_feature_names() -> List[str]:
    """Names of all 48 candidate features, in column order."""
    names: List[str] = []
    for attr in ALL_ATTRIBUTES:
        names.append(feature_name(attr.id, "norm"))
        names.append(feature_name(attr.id, "raw"))
    return names


def selected_feature_indices(
    selection: Sequence[Tuple[int, str, int]] = SELECTED_FEATURES,
) -> List[int]:
    """Column indices (48-wide layout) of a Table-2-style selection."""
    return [feature_index(sid, kind) for sid, kind, _rank in selection]


def selected_feature_names(
    selection: Sequence[Tuple[int, str, int]] = SELECTED_FEATURES,
) -> List[str]:
    """Backblaze-style names of a Table-2-style selection."""
    return [feature_name(sid, kind) for sid, kind, _rank in selection]
