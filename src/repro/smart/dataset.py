"""The SMART snapshot table and its drive-level views.

:class:`SmartDataset` is the single data currency of the library: a flat,
columnar table of daily snapshots (one row per drive-day) plus the fleet's
lifecycle metadata.  Everything downstream — feature selection, the
labeling protocol, monthly evaluation — works on row masks over this
table, so no per-drive Python object ever holds samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.smart.attributes import NUM_CANDIDATE_FEATURES
from repro.smart.drive_model import DriveModelSpec
from repro.smart.population import DriveLifecycle

DAYS_PER_MONTH = 30


@dataclass
class SmartDataset:
    """Columnar daily-snapshot table for one drive model.

    Attributes
    ----------
    spec:
        The drive-model specification the data was generated from.
    drives:
        Lifecycle records for every drive appearing in the table.
    serials, days:
        Per-row drive serial and calendar day (int64).
    X:
        ``(n_rows, 48)`` float32 candidate-feature matrix in the layout of
        :mod:`repro.smart.attributes` (Norm/Raw interleaved by SMART id).
    failure_flags:
        Per-row bool; True exactly on a failed drive's final snapshot
        (the Backblaze ``failure`` column).
    """

    spec: DriveModelSpec
    drives: List[DriveLifecycle]
    serials: np.ndarray
    days: np.ndarray
    X: np.ndarray
    failure_flags: np.ndarray
    _row_index: Optional[Dict[int, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        n = self.serials.shape[0]
        if not (self.days.shape[0] == n == self.X.shape[0] == self.failure_flags.shape[0]):
            raise ValueError("column lengths disagree")
        if self.X.ndim != 2 or self.X.shape[1] != NUM_CANDIDATE_FEATURES:
            raise ValueError(
                f"X must be (n, {NUM_CANDIDATE_FEATURES}), got {self.X.shape}"
            )

    # ------------------------------------------------------------------ sizes
    @property
    def n_rows(self) -> int:
        """Number of drive-day snapshot rows."""
        return int(self.serials.shape[0])

    @property
    def n_drives(self) -> int:
        """Number of drives with lifecycle records."""
        return len(self.drives)

    @property
    def n_failed_drives(self) -> int:
        """Drives that failed within the observation window."""
        return sum(1 for d in self.drives if d.failed)

    @property
    def n_good_drives(self) -> int:
        """Drives that survived the observation window."""
        return self.n_drives - self.n_failed_drives

    @property
    def duration_months(self) -> int:
        """Observation-window length in 30-day months."""
        return self.spec.duration_months

    # --------------------------------------------------------------- indexing
    @property
    def months(self) -> np.ndarray:
        """Calendar month index (0-based) of every row."""
        return self.days // DAYS_PER_MONTH

    def rows_for_serial(self, serial: int) -> np.ndarray:
        """Row indices belonging to one drive, in day order."""
        if self._row_index is None:
            order = np.argsort(self.serials, kind="stable")
            sorted_serials = self.serials[order]
            boundaries = np.flatnonzero(np.diff(sorted_serials)) + 1
            groups = np.split(order, boundaries)
            self._row_index = {int(self.serials[g[0]]): g for g in groups}
        try:
            rows = self._row_index[int(serial)]
        except KeyError:
            raise KeyError(f"serial {serial} has no rows in this dataset") from None
        return rows[np.argsort(self.days[rows], kind="stable")]

    def fail_day_by_serial(self) -> Dict[int, Optional[int]]:
        """Map serial → fail day (None for good drives)."""
        return {d.serial: d.fail_day for d in self.drives}

    @property
    def failed_serials(self) -> np.ndarray:
        """Sorted serials of drives that failed in the window."""
        return np.array(sorted(d.serial for d in self.drives if d.failed), dtype=np.int64)

    @property
    def good_serials(self) -> np.ndarray:
        """Sorted serials of drives that survived the window."""
        return np.array(
            sorted(d.serial for d in self.drives if not d.failed), dtype=np.int64
        )

    def days_to_failure(self) -> np.ndarray:
        """Per-row days until the drive's failure; +inf for good drives.

        Zero on the failure-day snapshot.  This is the quantity the
        labeling protocol thresholds at 7 days.
        """
        fail_by_serial = self.fail_day_by_serial()
        max_serial = int(self.serials.max()) if self.n_rows else -1
        lut = np.full(max_serial + 1, np.inf)
        for serial, fail_day in fail_by_serial.items():
            if fail_day is not None and serial <= max_serial:
                lut[serial] = fail_day
        return lut[self.serials] - self.days

    # ---------------------------------------------------------------- subsets
    def subset_rows(self, mask_or_indices: np.ndarray) -> "SmartDataset":
        """New dataset restricted to some rows (drive metadata is kept whole)."""
        idx = np.asarray(mask_or_indices)
        if idx.dtype == bool:
            if idx.shape[0] != self.n_rows:
                raise ValueError("boolean mask length must equal n_rows")
        present = None  # computed only if someone asks; drives list stays intact
        return SmartDataset(
            spec=self.spec,
            drives=self.drives,
            serials=self.serials[idx],
            days=self.days[idx],
            X=self.X[idx],
            failure_flags=self.failure_flags[idx],
        )

    def subset_serials(self, serials: Sequence[int]) -> "SmartDataset":
        """New dataset containing only the given drives' rows and lifecycles."""
        wanted = np.asarray(sorted(set(int(s) for s in serials)), dtype=np.int64)
        mask = np.isin(self.serials, wanted)
        kept_drives = [d for d in self.drives if d.serial in set(wanted.tolist())]
        out = self.subset_rows(mask)
        out.drives = kept_drives
        return out

    # ---------------------------------------------------------------- summary
    def summary(self) -> dict:
        """Table-1-style overview of the dataset."""
        return {
            "DiskModel": self.spec.name,
            "Capacity(TB)": self.spec.capacity_tb,
            "#GoodDisks": self.n_good_drives,
            "#FailedDisks": self.n_failed_drives,
            "Duration": f"{self.spec.duration_months} months",
            "#Snapshots": self.n_rows,
        }
