"""Backblaze-schema CSV interchange.

The public Backblaze data ships as daily CSVs with columns::

    date, serial_number, model, capacity_bytes, failure,
    smart_1_normalized, smart_1_raw, smart_3_normalized, smart_3_raw, ...

This module writes/reads that exact schema so (a) the synthetic datasets
can be inspected with standard tooling, and (b) a user with the real
Backblaze archive can load it into :class:`~repro.smart.SmartDataset` and
run every experiment in this repo against field data.
"""

from __future__ import annotations

import csv
import datetime as _dt
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.smart.attributes import ALL_ATTRIBUTES, feature_index
from repro.smart.dataset import SmartDataset
from repro.smart.drive_model import DriveModelSpec
from repro.smart.population import DriveLifecycle

#: Backblaze's first published snapshot date; day 0 maps here.
EPOCH = _dt.date(2013, 4, 10)


def _header() -> List[str]:
    cols = ["date", "serial_number", "model", "capacity_bytes", "failure"]
    for attr in ALL_ATTRIBUTES:
        cols.append(f"smart_{attr.id}_normalized")
        cols.append(f"smart_{attr.id}_raw")
    return cols


def _serial_string(serial: int) -> str:
    return f"SYN{serial:08d}"


def write_backblaze_csv(dataset: SmartDataset, path: Union[str, Path]) -> int:
    """Write *dataset* as one Backblaze-schema CSV; returns rows written."""
    path = Path(path)
    order = np.lexsort((dataset.serials, dataset.days))  # day-major like Backblaze
    capacity_bytes = dataset.spec.capacity_tb * 10**12
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_header())
        for i in order:
            day = int(dataset.days[i])
            row: List[object] = [
                (EPOCH + _dt.timedelta(days=day)).isoformat(),
                _serial_string(int(dataset.serials[i])),
                dataset.spec.name,
                capacity_bytes,
                int(dataset.failure_flags[i]),
            ]
            for attr in ALL_ATTRIBUTES:
                norm = dataset.X[i, feature_index(attr.id, "norm")]
                raw = dataset.X[i, feature_index(attr.id, "raw")]
                row.append(f"{float(norm):.0f}")
                row.append(f"{float(raw):.0f}")
            writer.writerow(row)
    return int(order.size)


def read_backblaze_csv(
    path: Union[str, Path],
    spec: Optional[DriveModelSpec] = None,
    *,
    strict: bool = False,
) -> SmartDataset:
    """Load a Backblaze-schema CSV into a :class:`SmartDataset`.

    Lifecycle metadata is reconstructed from the data itself: a drive's
    window is [first row day, last row day]; a drive failed iff any row has
    ``failure == 1``.  Degradation-window fields (which only the simulator
    knows) are left unset — nothing downstream requires them.

    Unknown ``smart_*`` columns are ignored; missing ones read as 0 (the
    real archive has sparse columns for some models).

    Real archives also contain outright malformed rows — non-numeric
    SMART fields, unparseable dates, missing serials.  By default such
    rows are *skipped* and tallied in one summary
    :class:`RuntimeWarning`; with ``strict=True`` the first malformed
    row raises a :class:`ValueError` naming its line number.
    """
    path = Path(path)
    serial_map: Dict[str, int] = {}
    serials: List[int] = []
    days: List[int] = []
    failure: List[bool] = []
    rows_X: List[List[float]] = []
    model_name = spec.name if spec is not None else "unknown"
    capacity_tb = spec.capacity_tb if spec is not None else 0
    n_skipped = 0
    first_skip = ""

    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ValueError(f"{path} is empty")
        # line 1 is the header, so data rows start at line 2
        for line_no, rec in enumerate(reader, start=2):
            try:
                serial_str = rec.get("serial_number")
                if not serial_str:
                    raise ValueError("missing serial_number")
                date_str = rec.get("date")
                if not date_str:
                    raise ValueError("missing date")
                day = (_dt.date.fromisoformat(date_str) - EPOCH).days
                failed = rec.get("failure") in ("1", "1.0", "True")
                x = [0.0] * (2 * len(ALL_ATTRIBUTES))
                for attr in ALL_ATTRIBUTES:
                    norm_v = rec.get(f"smart_{attr.id}_normalized") or 0.0
                    raw_v = rec.get(f"smart_{attr.id}_raw") or 0.0
                    x[feature_index(attr.id, "norm")] = float(norm_v)
                    x[feature_index(attr.id, "raw")] = float(raw_v)
                cap_tb = 0
                if spec is None:
                    cap = rec.get("capacity_bytes")
                    if cap:
                        cap_tb = int(round(float(cap) / 10**12))
            except (KeyError, TypeError, ValueError) as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: malformed row: {exc}"
                    ) from None
                n_skipped += 1
                if not first_skip:
                    first_skip = f"line {line_no}: {exc}"
                continue
            # only mutate shared state once the whole row parsed, so a
            # malformed row can never leak a serial with zero samples
            serial = serial_map.setdefault(serial_str, len(serial_map))
            serials.append(serial)
            days.append(day)
            failure.append(failed)
            if spec is None:
                model_name = rec.get("model", model_name) or model_name
                capacity_tb = max(capacity_tb, cap_tb)
            rows_X.append(x)

    if n_skipped:
        warnings.warn(
            f"{path}: skipped {n_skipped} malformed row(s) "
            f"(first: {first_skip}); pass strict=True to raise instead",
            RuntimeWarning,
            stacklevel=2,
        )

    if not serials:
        raise ValueError(f"{path} contains no data rows")

    serials_arr = np.asarray(serials, dtype=np.int64)
    days_arr = np.asarray(days, dtype=np.int64)
    fail_arr = np.asarray(failure, dtype=bool)
    X = np.asarray(rows_X, dtype=np.float32)

    duration_months = max(1, int(days_arr.max()) // 30 + 1)
    if spec is None:
        spec = DriveModelSpec(
            name=model_name,
            capacity_tb=max(capacity_tb, 1),
            initial_fleet=len(serial_map),
            duration_months=duration_months,
            monthly_deployment=0,
            weibull_shape=1.5,
            weibull_scale_days=3000.0,
            unpredictable_fraction=0.0,
        )

    drives: List[DriveLifecycle] = []
    for serial in range(len(serial_map)):
        mask = serials_arr == serial
        d_days = days_arr[mask]
        failed_rows = fail_arr[mask]
        fail_day = int(d_days[failed_rows].min()) if failed_rows.any() else None
        deploy = int(d_days.min())
        drives.append(
            DriveLifecycle(
                serial=serial,
                deploy_day=deploy,
                initial_age_days=0,
                last_observed_day=int(d_days.max()),
                fail_day=fail_day,
                predictable=fail_day is not None,
                degradation_start_day=None,
                vintage_month=max(deploy // 30, -1),
            )
        )

    return SmartDataset(
        spec=spec,
        drives=drives,
        serials=serials_arr,
        days=days_arr,
        X=X,
        failure_flags=fail_arr,
    )
