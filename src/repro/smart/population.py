"""Drive-fleet lifecycle simulation.

Produces, for one drive model, the set of :class:`DriveLifecycle` records
the telemetry generator then renders into daily SMART snapshots.  The
fleet is non-stationary by construction — staggered deployments, failures,
and replacements with newer-vintage drives — because fleet turnover is one
of the drift mechanisms behind the paper's model-aging effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.smart.drive_model import DriveModelSpec
from repro.utils.rng import SeedLike, as_generator

DAYS_PER_MONTH = 30


@dataclass(frozen=True)
class DriveLifecycle:
    """One drive's life within the observation window.

    Day indices are relative to the dataset epoch (day 0); the window is
    ``[deploy_day, last_observed_day]`` inclusive.  ``fail_day`` is the day
    the drive dies (its last snapshot), or ``None`` for drives that survive
    the window (censored — "good disks" in the paper's terminology).
    """

    serial: int
    deploy_day: int
    initial_age_days: int
    last_observed_day: int
    fail_day: Optional[int]
    #: does the failure carry a SMART precursor signature?
    predictable: bool
    #: first day of the degradation window (predictable failures only)
    degradation_start_day: Optional[int]
    #: calendar month (0-based) the drive was deployed; drives deployed
    #: before day 0 have vintage -1
    vintage_month: int

    @property
    def failed(self) -> bool:
        """True when the drive died within the observation window."""
        return self.fail_day is not None

    @property
    def n_days_observed(self) -> int:
        """Number of daily snapshots this drive contributes."""
        return self.last_observed_day - self.deploy_day + 1

    def age_on_day(self, day: int) -> int:
        """Drive age in days on calendar *day*."""
        return self.initial_age_days + (day - self.deploy_day)


def _conditional_weibull_lifetime(
    rng: np.random.Generator, shape: float, scale: float, age_days: float
) -> float:
    """Sample a total lifetime T | T > age_days from Weibull(shape, scale).

    Inverse-CDF of the conditional survival function:
    ``T = scale * ((age/scale)^k - ln U)^(1/k)``.
    """
    u = rng.uniform(1e-12, 1.0)
    return scale * ((age_days / scale) ** shape - np.log(u)) ** (1.0 / shape)


def _make_drive(
    rng: np.random.Generator,
    spec: DriveModelSpec,
    serial: int,
    deploy_day: int,
    initial_age: int,
    vintage_month: int,
) -> DriveLifecycle:
    horizon = spec.duration_days - 1
    lifetime = _conditional_weibull_lifetime(
        rng, spec.weibull_shape, spec.weibull_scale_days, float(initial_age)
    )
    remaining = int(np.ceil(lifetime - initial_age))
    fail_day: Optional[int] = None
    predictable = False
    degradation_start: Optional[int] = None
    candidate_fail = deploy_day + max(remaining, 1)
    if candidate_fail <= horizon:
        fail_day = candidate_fail
        predictable = rng.uniform() >= spec.unpredictable_fraction
        if predictable:
            window = int(
                rng.integers(spec.degradation.min_days, spec.degradation.max_days + 1)
            )
            degradation_start = max(deploy_day, fail_day - window)
    last_observed = fail_day if fail_day is not None else horizon
    return DriveLifecycle(
        serial=serial,
        deploy_day=deploy_day,
        initial_age_days=initial_age,
        last_observed_day=last_observed,
        fail_day=fail_day,
        predictable=predictable,
        degradation_start_day=degradation_start,
        vintage_month=vintage_month,
    )


def simulate_population(
    spec: DriveModelSpec,
    seed: SeedLike = None,
    *,
    replace_failures: bool = True,
) -> List[DriveLifecycle]:
    """Simulate one drive model's fleet over the observation window.

    Returns lifecycles sorted by serial number.  The initial fleet deploys
    on day 0 with exponentially distributed prior service age; every month
    ``spec.monthly_deployment`` brand-new drives join; failed drives are
    replaced (with a ~one-week logistics delay) when *replace_failures* is
    set, so the fleet size stays roughly constant and its vintage mix
    shifts over time.
    """
    rng = as_generator(seed)
    drives: List[DriveLifecycle] = []
    serial = 0
    horizon = spec.duration_days - 1

    pending_deploys: List[tuple] = []  # (deploy_day, initial_age, vintage)
    for _ in range(spec.initial_fleet):
        age = int(rng.exponential(spec.initial_age_mean_days))
        pending_deploys.append((0, age, -1))
    for month in range(1, spec.duration_months):
        for _ in range(spec.monthly_deployment):
            day = int(rng.integers(month * DAYS_PER_MONTH, (month + 1) * DAYS_PER_MONTH))
            if day <= horizon:
                pending_deploys.append((day, 0, month))

    while pending_deploys:
        deploy_day, age, vintage = pending_deploys.pop()
        drive = _make_drive(rng, spec, serial, deploy_day, age, vintage)
        serial += 1
        drives.append(drive)
        if replace_failures and drive.failed:
            redeploy = drive.fail_day + int(rng.integers(3, 11))
            if redeploy <= horizon - 7:  # too late to matter otherwise
                pending_deploys.append(
                    (redeploy, 0, redeploy // DAYS_PER_MONTH)
                )

    drives.sort(key=lambda d: d.serial)
    return drives


def population_summary(drives: List[DriveLifecycle]) -> dict:
    """Aggregate counts used by the Table-1 bench and sanity tests."""
    n_failed = sum(1 for d in drives if d.failed)
    n_good = len(drives) - n_failed
    n_unpredictable = sum(1 for d in drives if d.failed and not d.predictable)
    total_days = sum(d.n_days_observed for d in drives)
    return {
        "n_drives": len(drives),
        "n_good": n_good,
        "n_failed": n_failed,
        "n_unpredictable_failures": n_unpredictable,
        "total_drive_days": total_days,
    }
