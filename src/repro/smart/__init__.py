"""Synthetic SMART field-data substrate.

The paper evaluates on the public Backblaze dataset (daily SMART
snapshots of >100k drives).  That data cannot be shipped or downloaded
here, so this subpackage implements the closest synthetic equivalent: a
drive-population simulator that emits Backblaze-schema daily snapshots
with

* per-drive lifecycles (staggered deployment, Weibull failure hazard,
  replacement with newer "vintage" drives),
* pre-failure degradation signatures on the paper's Table-2 attributes,
* a fraction of *unpredictable* failures with no SMART signature
  (the paper's footnote 1),
* benign "scare" events on healthy drives (the FDR/FAR trade-off is
  meaningless without hard negatives), and
* month-scale distribution drift — the root cause of the model-aging
  effect the paper studies.

See DESIGN.md §3 for the full substitution argument.
"""

from repro.smart.attributes import (
    ALL_ATTRIBUTES,
    ATTRIBUTE_BY_ID,
    NUM_ATTRIBUTES,
    SELECTED_FEATURES,
    SmartAttribute,
    candidate_feature_names,
    feature_index,
    selected_feature_indices,
)
from repro.smart.cleaning import ValidationIssue, clean_dataset, validate_dataset
from repro.smart.dataset import SmartDataset
from repro.smart.drive_model import (
    DriveModelSpec,
    STA,
    STB,
    scaled_spec,
)
from repro.smart.generator import generate_dataset
from repro.smart.io import read_backblaze_csv, write_backblaze_csv
from repro.smart.population import DriveLifecycle, simulate_population

__all__ = [
    "SmartAttribute",
    "ALL_ATTRIBUTES",
    "ATTRIBUTE_BY_ID",
    "NUM_ATTRIBUTES",
    "SELECTED_FEATURES",
    "candidate_feature_names",
    "feature_index",
    "selected_feature_indices",
    "DriveModelSpec",
    "STA",
    "STB",
    "scaled_spec",
    "DriveLifecycle",
    "simulate_population",
    "generate_dataset",
    "SmartDataset",
    "read_backblaze_csv",
    "write_backblaze_csv",
    "clean_dataset",
    "validate_dataset",
    "ValidationIssue",
]
