"""Drive-model specifications for the synthetic field-data simulator.

Two presets mirror the paper's Table 1 datasets:

* :data:`STA` — an ST4000DM000-like 4 TB model: large, fairly reliable
  fleet observed for 39 months.
* :data:`STB` — an ST3000DM001-like 3 TB model: smaller fleet with a
  much higher failure rate observed for 20 months (the infamous 3 TB
  Seagate).  Its failures are also harder to predict (more mechanical
  failures without a SMART signature), which is why the paper's FDR on
  STB plateaus around 85% instead of 98%.

Fleet sizes here are scaled down ~40x from Backblaze so experiments run
on one laptop core; hazards are scaled *up* so the absolute number of
failures stays statistically useful.  The *sample-level* class imbalance
the paper fights (hundreds-to-thousands of negatives per positive) is
preserved, because positives are only the last 7 daily samples of each
failed drive.  Use :func:`scaled_spec` to shrink further for unit tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class DegradationProfile:
    """Shape of the pre-failure SMART signature.

    A failing drive enters a degradation window of random length
    ``Uniform[min_days, max_days]`` before its failure day.  During the
    window, error counters accrete with accelerating intensity: the rate
    at window-relative progress ``p`` in [0, 1] is
    ``base_rate * exp(acceleration * p)``.
    """

    min_days: int = 21
    max_days: int = 60
    #: expected error events/day at the start of the window, keyed by counter
    realloc_rate: float = 1.0
    pending_rate: float = 1.3
    uncorrectable_rate: float = 0.4
    end_to_end_rate: float = 0.05
    bad_block_rate: float = 0.12
    high_fly_rate: float = 0.10
    crc_rate: float = 0.04
    #: exponential acceleration over the window (signal strength knob)
    acceleration: float = 2.2
    #: multiplier applied to read/seek error raw rates during the window
    error_rate_inflation: float = 6.0
    #: probability each error counter participates in a given drive's
    #: signature — failures are heterogeneous, so a model must see many
    #: of them before it generalizes (drives the convergence curves of
    #: Figures 2/3)
    signature_activation_prob: float = 0.55
    #: log-normal sigma of each active counter's per-drive magnitude
    signature_magnitude_sigma: float = 0.6


@dataclass(frozen=True)
class DriftProfile:
    """Month-scale non-stationarity of the healthy population.

    These processes are what makes an offline model trained on the first
    few months go stale (§1, §4.5 of the paper):

    * the fleet ages, so cumulative attributes (Power-On Hours, Load
      Cycle Count, Total LBAs) keep growing past the training range;
    * healthy drives develop more benign media events per day as they
      age (``scare_growth_per_month``), so a stale decision boundary
      fires ever more false alarms;
    * at ``recalibration_month`` the vendor ships a firmware update that
      shifts normalization of the seek/read error attributes
      (``recalibration_shift`` Norm points).
    """

    #: probability/day that a *young* healthy drive starts a benign scare
    scare_rate_per_day: float = 3.0e-4
    #: multiplicative growth of the scare rate per month of fleet age
    scare_growth_per_month: float = 0.03
    #: expected size of a benign scare (sectors)
    scare_magnitude: float = 4.0
    #: month at which the firmware recalibration starts rolling out
    #: (None = never)
    recalibration_month: int = 10
    #: additive shift of seek/read error Norm values once fully rolled out
    recalibration_shift: float = -2.5
    #: months over which the rollout ramps from 0 to the full shift
    #: (fleet-wide firmware updates are staged, not a step)
    recalibration_ramp_months: int = 4
    #: per-month multiplicative drift of the load-cycle accrual rate
    load_cycle_drift_per_month: float = 0.02


@dataclass(frozen=True)
class DriveModelSpec:
    """Everything the simulator needs to emit one drive model's telemetry."""

    name: str
    capacity_tb: int
    #: initial fleet size at day 0
    initial_fleet: int
    #: observation window, in months (1 month = 30 days)
    duration_months: int
    #: new drives deployed per month (fleet growth + replacement)
    monthly_deployment: int
    #: Weibull hazard shape (k > 1 ⇒ wear-out dominated)
    weibull_shape: float
    #: Weibull scale in days (smaller ⇒ drives die sooner)
    weibull_scale_days: float
    #: fraction of failures with *no* SMART precursor (footnote 1)
    unpredictable_fraction: float
    #: mean initial age (days) of the day-0 fleet (drives already in service)
    initial_age_mean_days: float = 240.0
    degradation: DegradationProfile = DegradationProfile()
    drift: DriftProfile = DriftProfile()

    @property
    def duration_days(self) -> int:
        """Observation-window length in days (30 per month)."""
        return self.duration_months * 30

    def __post_init__(self) -> None:
        if self.initial_fleet <= 0:
            raise ValueError("initial_fleet must be > 0")
        if self.duration_months <= 0:
            raise ValueError("duration_months must be > 0")
        if self.weibull_shape <= 0 or self.weibull_scale_days <= 0:
            raise ValueError("Weibull parameters must be > 0")
        if not 0.0 <= self.unpredictable_fraction <= 1.0:
            raise ValueError("unpredictable_fraction must be in [0, 1]")


#: ST4000DM000-like model ("STA" in the paper): 39 months, moderate hazard,
#: mostly predictable failures.
STA = DriveModelSpec(
    name="ST4000DM000",
    capacity_tb=4,
    initial_fleet=800,
    duration_months=39,
    monthly_deployment=6,
    weibull_shape=1.6,
    weibull_scale_days=2300.0,
    unpredictable_fraction=0.05,
)

#: ST3000DM001-like model ("STB"): 20 months, much higher hazard, a larger
#: share of signature-less mechanical failures, weaker degradation signal.
STB = DriveModelSpec(
    name="ST3000DM001",
    capacity_tb=3,
    initial_fleet=450,
    duration_months=20,
    monthly_deployment=4,
    weibull_shape=1.4,
    weibull_scale_days=1050.0,
    unpredictable_fraction=0.13,
    degradation=DegradationProfile(
        min_days=14,
        max_days=45,
        realloc_rate=0.55,
        pending_rate=0.7,
        uncorrectable_rate=0.18,
        acceleration=1.8,
        error_rate_inflation=4.0,
    ),
    drift=DriftProfile(
        scare_rate_per_day=4.5e-4,
        scare_growth_per_month=0.055,
        recalibration_month=8,
    ),
)


def scaled_spec(
    spec: DriveModelSpec,
    *,
    fleet_scale: float = 1.0,
    duration_months: int | None = None,
    name: str | None = None,
) -> DriveModelSpec:
    """Return a copy of *spec* with the fleet and/or window resized.

    Used by tests (tiny fleets) and by benches that trade fidelity for
    runtime.  Scaling never drops below one drive / one month.
    """
    if fleet_scale <= 0:
        raise ValueError("fleet_scale must be > 0")
    changes = {
        "initial_fleet": max(1, int(round(spec.initial_fleet * fleet_scale))),
        "monthly_deployment": max(
            0, int(round(spec.monthly_deployment * fleet_scale))
        ),
    }
    if duration_months is not None:
        if duration_months <= 0:
            raise ValueError("duration_months must be > 0")
        changes["duration_months"] = duration_months
    if name is not None:
        changes["name"] = name
    return dataclasses.replace(spec, **changes)
