"""Daily SMART snapshot rendering.

Turns a simulated fleet (:mod:`repro.smart.population`) into the table of
daily snapshots the rest of the library consumes: one row per drive-day,
48 columns (Norm and Raw of the 24 attributes, see
:mod:`repro.smart.attributes` for the layout).

The rendering is vectorized *within* a drive (one pass of NumPy ops over
its observation days); the outer loop over drives is Python but touches
only hundreds-to-thousands of items.  All randomness flows from per-drive
child generators spawned off the caller's seed, so the dataset is fully
reproducible and independent of drive iteration order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.smart import degradation as deg
from repro.smart import drift as drf
from repro.smart.attributes import NUM_CANDIDATE_FEATURES, feature_index
from repro.smart.dataset import SmartDataset
from repro.smart.drive_model import DegradationProfile, DriveModelSpec
from repro.smart.population import DriveLifecycle, simulate_population
from repro.utils.rng import SeedLike, as_generator

DAYS_PER_MONTH = 30


def _count_norm(raw: np.ndarray, weight: float) -> np.ndarray:
    """Vendor-style normalization of an error counter: 100 → worse as it grows."""
    return np.clip(100.0 - weight * np.log1p(np.maximum(raw, 0.0)), 1.0, 100.0)


def _signature_mix(fail_day: Optional[int], duration_days: int) -> float:
    """Failure-mode mix shift over calendar time, in [0, 1].

    0 = early-window failure (reallocation-dominant signature), 1 = end of
    the observation window (pending-sector-dominant).  A stale model keyed
    to the early mix loses FDR on late failures (Figures 6/7).
    """
    if fail_day is None:
        return 0.0
    return min(max(fail_day / max(duration_days - 1, 1), 0.0), 1.0)


_SIGNATURE_COUNTERS = (5, 197, 187, 184, 183, 189, 199, "rate")
_STRONG_COUNTERS = (5, 197, 187)


def _signature_expression(
    rng: np.random.Generator, prof: DegradationProfile, *, active: bool
) -> Dict[str, float]:
    """Per-drive multipliers of each degradation channel.

    A channel participates with probability ``signature_activation_prob``
    and, when active, at a log-normal magnitude.  At least one *strong*
    channel (reallocated / pending / reported-uncorrectable) is always
    active, otherwise the drive would be de-facto unpredictable — that
    budget is governed by ``unpredictable_fraction``, not by this draw.
    The RNG is consumed identically for healthy drives (``active=False``
    yields all-zero multipliers) to keep per-drive streams aligned.
    """
    on = rng.uniform(size=len(_SIGNATURE_COUNTERS)) < prof.signature_activation_prob
    mags = rng.lognormal(0.0, prof.signature_magnitude_sigma, size=len(_SIGNATURE_COUNTERS))
    forced_strong = int(rng.integers(0, len(_STRONG_COUNTERS)))
    if not active:
        return {key: 0.0 for key in _SIGNATURE_COUNTERS}
    expr = {
        key: (mags[i] if on[i] else 0.0)
        for i, key in enumerate(_SIGNATURE_COUNTERS)
    }
    # a channel is expressed iff its activation flag drew true (lognormal
    # magnitudes are strictly positive), so test the flags, not the floats
    strong_active = any(
        on[i]
        for i, key in enumerate(_SIGNATURE_COUNTERS)
        if key in _STRONG_COUNTERS
    )
    if not strong_active:
        expr[_STRONG_COUNTERS[forced_strong]] = mags[forced_strong]
    return expr


def _render_drive(
    rng: np.random.Generator, spec: DriveModelSpec, drive: DriveLifecycle
) -> Tuple[np.ndarray, np.ndarray]:
    """Render one drive's full observation as (days, X[n_days, 48])."""
    n = drive.n_days_observed
    days = np.arange(drive.deploy_day, drive.last_observed_day + 1, dtype=np.int64)
    ages = days - drive.deploy_day + drive.initial_age_days
    prof = spec.degradation
    drift = spec.drift

    fail_day = drive.fail_day if drive.predictable else None
    progress = deg.window_progress(days, drive.degradation_start_day, fail_day)
    mix = _signature_mix(drive.fail_day, spec.duration_days)

    X = np.empty((n, NUM_CANDIDATE_FEATURES), dtype=np.float64)

    def put(sid: int, kind: str, values: np.ndarray) -> None:
        X[:, feature_index(sid, kind)] = values

    # --- benign scare events (healthy wear; rate grows with drive age) ----
    # A few drives are "lemons": chronically scarred but long-lived — the
    # hardest negatives a detector faces in the field.
    is_lemon = rng.uniform() < 0.06
    lemon_factor = 5.0 if is_lemon else 1.0
    scare_rate = drf.scare_rate_by_day(drift, days, ages) * lemon_factor
    # lemons also accrete media defects steadily (tens-to-hundreds of
    # remapped sectors over a lifetime) without ever accelerating — the
    # survivors that fool a model trained on too few negatives
    lemon_ramp = (
        rng.poisson(rng.uniform(0.03, 0.15), size=n).astype(np.float64)
        if is_lemon
        else np.zeros(n)
    )
    # realloc scares are heavy-tailed (healthy drives can remap dozens of
    # sectors and live on); pending/uncorrectable scares stay small, so the
    # 187/197 channels remain the clean discriminators the paper ranks top.
    scare_realloc = deg.scare_event_increments(
        rng, n, scare_rate, drift.scare_magnitude, tail_prob=0.05, tail_scale=8.0
    )
    scare_pending = deg.scare_event_increments(
        rng, n, scare_rate, drift.scare_magnitude, tail_prob=0.0
    )

    # --- degradation ramps (predictable failures only) ---------------------
    # Each failing drive expresses its own random subset of the error
    # counters, at its own magnitude: failure signatures are heterogeneous
    # in the field, and a predictor must see many failures before it
    # covers the signature space (the convergence effect of Figures 2/3).
    acc = prof.acceleration
    expression = _signature_expression(rng, prof, active=bool(progress.any()))
    realloc_ramp = deg.accelerating_event_increments(
        rng, progress, expression[5] * prof.realloc_rate * (1.0 - 0.5 * mix), acc
    )
    pending_ramp = deg.accelerating_event_increments(
        rng, progress, expression[197] * prof.pending_rate * (1.0 + 0.8 * mix), acc
    )
    uncorr_ramp = deg.accelerating_event_increments(
        rng, progress, expression[187] * prof.uncorrectable_rate * (1.0 - 0.3 * mix), acc
    )
    e2e_ramp = deg.accelerating_event_increments(
        rng, progress, expression[184] * prof.end_to_end_rate, acc
    )
    badblock_ramp = deg.accelerating_event_increments(
        rng, progress, expression[183] * prof.bad_block_rate, acc
    )
    highfly_ramp = deg.accelerating_event_increments(
        rng, progress, expression[189] * prof.high_fly_rate, acc
    )
    crc_ramp = deg.accelerating_event_increments(
        rng, progress, expression[199] * prof.crc_rate, acc
    )

    # --- SMART 5: Reallocated Sectors Count (cumulative) -------------------
    pending_events = pending_ramp + scare_pending
    reallocated_from_pending = deg.derived_event_increments(rng, pending_events, 0.45)
    realloc_raw = np.cumsum(
        realloc_ramp + scare_realloc + reallocated_from_pending + lemon_ramp
    )
    put(5, "raw", realloc_raw)
    put(5, "norm", _count_norm(realloc_raw, 8.0))

    # --- SMART 197: Current Pending Sector Count (current value) -----------
    pending_level = deg.decaying_level(pending_events, retention=0.90)
    put(197, "raw", pending_level)
    put(197, "norm", _count_norm(pending_level, 12.0))

    # --- SMART 198: Uncorrectable Sector Count (cumulative) ----------------
    uncorr_sectors = deg.derived_event_increments(rng, pending_events, 0.35)
    uncorr198_raw = np.cumsum(uncorr_sectors)
    put(198, "raw", uncorr198_raw)
    put(198, "norm", _count_norm(uncorr198_raw, 12.0))

    # --- SMART 187: Reported Uncorrectable Errors (cumulative) -------------
    background_187 = rng.poisson(1.0e-4, size=n)
    raw187 = np.cumsum(
        uncorr_ramp + background_187 + deg.derived_event_increments(rng, scare_pending, 0.30)
    )
    put(187, "raw", raw187)
    put(187, "norm", _count_norm(raw187, 15.0))

    # --- SMART 184 / 183 / 189 / 188: rarer error counters ------------------
    raw184 = np.cumsum(e2e_ramp)
    put(184, "raw", raw184)
    put(184, "norm", _count_norm(raw184, 25.0))

    raw183 = np.cumsum(badblock_ramp + rng.poisson(2.0e-4, size=n))
    put(183, "raw", raw183)
    put(183, "norm", _count_norm(raw183, 10.0))

    raw189 = np.cumsum(highfly_ramp + rng.poisson(3.0e-4, size=n))
    put(189, "raw", raw189)
    put(189, "norm", _count_norm(raw189, 6.0))

    timeout_rate = np.where(progress > 0, 2.5e-3, 5.0e-4)
    raw188 = np.cumsum(rng.poisson(timeout_rate))
    put(188, "raw", raw188)
    put(188, "norm", _count_norm(raw188, 8.0))

    # --- SMART 199: UltraDMA CRC errors (mostly cabling) -------------------
    cable_quality = rng.lognormal(mean=0.0, sigma=1.0)  # per-drive multiplier
    raw199 = np.cumsum(crc_ramp + rng.poisson(2.0e-4 * cable_quality, size=n))
    put(199, "raw", raw199)
    put(199, "norm", _count_norm(raw199, 8.0))

    # --- SMART 10: Spin Retry Count -----------------------------------------
    raw10 = np.zeros(n)
    if drive.predictable and drive.failed and rng.uniform() < 0.15:
        raw10 = np.cumsum(deg.accelerating_event_increments(rng, progress, 0.02, acc))
    put(10, "raw", raw10)
    put(10, "norm", np.clip(100.0 - 3.0 * raw10, 1.0, 100.0))

    # --- rate-type attributes: 1 (read), 7 (seek), 195 (ECC) ----------------
    recal = drf.recalibration_offset_by_day(drift, days)
    vintage = drf.vintage_norm_offset(drive.vintage_month)
    rate_expr = min(expression["rate"], 2.0)  # cap so norms stay in range
    inflation = 1.0 + (prof.error_rate_inflation - 1.0) * progress * rate_expr

    raw1 = np.exp(rng.normal(15.0, 1.2, size=n)) * inflation
    put(1, "raw", raw1)
    put(
        1,
        "norm",
        np.clip(
            83.0 + vintage + recal - 10.0 * progress * rate_expr + rng.normal(0.0, 1.5, size=n),
            1.0,
            100.0,
        ),
    )

    raw7 = np.exp(rng.normal(17.0, 0.9, size=n)) * inflation
    put(7, "raw", raw7)
    put(
        7,
        "norm",
        np.clip(
            87.0 + vintage + recal - 8.0 * progress * rate_expr + rng.normal(0.0, 1.2, size=n),
            1.0,
            100.0,
        ),
    )

    raw195 = np.exp(rng.normal(13.0, 1.0, size=n))
    put(195, "raw", raw195)
    put(195, "norm", np.clip(60.0 + rng.normal(0.0, 3.0, size=n), 1.0, 100.0))

    # --- usage meters --------------------------------------------------------
    poh_hours = ages * 24.0 + rng.uniform(0.0, 24.0, size=n)
    put(9, "raw", poh_hours)
    put(9, "norm", np.clip(100.0 - poh_hours / 720.0, 1.0, 100.0))

    # derived from the monotone age clock (not the jittered POH) so the
    # counter never runs backwards
    raw240 = ages * 24.0 * rng.uniform(0.93, 0.98) + rng.uniform(0.0, 24.0)
    put(240, "raw", np.maximum(raw240, 0.0))
    put(240, "norm", np.clip(100.0 - raw240 / 720.0, 1.0, 100.0))

    initial_cycles = rng.poisson(0.02 * max(drive.initial_age_days, 0))
    raw12 = initial_cycles + np.cumsum(rng.poisson(0.015, size=n))
    put(12, "raw", raw12)
    put(12, "norm", _count_norm(raw12, 4.0))

    raw4 = raw12 + np.cumsum(rng.poisson(0.01, size=n))
    put(4, "raw", raw4)
    put(4, "norm", _count_norm(raw4, 5.0))

    raw192 = np.floor(raw12 * rng.uniform(0.6, 0.9))
    put(192, "raw", raw192)
    put(192, "norm", _count_norm(raw192, 4.0))

    load_rate = drf.load_cycle_rate_by_day(drift, days)
    raw193 = drive.initial_age_days * 8.0 + np.cumsum(rng.poisson(load_rate))
    put(193, "raw", raw193)
    put(193, "norm", np.clip(100.0 - raw193 / 650.0, 1.0, 100.0))

    workload_write = rng.lognormal(mean=0.0, sigma=0.35) * 5.0e7
    raw241 = (ages + 1) * workload_write
    put(241, "raw", raw241)
    put(241, "norm", np.full(n, 100.0))

    raw242 = (ages + 1) * workload_write * rng.uniform(1.5, 3.0)
    put(242, "raw", raw242)
    put(242, "norm", np.full(n, 100.0))

    # --- environment ---------------------------------------------------------
    drive_temp_offset = rng.normal(0.0, 1.5)
    temp = (
        26.0
        + 4.0 * np.sin(2.0 * np.pi * (days + rng.uniform(0, 365)) / 365.0)
        + drive_temp_offset
        + 1.5 * progress
        + rng.normal(0.0, 0.8, size=n)
    )
    put(194, "raw", temp)
    put(194, "norm", np.clip(100.0 - temp, 1.0, 100.0))
    put(190, "raw", temp + rng.normal(0.0, 0.3, size=n))
    put(190, "norm", np.clip(100.0 - temp, 1.0, 100.0))

    raw3 = 420.0 + 0.002 * ages + 6.0 * progress + rng.normal(0.0, 12.0, size=n)
    put(3, "raw", raw3)
    put(3, "norm", np.clip(100.0 - raw3 / 50.0, 1.0, 100.0))

    return days, X


def generate_dataset(
    spec: DriveModelSpec,
    seed: SeedLike = None,
    *,
    sample_every_days: int = 1,
    replace_failures: bool = True,
    drives: Optional[List[DriveLifecycle]] = None,
) -> SmartDataset:
    """Generate a full synthetic field dataset for one drive model.

    Parameters
    ----------
    spec:
        Drive model specification (see :data:`repro.smart.STA` / ``STB``).
    seed:
        Seed / generator for full reproducibility.
    sample_every_days:
        Keep every k-th daily snapshot per drive (phase staggered by
        serial).  The failure-day snapshot is always kept so failed drives
        are never silently dropped.  Use >1 to shrink benches.
    replace_failures:
        Deploy replacement drives after failures (fleet turnover drift).
    drives:
        Pre-simulated lifecycles; when given, only rendering happens
        (used by tests that need a handcrafted population).
    """
    if sample_every_days < 1:
        raise ValueError(f"sample_every_days must be >= 1, got {sample_every_days}")
    rng = as_generator(seed)
    if drives is None:
        drives = simulate_population(
            spec, rng.spawn(1)[0], replace_failures=replace_failures
        )

    drive_rngs = rng.spawn(len(drives))
    all_serials: List[np.ndarray] = []
    all_days: List[np.ndarray] = []
    all_X: List[np.ndarray] = []
    all_fail_flags: List[np.ndarray] = []

    for drive, drng in zip(drives, drive_rngs):
        days, X = _render_drive(drng, spec, drive)
        if sample_every_days > 1:
            phase = drive.serial % sample_every_days
            keep = (np.arange(days.size) % sample_every_days) == phase
            keep[-1] = True  # always keep the final (possibly failure) day
            days, X = days[keep], X[keep]
        n = days.size
        all_serials.append(np.full(n, drive.serial, dtype=np.int64))
        all_days.append(days)
        fail = np.zeros(n, dtype=bool)
        if drive.failed:
            fail[-1] = days[-1] == drive.fail_day
        all_fail_flags.append(fail)
        all_X.append(X.astype(np.float32))  # repro: noqa RPR202 — SmartDataset.X is float32 by schema (Backblaze payload width)

    return SmartDataset(
        spec=spec,
        drives=list(drives),
        serials=np.concatenate(all_serials),
        days=np.concatenate(all_days).astype(np.int64),
        X=np.concatenate(all_X, axis=0),
        failure_flags=np.concatenate(all_fail_flags),
    )
