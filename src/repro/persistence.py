"""Model persistence: checkpoint and restore every model in the library.

A deployed Algorithm-2 monitor runs for months; being able to snapshot
it (and the offline baselines, the scaler, the feature selection) to a
single file is what makes restarts, migrations between hosts, and
A/B-ing model versions possible.

Format: one ``.npz`` archive per object.  All numeric state lives in
named arrays; structural metadata (class name, hyper-parameters, RNG
bit-generator state) lives in a JSON blob under the ``__meta__`` key.
Restores are *exact*: a restored online forest continues the stream
bit-for-bit identically to the original (RNG state included), which the
tests assert.

Public API::

    save_model(model, path)
    model = load_model(path)

    save_bundle(path, model=model, scaler=scaler, selection=selection)
    bundle = load_bundle(path)        # {"model": ..., "scaler": ..., ...}

A *bundle* packs several models into one archive — the trained model
plus the exact preprocessing (scaler, feature selection) that fed it,
which is what ``repro train`` writes so ``evaluate``/``monitor``/
``serve`` never re-fit a scaler on the data they are judging.
``load_model`` on a bundle transparently returns its ``"model"``
component, so old call sites keep working.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, Tuple, Union

import numpy as np

from repro.core.forest import OnlineRandomForest, TreeSlot
from repro.core.labeler import OnlineLabeler
from repro.core.node_stats import LeafStats
from repro.core.online_tree import OnlineDecisionTree
from repro.core.oobe import OOBETracker
from repro.core.predictor import OnlineDiskFailurePredictor
from repro.core.random_tests import RandomTestSet
from repro.features.scaling import MinMaxScaler
from repro.features.selection import FeatureSelection
from repro.offline.forest import RandomForestClassifier
from repro.offline.tree import DecisionTreeClassifier, FrozenTree

PathLike = Union[str, Path]

#: checkpoint payload halves: JSON-serializable metadata + named arrays
Meta = Dict[str, Any]
Arrays = Dict[str, Any]
SaveFn = Callable[[Any], Tuple[Meta, Arrays]]
LoadFn = Callable[[Meta, Arrays], Any]
IOFactory = Callable[[], Tuple[SaveFn, LoadFn]]

_SAVERS: Dict[type, SaveFn] = {}
_LOADERS: Dict[str, LoadFn] = {}


def _register(cls: type) -> Callable[[IOFactory], IOFactory]:
    def wrap(saver_loader: IOFactory) -> IOFactory:
        saver, loader = saver_loader()
        _SAVERS[cls] = saver
        _LOADERS[cls.__name__] = loader
        return saver_loader

    return wrap


def _rng_state(gen: np.random.Generator) -> dict:
    return gen.bit_generator.state


def _restore_rng(state: dict) -> np.random.Generator:
    gen = np.random.default_rng(0)
    gen.bit_generator.state = state
    return gen


# --------------------------------------------------------------------------
# public API
# --------------------------------------------------------------------------
def save_model(model: Any, path: PathLike) -> None:
    """Serialize *model* to a single ``.npz`` file.

    Supported: :class:`OnlineRandomForest`, :class:`RandomForestClassifier`,
    :class:`DecisionTreeClassifier`, :class:`MinMaxScaler`,
    :class:`FeatureSelection`.
    """
    saver = _SAVERS.get(type(model))
    if saver is None:
        raise TypeError(
            f"cannot serialize {type(model).__name__}; supported: "
            f"{sorted(c.__name__ for c in _SAVERS)}"
        )
    meta, arrays = saver(model)
    meta["__class__"] = type(model).__name__
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def load_model(path: PathLike) -> Any:
    """Restore a model saved by :func:`save_model`.

    Given a bundle (see :func:`save_bundle`), returns its ``"model"``
    component so legacy call sites read new checkpoints unchanged.
    """
    meta, arrays = _read_archive(path)
    if meta.get("__class__") == _BUNDLE_CLASS:
        bundle = _load_bundle_parts(meta, arrays)
        if "model" not in bundle:
            raise ValueError(
                f"{path} is a bundle without a 'model' component; "
                f"use load_bundle (components: {sorted(bundle)})"
            )
        return bundle["model"]
    return _load_one(meta, arrays, path)


def _read_archive(path: PathLike) -> Tuple[Meta, Arrays]:
    with np.load(Path(path), allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files}
    raw = arrays.pop("__meta__", None)
    if raw is None:
        raise ValueError(f"{path} is not a repro model checkpoint")
    meta = json.loads(bytes(raw.tobytes()).decode("utf-8"))
    return meta, arrays


def _load_one(meta: dict, arrays: dict, path: PathLike) -> Any:
    loader = _LOADERS.get(meta.get("__class__"))
    if loader is None:
        raise ValueError(f"unknown checkpoint class {meta.get('__class__')!r}")
    return loader(meta, arrays)


# --------------------------------------------------------------------------
# bundles: several models in one archive
# --------------------------------------------------------------------------
_BUNDLE_CLASS = "__bundle__"


def save_bundle(path: PathLike, **components: Any) -> None:
    """Serialize named *components* into one ``.npz`` archive.

    Every component must be a :func:`save_model`-supported type; use the
    conventional names ``model``, ``scaler``, ``selection`` so
    :func:`load_model` and the CLI find them.
    """
    if not components:
        raise ValueError("a bundle needs at least one component")
    metas: Dict[str, dict] = {}
    arrays: Dict[str, np.ndarray] = {}
    for name, component in components.items():
        if not name.isidentifier():
            raise ValueError(f"invalid bundle component name {name!r}")
        saver = _SAVERS.get(type(component))
        if saver is None:
            raise TypeError(
                f"cannot serialize component {name!r} of type "
                f"{type(component).__name__}; supported: "
                f"{sorted(c.__name__ for c in _SAVERS)}"
            )
        comp_meta, comp_arrays = saver(component)
        comp_meta["__class__"] = type(component).__name__
        metas[name] = comp_meta
        for key, value in comp_arrays.items():
            arrays[f"{name}/{key}"] = value
    meta = {"__class__": _BUNDLE_CLASS, "components": metas}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def load_bundle(path: PathLike) -> Dict[str, Any]:
    """Restore a bundle as ``{name: model}``.

    A plain (non-bundle) checkpoint loads as ``{"model": object}``, so
    callers can treat every archive uniformly.
    """
    meta, arrays = _read_archive(path)
    if meta.get("__class__") != _BUNDLE_CLASS:
        return {"model": _load_one(meta, arrays, path)}
    return _load_bundle_parts(meta, arrays)


def _load_bundle_parts(meta: dict, arrays: dict) -> Dict[str, Any]:
    bundle: Dict[str, Any] = {}
    for name, comp_meta in meta["components"].items():
        prefix = f"{name}/"
        comp_arrays = {
            key[len(prefix):]: value
            for key, value in arrays.items()
            if key.startswith(prefix)
        }
        loader = _LOADERS.get(comp_meta.get("__class__"))
        if loader is None:
            raise ValueError(
                f"unknown bundle component class "
                f"{comp_meta.get('__class__')!r} for {name!r}"
            )
        bundle[name] = loader(comp_meta, comp_arrays)
    return bundle


# --------------------------------------------------------------------------
# FrozenTree (shared by the offline models)
# --------------------------------------------------------------------------
def _pack_frozen_tree(tree: FrozenTree, prefix: str, arrays: dict) -> None:
    arrays[f"{prefix}feature"] = tree.feature
    arrays[f"{prefix}threshold"] = tree.threshold
    arrays[f"{prefix}left"] = tree.left
    arrays[f"{prefix}right"] = tree.right
    arrays[f"{prefix}value"] = tree.value
    arrays[f"{prefix}n_samples"] = tree.n_samples
    arrays[f"{prefix}impurity"] = tree.impurity


def _unpack_frozen_tree(prefix: str, arrays: dict) -> FrozenTree:
    return FrozenTree(
        feature=arrays[f"{prefix}feature"],
        threshold=arrays[f"{prefix}threshold"],
        left=arrays[f"{prefix}left"],
        right=arrays[f"{prefix}right"],
        value=arrays[f"{prefix}value"],
        n_samples=arrays[f"{prefix}n_samples"],
        impurity=arrays[f"{prefix}impurity"],
    )


# --------------------------------------------------------------------------
# DecisionTreeClassifier
# --------------------------------------------------------------------------
@_register(DecisionTreeClassifier)
def _decision_tree_io() -> Tuple[SaveFn, LoadFn]:
    PARAMS = (
        "max_depth", "min_samples_split", "min_samples_leaf", "max_num_splits",
        "max_features", "min_impurity_decrease", "class_weight", "laplace",
    )

    def save(model: DecisionTreeClassifier) -> Tuple[Meta, Arrays]:
        if model.tree_ is None:
            raise ValueError("refusing to checkpoint an unfitted model")
        meta = {"params": {p: getattr(model, p) for p in PARAMS},
                "n_features": model.n_features_}
        arrays: dict = {"feature_importances": model.feature_importances_}
        _pack_frozen_tree(model.tree_, "tree/", arrays)
        return meta, arrays

    def load(meta: Meta, arrays: Arrays) -> Any:
        model = DecisionTreeClassifier(**meta["params"])
        model.tree_ = _unpack_frozen_tree("tree/", arrays)
        model.n_features_ = meta["n_features"]
        model.feature_importances_ = arrays["feature_importances"]
        return model

    return save, load


# --------------------------------------------------------------------------
# RandomForestClassifier
# --------------------------------------------------------------------------
@_register(RandomForestClassifier)
def _random_forest_io() -> Tuple[SaveFn, LoadFn]:
    PARAMS = (
        "n_trees", "max_depth", "min_samples_split", "min_samples_leaf",
        "max_features", "min_impurity_decrease", "class_weight", "vote",
        "bootstrap",
    )

    def save(model: RandomForestClassifier) -> Tuple[Meta, Arrays]:
        if not model.trees_:
            raise ValueError("refusing to checkpoint an unfitted model")
        meta = {
            "params": {p: getattr(model, p) for p in PARAMS},
            "n_features": model.n_features_,
            "tree_laplace": [t.laplace for t in model.trees_],
        }
        arrays: dict = {}
        for i, tree in enumerate(model.trees_):
            _pack_frozen_tree(tree.tree_, f"tree{i}/", arrays)
            arrays[f"tree{i}/feature_importances"] = tree.feature_importances_
        return meta, arrays

    def load(meta: Meta, arrays: Arrays) -> Any:
        model = RandomForestClassifier(**meta["params"])
        model.n_features_ = meta["n_features"]
        model.trees_ = []
        for i, laplace in enumerate(meta["tree_laplace"]):
            tree = DecisionTreeClassifier(laplace=laplace)
            tree.tree_ = _unpack_frozen_tree(f"tree{i}/", arrays)
            tree.n_features_ = meta["n_features"]
            tree.feature_importances_ = arrays[f"tree{i}/feature_importances"]
            model.trees_.append(tree)
        return model

    return save, load


# --------------------------------------------------------------------------
# MinMaxScaler / FeatureSelection
# --------------------------------------------------------------------------
@_register(MinMaxScaler)
def _scaler_io() -> Tuple[SaveFn, LoadFn]:
    def save(model: MinMaxScaler) -> Tuple[Meta, Arrays]:
        if model.min_ is None:
            raise ValueError("refusing to checkpoint an unfitted scaler")
        return {"clip": model.clip}, {"min": model.min_, "range": model.range_}

    def load(meta: Meta, arrays: Arrays) -> Any:
        scaler = MinMaxScaler(clip=meta["clip"])
        scaler.min_ = arrays["min"]
        scaler.range_ = arrays["range"]
        return scaler

    return save, load


@_register(FeatureSelection)
def _selection_io() -> Tuple[SaveFn, LoadFn]:
    def save(model: FeatureSelection) -> Tuple[Meta, Arrays]:
        meta = {"names": list(model.names)}
        arrays: dict = {"indices": np.asarray(model.indices)}
        if model.survived_ranksum is not None:
            arrays["survived_ranksum"] = np.asarray(model.survived_ranksum)
        if model.importances is not None:
            arrays["importances"] = np.asarray(model.importances)
        return meta, arrays

    def load(meta: Meta, arrays: Arrays) -> Any:
        return FeatureSelection(
            indices=arrays["indices"],
            names=meta["names"],
            survived_ranksum=arrays.get("survived_ranksum"),
            importances=arrays.get("importances"),
        )

    return save, load


# --------------------------------------------------------------------------
# OnlineRandomForest (full streaming state, RNG included)
# --------------------------------------------------------------------------
def _pack_online_tree(tree: OnlineDecisionTree, prefix: str, arrays: dict) -> dict:
    arrays[f"{prefix}feature"] = np.asarray(tree._feature, dtype=np.int64)
    arrays[f"{prefix}threshold"] = np.asarray(tree._threshold, dtype=np.float64)
    arrays[f"{prefix}left"] = np.asarray(tree._left, dtype=np.int64)
    arrays[f"{prefix}right"] = np.asarray(tree._right, dtype=np.int64)
    arrays[f"{prefix}depth"] = np.asarray(tree._depth, dtype=np.int64)
    arrays[f"{prefix}ranges"] = tree.feature_ranges
    arrays[f"{prefix}importance"] = tree.importance_
    leaf_meta = []
    for nid, stats in tree._leaf_stats.items():
        key = f"{prefix}leaf{nid}/"
        arrays[key + "class_counts"] = stats.class_counts
        has_tests = stats.tests is not None
        if has_tests:
            arrays[key + "test_features"] = stats.tests.features
            arrays[key + "test_thresholds"] = stats.tests.thresholds
            arrays[key + "test_stats"] = stats.test_stats
        leaf_meta.append(
            {
                "nid": nid,
                "n_seen": stats.n_seen,
                "n_updates": stats.n_updates,
                "has_tests": has_tests,
            }
        )
    return {
        "age": tree.age,
        "n_splits": tree.n_splits,
        "rng": _rng_state(tree._rng),
        "leaves": leaf_meta,
    }


def _unpack_online_tree(
    prefix: str, arrays: dict, tree_meta: dict, params: dict
) -> OnlineDecisionTree:
    tree = OnlineDecisionTree(
        params["n_features"],
        n_tests=params["n_tests"],
        min_parent_size=params["min_parent_size"],
        min_gain=params["min_gain"],
        max_depth=params["max_depth"],
        feature_ranges=arrays[f"{prefix}ranges"],
        split_check_interval=params["split_check_interval"],
        seed=0,
    )
    tree._feature = arrays[f"{prefix}feature"].astype(int).tolist()
    tree._threshold = arrays[f"{prefix}threshold"].tolist()
    tree._left = arrays[f"{prefix}left"].astype(int).tolist()
    tree._right = arrays[f"{prefix}right"].astype(int).tolist()
    tree._depth = arrays[f"{prefix}depth"].astype(int).tolist()
    tree.age = tree_meta["age"]
    tree.n_splits = tree_meta["n_splits"]
    if f"{prefix}importance" in arrays:
        tree.importance_ = arrays[f"{prefix}importance"].copy()
    tree._rng = _restore_rng(tree_meta["rng"])
    tree._leaf_stats = {}
    for leaf in tree_meta["leaves"]:
        nid = leaf["nid"]
        key = f"{prefix}leaf{nid}/"
        if leaf["has_tests"]:
            tests = RandomTestSet(
                features=arrays[key + "test_features"],
                thresholds=arrays[key + "test_thresholds"],
            )
            stats = LeafStats(tests)
            stats.test_stats = arrays[key + "test_stats"].copy()
        else:
            stats = LeafStats(None)
        stats.class_counts = arrays[key + "class_counts"].copy()
        stats.n_seen = leaf["n_seen"]
        # older checkpoints predate the update counter; approximating it
        # with the weighted count only shifts the split-check *phase*
        stats.n_updates = int(leaf.get("n_updates", leaf["n_seen"]))
        tree._leaf_stats[int(nid)] = stats
    # rebuild the compiled inference snapshot eagerly: a restored model
    # is about to serve, and compiling here keeps the first scored
    # request off the materialization cost (representation-only)
    tree.compile()
    return tree


@_register(OnlineRandomForest)
def _online_forest_io() -> Tuple[SaveFn, LoadFn]:
    PARAMS = (
        "n_features", "n_trees", "n_tests", "min_parent_size", "min_gain",
        "oobe_threshold", "age_threshold", "oobe_decay",
        "oobe_min_observations", "vote", "max_depth", "split_check_interval",
    )

    def save(model: OnlineRandomForest) -> Tuple[Meta, Arrays]:
        meta: dict = {
            "params": {p: getattr(model, p) for p in PARAMS},
            "lambda_pos": model.bagger.lambda_pos,
            "lambda_neg": model.bagger.lambda_neg,
            "bagger_rng": _rng_state(model.bagger.rng),
            "factory_rng": _rng_state(model._rng_factory._root),
            # per-slot Poisson/regrow streams: restoring them is what makes
            # stream continuation bit-identical after a reload
            "slot_rngs": [_rng_state(slot.rng) for slot in model.slots],
            "n_samples_seen": model.n_samples_seen,
            "n_replacements": model.n_replacements,
            "trackers": [
                {
                    "err_pos": tr.err_pos, "err_neg": tr.err_neg,
                    "n_pos": tr.n_pos, "n_neg": tr.n_neg,
                }
                for tr in model.trackers
            ],
        }
        arrays: dict = {}
        tree_metas = []
        for i, tree in enumerate(model.trees):
            tree_metas.append(_pack_online_tree(tree, f"t{i}/", arrays))
        meta["trees"] = tree_metas
        return meta, arrays

    def load(meta: Meta, arrays: Arrays) -> Any:
        params = meta["params"]
        model = OnlineRandomForest(
            params["n_features"],
            n_trees=params["n_trees"],
            n_tests=params["n_tests"],
            min_parent_size=params["min_parent_size"],
            min_gain=params["min_gain"],
            lambda_pos=meta["lambda_pos"],
            lambda_neg=meta["lambda_neg"],
            oobe_threshold=params["oobe_threshold"],
            age_threshold=params["age_threshold"],
            oobe_decay=params["oobe_decay"],
            oobe_min_observations=params["oobe_min_observations"],
            vote=params["vote"],
            max_depth=params["max_depth"],
            split_check_interval=params["split_check_interval"],
            seed=0,
        )
        model.bagger.rng = _restore_rng(meta["bagger_rng"])
        model._rng_factory._root = _restore_rng(meta["factory_rng"])
        model.n_samples_seen = meta["n_samples_seen"]
        model.n_replacements = meta["n_replacements"]
        tree_params = dict(params)
        trees = [
            _unpack_online_tree(f"t{i}/", arrays, tm, tree_params)
            for i, tm in enumerate(meta["trees"])
        ]
        trackers = []
        for tr_meta in meta["trackers"]:
            tracker = OOBETracker(
                decay=params["oobe_decay"],
                min_observations=params["oobe_min_observations"],
            )
            tracker.err_pos = tr_meta["err_pos"]
            tracker.err_neg = tr_meta["err_neg"]
            tracker.n_pos = tr_meta["n_pos"]
            tracker.n_neg = tr_meta["n_neg"]
            trackers.append(tracker)
        # checkpoints predating per-slot streams keep the fresh slot rngs
        slot_rngs = [_restore_rng(st) for st in meta.get("slot_rngs", [])]
        model.slots = [
            TreeSlot(
                tree=tree,
                tracker=tracker,
                rng=slot_rngs[i] if i < len(slot_rngs) else model.slots[i].rng,
            )
            for i, (tree, tracker) in enumerate(zip(trees, trackers))
        ]
        return model

    return save, load


# --------------------------------------------------------------------------
# OnlineDiskFailurePredictor (forest + labeling queues + counters)
# --------------------------------------------------------------------------
@_register(OnlineDiskFailurePredictor)
def _predictor_io() -> Tuple[SaveFn, LoadFn]:
    """Checkpoint the whole Algorithm-2 monitor, not just its forest.

    The labeling queues *are* model state: losing them on restart means
    a week of samples never gets labeled.  Disk ids and tags must be
    JSON-serializable (int/str) — the fleet replay uses serials and day
    indices, which are.  The recorded alarm history is deliberately not
    persisted (it is an unbounded notebook convenience, and the service
    layer keeps alarm state in the :class:`AlarmManager`); all counters
    are, so warmup gating continues exactly after a restore.
    """

    STATS = ("n_samples", "n_failures", "n_alarms",
             "n_updates_pos", "n_updates_neg")

    def save(model: OnlineDiskFailurePredictor) -> Tuple[Meta, Arrays]:
        forest_meta, arrays = _SAVERS[OnlineRandomForest](model.forest)
        arrays = {f"forest/{k}": v for k, v in arrays.items()}
        disks = []
        pending = []
        for disk_id, queue in model.labeler._queues.items():
            tags = [tag for _x, tag in queue]
            disks.append([disk_id, len(queue), tags])
            pending.extend(x for x, _tag in queue)
        try:
            roundtrip = json.loads(json.dumps(disks))
        except TypeError as exc:
            raise TypeError(
                "predictor checkpoints need JSON-serializable disk ids "
                f"and tags: {exc}"
            ) from None
        if roundtrip != disks:
            # e.g. tuple ids serialize fine but come back as lists,
            # silently changing disk identity on restore
            raise TypeError(
                "predictor checkpoints need JSON-round-trippable disk ids "
                "and tags; use int or str"
            )
        arrays["labeler/pending"] = (
            np.stack(pending)
            if pending
            else np.empty((0, model.forest.n_features))
        )
        meta = {
            "forest": forest_meta,
            "params": {
                "queue_length": model.labeler.queue_length,
                "alarm_threshold": model.alarm_threshold,
                "warmup_samples": model.warmup_samples,
                "record_alarms": model.record_alarms,
                "max_recorded_alarms": model.max_recorded_alarms,
            },
            "stats": {name: getattr(model.stats, name) for name in STATS},
            "disks": disks,
        }
        return meta, arrays

    def load(meta: Meta, arrays: Arrays) -> Any:
        prefix = "forest/"
        forest_arrays = {
            k[len(prefix):]: v for k, v in arrays.items() if k.startswith(prefix)
        }
        forest = _LOADERS["OnlineRandomForest"](meta["forest"], forest_arrays)
        model = OnlineDiskFailurePredictor(forest, **meta["params"])
        for name, value in meta["stats"].items():
            setattr(model.stats, name, value)
        pending = arrays["labeler/pending"]
        offset = 0
        for disk_id, n, tags in meta["disks"]:
            for j in range(n):
                model.labeler.observe(disk_id, pending[offset + j], tags[j])
            offset += n
        return model

    return save, load
