"""Tree-parallel execution substrate.

The paper notes (§3.2) that ORF training and testing parallelize trivially
because every tree is built and queried independently.  This subpackage
provides the executor abstraction the forest classes use: a serial
executor (default — deterministic, zero overhead), a thread-pool executor
(effective for the NumPy-heavy batch-prediction path, which releases the
GIL inside vectorized kernels), and a process-pool executor for
update-heavy workloads on multi-core hosts.
"""

from repro.parallel.chunking import (
    assemble_groups,
    chunk_indices,
    chunk_slices,
    interleave_round_robin,
    split_work,
)
from repro.parallel.pool import (
    ExecutorKind,
    default_worker_count,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    TreeExecutor,
    make_executor,
)

__all__ = [
    "ExecutorKind",
    "TreeExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "default_worker_count",
    "assemble_groups",
    "chunk_indices",
    "chunk_slices",
    "split_work",
    "interleave_round_robin",
]
