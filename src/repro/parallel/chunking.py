"""Work-partitioning helpers for data-parallel batch operations.

Batch prediction over a large snapshot table is split into contiguous row
chunks (contiguous = cache-friendly, per the optimization guide) that the
executor maps over workers.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")


def chunk_slices(n_items: int, n_chunks: int) -> List[slice]:
    """Split ``range(n_items)`` into at most *n_chunks* contiguous slices.

    Chunk sizes differ by at most one; empty slices are never returned.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be > 0, got {n_chunks}")
    if n_items == 0:
        return []
    n_chunks = min(n_chunks, n_items)
    base, extra = divmod(n_items, n_chunks)
    slices, start = [], 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def chunk_indices(n_items: int, chunk_size: int) -> List[np.ndarray]:
    """Split ``range(n_items)`` into index arrays of at most *chunk_size*."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
    return [
        np.arange(start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


def split_work(items: Sequence[T], n_workers: int) -> List[List[T]]:
    """Deal *items* into *n_workers* near-equal groups, preserving order.

    Used to assign trees to workers: group ``i`` gets the contiguous run of
    trees whose results are later concatenated back in order, so the output
    is identical to the serial path.
    """
    groups: List[List[T]] = []
    for sl in chunk_slices(len(items), n_workers):
        groups.append(list(items[sl]))
    return groups


def assemble_groups(groups: Sequence[Sequence[T]]) -> List[T]:
    """Inverse of :func:`split_work`: flatten worker groups in order.

    Executors return group results in submission order, so concatenating
    them restores the original item order exactly — forests rely on this
    to reinstall per-tree state after a mapped update.
    """
    out: List[T] = []
    for group in groups:
        out.extend(group)
    return out


def interleave_round_robin(items: Sequence[T], n_groups: int) -> List[List[T]]:
    """Deal *items* round-robin — balances heterogeneous per-item cost."""
    if n_groups <= 0:
        raise ValueError(f"n_groups must be > 0, got {n_groups}")
    groups: List[List[T]] = [[] for _ in range(min(n_groups, max(len(items), 1)))]
    for i, item in enumerate(items):
        groups[i % len(groups)].append(item)
    return [g for g in groups if g]
