"""Executor abstraction for per-tree parallelism.

Forests call :meth:`TreeExecutor.map` with a pure function and a list of
per-tree payloads.  The contract is strict so every executor is
interchangeable:

* results come back in submission order;
* exceptions propagate to the caller (first failure wins);
* the serial executor is the reference implementation — parallel
  executors must be observationally identical for pure functions.

Backend choice is workload-dependent: batch *prediction* spends its time
inside NumPy kernels that release the GIL, so the thread pool scales it
well; stream *updates* run Python-level per-sample logic that holds the
GIL, so only the process pool buys real speedup there — provided the
batch is large enough to amortize pickling the tree state both ways.
Mapped functions must be module-level (picklable) for the process
backend; see ``docs/operations.md`` §5 for selection guidance.
"""

from __future__ import annotations

import concurrent.futures
import enum
import os
from typing import Any, Callable, Iterable, List, Optional, Sequence


class ExecutorKind(str, enum.Enum):
    """Supported execution backends."""

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"


class TreeExecutor:
    """Interface: map a function over independent work items."""

    #: parallelism the executor offers; callers use it to size work groups
    n_workers: int = 1

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> List[Any]:
        """Apply *fn* to every item; results in submission order."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release worker resources (no-op for serial)."""

    def __enter__(self) -> "TreeExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class SerialExecutor(TreeExecutor):
    """Run everything inline; the deterministic reference backend."""

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> List[Any]:
        """Apply *fn* inline, item by item."""
        return [fn(item) for item in items]


class _PoolExecutor(TreeExecutor):
    """Shared implementation over concurrent.futures pools."""

    def __init__(self, pool: concurrent.futures.Executor) -> None:
        self._pool = pool

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> List[Any]:
        """Apply *fn* across the pool; first worker exception re-raises."""
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        """Wait for in-flight work and release the pool's workers."""
        self._pool.shutdown(wait=True)


class ThreadExecutor(_PoolExecutor):
    """Thread pool; effective when the mapped function is NumPy-bound."""

    def __init__(self, n_workers: Optional[int] = None) -> None:
        n = default_worker_count() if n_workers is None else n_workers
        if n <= 0:
            raise ValueError(f"n_workers must be > 0, got {n_workers}")
        self.n_workers = n
        super().__init__(concurrent.futures.ThreadPoolExecutor(max_workers=n))


class ProcessExecutor(_PoolExecutor):
    """Process pool; pays pickling cost, wins on CPU-bound pure-Python work."""

    def __init__(self, n_workers: Optional[int] = None) -> None:
        n = default_worker_count() if n_workers is None else n_workers
        if n <= 0:
            raise ValueError(f"n_workers must be > 0, got {n_workers}")
        self.n_workers = n
        super().__init__(concurrent.futures.ProcessPoolExecutor(max_workers=n))


def default_worker_count() -> int:
    """Worker count matched to the CPUs this process may actually use.

    Containers and batch schedulers routinely pin processes to a subset
    of the host's cores (cgroups cpusets, ``taskset``); sizing pools by
    ``os.cpu_count()`` then oversubscribes the allowed cores.  Prefer the
    scheduling affinity mask where the platform exposes it.
    """
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):  # non-Linux platforms
        return max(os.cpu_count() or 1, 1)


def make_executor(
    kind: "ExecutorKind | str" = ExecutorKind.SERIAL,
    n_workers: Optional[int] = None,
) -> TreeExecutor:
    """Build an executor from a kind name.

    ``make_executor("thread", 4)`` → a 4-worker thread pool.  Unknown kinds
    raise ``ValueError`` listing the valid names.
    """
    kind = ExecutorKind(kind)
    if kind is ExecutorKind.SERIAL:
        return SerialExecutor()
    if kind is ExecutorKind.THREAD:
        return ThreadExecutor(n_workers)
    if kind is ExecutorKind.PROCESS:
        return ProcessExecutor(n_workers)
    raise AssertionError(f"unhandled executor kind {kind}")  # pragma: no cover
