"""repro — reproduction of "Disk Failure Prediction in Data Centers via
Online Learning" (Xiao et al., ICPP 2018).

Public API tour
---------------
Core contribution (the paper's ORF):
    >>> from repro import OnlineRandomForest, OnlineDiskFailurePredictor

Synthetic Backblaze-like field data:
    >>> from repro import STA, STB, generate_dataset
    >>> ds = generate_dataset(STA, seed=0)

Feature pipeline and evaluation protocols:
    >>> from repro import FeatureSelection, run_monthly_comparison, run_longterm

Fleet service layer (sharded serving, alarms, checkpoints, metrics):
    >>> from repro import FleetConfig, FleetMonitor, AlarmManager

Process runtime and network front door:
    >>> from repro import FleetSupervisor, GatewayClient

See README.md for a quickstart, docs/api.md for the public-API
reference and its stability promise, and DESIGN.md for the system
inventory.
"""

from repro.core import (
    HealthLevels,
    OnlineDiskFailurePredictor,
    OnlineHealthAssessor,
    OnlineLabeler,
    OnlineRandomForest,
)
from repro.eval import (
    LongTermConfig,
    MonthlyConfig,
    fdr_at_far,
    run_longterm,
    run_monthly_comparison,
    split_disks,
)
from repro.features import FeatureSelection, MinMaxScaler, select_features
from repro.offline import (
    SVC,
    DecisionTreeClassifier,
    GradientBoostedTrees,
    RandomForestClassifier,
    downsample_negatives,
)
from repro.gateway import GatewayClient
from repro.ops import MigrationScheduler, adaptive_scrub_simulation
from repro.persistence import load_bundle, load_model, save_bundle, save_model
from repro.runtime import FleetSupervisor
from repro.service import (
    AlarmManager,
    CheckpointConfigMismatch,
    CheckpointRotator,
    DiskEvent,
    EmittedAlarm,
    FleetConfig,
    FleetMonitor,
    MetricsRegistry,
    fleet_events,
)
from repro.strategies import (
    AccumulationStrategy,
    FrozenStrategy,
    OnlineStrategy,
    ReplacingStrategy,
)
from repro.streaming import HoeffdingTreeClassifier
from repro.smart import (
    STA,
    STB,
    SmartDataset,
    generate_dataset,
    read_backblaze_csv,
    scaled_spec,
    write_backblaze_csv,
)

__version__ = "1.0.0"

__all__ = [
    "OnlineRandomForest",
    "OnlineDiskFailurePredictor",
    "OnlineLabeler",
    "OnlineHealthAssessor",
    "HealthLevels",
    "RandomForestClassifier",
    "DecisionTreeClassifier",
    "GradientBoostedTrees",
    "SVC",
    "MigrationScheduler",
    "adaptive_scrub_simulation",
    "save_model",
    "load_model",
    "save_bundle",
    "load_bundle",
    "FleetConfig",
    "FleetMonitor",
    "FleetSupervisor",
    "GatewayClient",
    "DiskEvent",
    "EmittedAlarm",
    "fleet_events",
    "AlarmManager",
    "CheckpointRotator",
    "CheckpointConfigMismatch",
    "MetricsRegistry",
    "HoeffdingTreeClassifier",
    "FrozenStrategy",
    "ReplacingStrategy",
    "AccumulationStrategy",
    "OnlineStrategy",
    "downsample_negatives",
    "FeatureSelection",
    "MinMaxScaler",
    "select_features",
    "STA",
    "STB",
    "SmartDataset",
    "generate_dataset",
    "scaled_spec",
    "read_backblaze_csv",
    "write_backblaze_csv",
    "MonthlyConfig",
    "LongTermConfig",
    "run_monthly_comparison",
    "run_longterm",
    "fdr_at_far",
    "split_disks",
    "__version__",
]
