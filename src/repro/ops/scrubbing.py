"""Risk-adaptive scrub scheduling — the Mahdisoltani et al. use case.

Latent sector errors sit undetected until a scrub (or an unlucky read)
finds them; while undetected they are a window of vulnerability — a
concurrent drive failure in the same group loses data.  Mahdisoltani et
al. (ATC'17) showed that steering scrub bandwidth toward drives a
predictor flags as risky sharply cuts the mean time to detection (MTTD)
of latent errors.  The paper reproduces that motivation in its related
work; this module makes it measurable.

:func:`adaptive_scrub_simulation` compares two policies under the same
total scrub budget:

* **uniform** — every drive is scrubbed on the same fixed cadence;
* **risk-weighted** — cadence scales with the predictor's risk score
  (:func:`proportional_scrub_allocation`), floored so healthy drives
  are never starved entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


def proportional_scrub_allocation(
    risk_scores: np.ndarray,
    total_scrubs_per_day: float,
    *,
    floor_fraction: float = 0.2,
) -> np.ndarray:
    """Per-drive scrub rates (scrubs/day) proportional to risk.

    A ``floor_fraction`` of the budget is spread uniformly so zero-risk
    drives still get scrubbed; the rest follows the scores.  The
    returned rates always sum to ``total_scrubs_per_day``.
    """
    check_positive(total_scrubs_per_day, "total_scrubs_per_day")
    if not 0.0 <= floor_fraction <= 1.0:
        raise ValueError("floor_fraction must be in [0, 1]")
    scores = np.asarray(risk_scores, dtype=np.float64)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError("risk_scores must be a non-empty 1-D array")
    if np.any(scores < 0):
        raise ValueError("risk_scores must be non-negative")
    n = scores.size
    uniform_part = floor_fraction * total_scrubs_per_day / n
    total_score = scores.sum()
    if total_score <= 0:
        return np.full(n, total_scrubs_per_day / n)
    weighted_part = (1.0 - floor_fraction) * total_scrubs_per_day * scores / total_score
    return uniform_part + weighted_part


@dataclass(frozen=True)
class ScrubOutcome:
    """Mean time-to-detection of latent errors under one policy."""

    policy: str
    n_errors: int
    n_detected: int
    mean_time_to_detection_days: float
    undetected_at_end: int


def _simulate_policy(
    rng: np.random.Generator,
    error_days: np.ndarray,
    error_drives: np.ndarray,
    scrub_rates: np.ndarray,
    horizon_days: int,
    policy: str,
) -> ScrubOutcome:
    """Detection delay per error ~ Exponential(drive's scrub rate)."""
    delays = np.full(error_days.shape[0], np.inf)
    rates = scrub_rates[error_drives]
    positive = rates > 0
    delays[positive] = rng.exponential(1.0 / rates[positive])
    detection_days = error_days + delays
    detected = detection_days <= horizon_days
    mttd = (
        float((detection_days[detected] - error_days[detected]).mean())
        if detected.any()
        else float("nan")
    )
    return ScrubOutcome(
        policy=policy,
        n_errors=int(error_days.shape[0]),
        n_detected=int(detected.sum()),
        mean_time_to_detection_days=mttd,
        undetected_at_end=int((~detected).sum()),
    )


def adaptive_scrub_simulation(
    risk_scores: np.ndarray,
    error_probability: np.ndarray,
    *,
    total_scrubs_per_day: float,
    horizon_days: int = 180,
    floor_fraction: float = 0.2,
    seed: SeedLike = None,
) -> Tuple[ScrubOutcome, ScrubOutcome]:
    """Compare uniform vs. risk-weighted scrubbing on one fleet snapshot.

    Parameters
    ----------
    risk_scores:
        Per-drive predictor scores (higher = likelier to develop errors).
    error_probability:
        Per-drive probability of developing a latent error within the
        horizon (ground truth; correlate it with the scores to model a
        *useful* predictor, decorrelate to model a useless one).
    total_scrubs_per_day:
        Fleet-wide scrub budget, identical for both policies.

    Returns
    -------
    (uniform_outcome, adaptive_outcome)
    """
    check_positive(horizon_days, "horizon_days")
    rng = as_generator(seed)
    scores = np.asarray(risk_scores, dtype=np.float64)
    probs = np.asarray(error_probability, dtype=np.float64)
    if scores.shape != probs.shape:
        raise ValueError("risk_scores and error_probability must align")
    if np.any((probs < 0) | (probs > 1)):
        raise ValueError("error_probability must be in [0, 1]")

    n = scores.size
    has_error = rng.uniform(size=n) < probs
    error_drives = np.flatnonzero(has_error)
    error_days = rng.uniform(0, horizon_days, size=error_drives.size)

    uniform_rates = np.full(n, total_scrubs_per_day / n)
    adaptive_rates = proportional_scrub_allocation(
        scores, total_scrubs_per_day, floor_fraction=floor_fraction
    )

    # one RNG child per policy so both see the same error population but
    # independent detection draws
    uni_rng, ada_rng = rng.spawn(2)
    uniform = _simulate_policy(
        uni_rng, error_days, error_drives, uniform_rates, horizon_days, "uniform"
    )
    adaptive = _simulate_policy(
        ada_rng, error_days, error_drives, adaptive_rates, horizon_days, "risk-weighted"
    )
    return uniform, adaptive
