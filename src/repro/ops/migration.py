"""Alarm-driven data migration under a bandwidth budget.

Algorithm 2's alarm says "immediate data migration is recommended" — but
a real data center migrates at finite bandwidth, so alarms enter a
priority queue and drives race their own death.  This simulator replays
a fleet's alarms and failures day by day and reports the quantities an
operator budgets for:

* how many failed drives were fully evacuated in time;
* terabyte-days of data at risk (alarm raised, migration unfinished);
* wasted migrations (healthy drives evacuated on false alarms).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MigrationOutcome:
    """Aggregate result of a migration replay."""

    n_failed_drives: int
    n_saved: int                 # fully evacuated before death
    n_partially_saved: int       # evacuation started but unfinished at death
    n_unwarned: int              # failed with no preceding alarm
    n_wasted_migrations: int     # healthy drives fully evacuated
    data_lost_tb: float          # un-evacuated capacity on dead drives
    data_at_risk_tb_days: float  # Σ (unevacuated TB × days since alarm)

    @property
    def save_rate(self) -> float:
        """Fraction of failed drives fully evacuated before death."""
        if self.n_failed_drives == 0:
            return float("nan")
        return self.n_saved / self.n_failed_drives


@dataclass(order=True)
class _Job:
    priority: float
    day_enqueued: int = field(compare=False)
    disk_id: Hashable = field(compare=False)
    remaining_tb: float = field(compare=False)


class MigrationScheduler:
    """Day-granularity migration replay.

    Parameters
    ----------
    capacity_tb:
        Capacity of each drive (what must be evacuated).
    bandwidth_tb_per_day:
        Total evacuation bandwidth across the fleet.
    on_drained:
        Optional ``(disk_id, day)`` callback invoked the day a drive's
        evacuation completes.  The service layer uses it to auto-suppress
        further alarms for the drive
        (``on_drained=lambda disk, day: alarm_manager.mark_drained(disk)``).
    """

    def __init__(
        self,
        *,
        capacity_tb: float,
        bandwidth_tb_per_day: float,
        on_drained: Optional[Callable[[Hashable, int], None]] = None,
    ) -> None:
        check_positive(capacity_tb, "capacity_tb")
        check_positive(bandwidth_tb_per_day, "bandwidth_tb_per_day")
        self.capacity_tb = float(capacity_tb)
        self.bandwidth = float(bandwidth_tb_per_day)
        self.on_drained = on_drained

    def replay(
        self,
        alarms: List[Tuple[int, Hashable, float]],
        failures: Dict[Hashable, int],
        *,
        horizon_day: Optional[int] = None,
    ) -> MigrationOutcome:
        """Replay (day, disk, score) alarms against a failure schedule.

        Alarms are processed in day order; each day the bandwidth budget
        drains the queue highest-score-first.  A drive dies at the *start*
        of its failure day (its remaining data is lost).  ``horizon_day``
        bounds the replay (defaults to the last event).
        """
        if not alarms and not failures:
            return MigrationOutcome(0, 0, 0, 0, 0, 0.0, 0.0)
        alarms = sorted(alarms, key=lambda a: a[0])
        event_days = [a[0] for a in alarms] + list(failures.values())
        last_day = max(event_days) if event_days else 0
        if horizon_day is not None:
            horizon = horizon_day
        else:
            # default: run past the last event long enough to drain every
            # possible evacuation at the configured bandwidth
            drain_days = int(
                np.ceil(len({a[1] for a in alarms}) * self.capacity_tb / self.bandwidth)
            )
            horizon = last_day + drain_days + 1

        queue: List[_Job] = []
        jobs: Dict[Hashable, _Job] = {}
        evacuated: Dict[Hashable, float] = {}
        at_risk_tb_days = 0.0
        alarm_idx = 0

        dead: set = set()
        saved: set = set()
        partially: set = set()

        for day in range(horizon + 1):
            # 1. deaths at the start of the day
            for disk, fail_day in failures.items():
                if fail_day == day:
                    dead.add(disk)
                    job = jobs.pop(disk, None)
                    if job is not None:
                        job.remaining_tb = -1.0  # tombstone in the heap
                        if evacuated.get(disk, 0.0) > 0:
                            partially.add(disk)

            # 2. new alarms
            while alarm_idx < len(alarms) and alarms[alarm_idx][0] == day:
                _, disk, score = alarms[alarm_idx]
                alarm_idx += 1
                if disk in dead or disk in jobs or evacuated.get(disk, 0.0) >= self.capacity_tb:
                    continue
                job = _Job(
                    priority=-float(score),
                    day_enqueued=day,
                    disk_id=disk,
                    remaining_tb=self.capacity_tb - evacuated.get(disk, 0.0),
                )
                jobs[disk] = job
                heapq.heappush(queue, job)

            # 3. drain bandwidth, highest score first
            budget = self.bandwidth
            while budget > 0 and queue:
                job = queue[0]
                if job.remaining_tb < 0:  # dead or completed tombstone
                    heapq.heappop(queue)
                    continue
                moved = min(budget, job.remaining_tb)
                job.remaining_tb -= moved
                budget -= moved
                evacuated[job.disk_id] = evacuated.get(job.disk_id, 0.0) + moved
                if job.remaining_tb <= 1e-12:
                    heapq.heappop(queue)
                    jobs.pop(job.disk_id, None)
                    if job.disk_id in failures:
                        saved.add(job.disk_id)
                    if self.on_drained is not None:
                        self.on_drained(job.disk_id, day)

            # 4. data-at-risk accounting for jobs still pending
            for job in jobs.values():
                if job.remaining_tb > 0:
                    at_risk_tb_days += job.remaining_tb

        failed_set = set(failures)
        unwarned = {
            d for d in failed_set
            if d not in saved and d not in partially and evacuated.get(d, 0.0) <= 0.0
        }
        data_lost = sum(
            max(self.capacity_tb - evacuated.get(d, 0.0), 0.0)
            for d in failed_set
            if d not in saved
        )
        wasted = sum(
            1
            for d, tb in evacuated.items()
            if d not in failed_set and tb >= self.capacity_tb - 1e-9
        )
        return MigrationOutcome(
            n_failed_drives=len(failed_set),
            n_saved=len(saved & failed_set),
            n_partially_saved=len(partially - saved),
            n_unwarned=len(unwarned),
            n_wasted_migrations=wasted,
            data_lost_tb=float(data_lost),
            data_at_risk_tb_days=float(at_risk_tb_days),
        )
