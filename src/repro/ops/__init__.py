"""Operational consumers of failure predictions.

The paper motivates prediction with what an operator *does* with it:
Algorithm 2 "recommends immediate data migration" on an alarm, and the
related work (Mahdisoltani et al., ATC'17) adjusts scrub rates from
error predictions to shrink the window of vulnerability.  This
subpackage implements both consumers so the repo's examples and benches
can measure prediction quality in operational units (data-at-risk,
time-to-detection) rather than only FDR/FAR.
"""

from repro.ops.migration import MigrationOutcome, MigrationScheduler
from repro.ops.scrubbing import (
    ScrubOutcome,
    adaptive_scrub_simulation,
    proportional_scrub_allocation,
)

__all__ = [
    "MigrationScheduler",
    "MigrationOutcome",
    "proportional_scrub_allocation",
    "adaptive_scrub_simulation",
    "ScrubOutcome",
]
