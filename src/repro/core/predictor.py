"""The streaming disk-failure monitor — Algorithm 2 of the paper.

:class:`OnlineDiskFailurePredictor` wires together the automatic online
labeler (Figure 1) and the Online Random Forest (Algorithm 1): every
incoming SMART sample first releases any newly labeled samples into the
forest (model-update phase), then is scored itself (prediction phase); a
score above the alarm threshold raises an :class:`Alarm` recommending
data migration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.forest import OnlineRandomForest
from repro.core.labeler import OnlineLabeler
from repro.obs.tracing import NULL_TRACER, NullTracer
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class Alarm:
    """A positive prediction for a live disk."""

    disk_id: Hashable
    score: float
    tag: object = None


@dataclass
class PredictorStats:
    """Lifetime counters of the monitor."""

    n_samples: int = 0
    n_failures: int = 0
    n_alarms: int = 0
    n_updates_pos: int = 0
    n_updates_neg: int = 0
    alarms: List[Alarm] = field(default_factory=list)


class OnlineDiskFailurePredictor:
    """End-to-end online monitor (Algorithm 2).

    Parameters
    ----------
    forest:
        The ORF model to evolve (constructed by the caller so all
        hyper-parameters stay in one place).
    queue_length:
        The labeler's per-disk window (7 daily samples in the paper).
    alarm_threshold:
        Score at/above which a live disk is declared risky.  Tune with
        :func:`repro.eval.threshold.threshold_for_far` to pin FAR.
    warmup_samples:
        Suppress alarms until the forest has absorbed this many labeled
        samples (a brand-new model's scores are noise).
    record_alarms:
        Keep every alarm on :attr:`stats` (handy in notebooks; switch off
        for unbounded streams).
    max_recorded_alarms:
        When set (and ``record_alarms`` is on), :attr:`stats.alarms`
        becomes a ring buffer holding only the most recent alarms, so a
        months-long replay cannot grow memory without bound.
    """

    def __init__(
        self,
        forest: OnlineRandomForest,
        *,
        queue_length: int = 7,
        alarm_threshold: float = 0.5,
        warmup_samples: int = 0,
        record_alarms: bool = True,
        max_recorded_alarms: Optional[int] = None,
    ) -> None:
        check_probability(alarm_threshold, "alarm_threshold")
        if warmup_samples < 0:
            raise ValueError("warmup_samples must be >= 0")
        if max_recorded_alarms is not None and max_recorded_alarms <= 0:
            raise ValueError("max_recorded_alarms must be > 0 or None")
        self.forest = forest
        self.labeler = OnlineLabeler(queue_length)
        self.alarm_threshold = float(alarm_threshold)
        self.warmup_samples = int(warmup_samples)
        self.record_alarms = record_alarms
        self.max_recorded_alarms = max_recorded_alarms
        self.stats = PredictorStats()
        if record_alarms and max_recorded_alarms is not None:
            self.stats.alarms = deque(maxlen=max_recorded_alarms)
        #: stage tracer for the Algorithm-2 hot path (labeler release,
        #: forest update, scoring); the no-op default costs nothing and
        #: keeps the stream bit-identical
        self.tracer: NullTracer = NULL_TRACER

    # ----------------------------------------------------------------- events
    def _checked_vector(self, disk_id: Hashable, x: Union[np.ndarray, Sequence[float]]) -> np.ndarray:
        """Validate one SMART vector *before* any state mutates.

        A wrong-dimension or NaN/Inf vector used to surface as a cryptic
        numpy error deep inside the forest — after the labeler had
        already queued it, leaving the monitor half-mutated.  Rejecting
        it here keeps every predictor entry point all-or-nothing.
        """
        try:
            arr = np.asarray(x, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"disk {disk_id!r}: sample is not a numeric vector: {exc}"
            ) from None
        expected = (int(self.forest.n_features),)
        if arr.shape != expected:
            raise ValueError(
                f"disk {disk_id!r}: expected a SMART vector of shape "
                f"{expected}, got {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError(
                f"disk {disk_id!r}: SMART vector contains NaN/Inf values"
            )
        return arr

    def process_sample(
        self, disk_id: Hashable, x: np.ndarray, tag: object = None
    ) -> Optional[Alarm]:
        """A working disk reported a SMART sample (Algorithm 2, lines 10-22).

        Model-update phase: the labeler may release one confirmed
        negative, which updates the forest.  Prediction phase: the fresh
        sample is scored; returns an :class:`Alarm` if risky, else None.
        """
        x = self._checked_vector(disk_id, x)
        self.stats.n_samples += 1
        with self.tracer.span("predictor.labeler") as sp:
            released = self.labeler.observe(disk_id, x, tag)
            sp.items = len(released)
        if released:
            with self.tracer.span(
                "predictor.forest_update", items=len(released)
            ):
                for labeled in released:
                    self.forest.update(labeled.x, labeled.y)
                    self.stats.n_updates_neg += 1

        with self.tracer.span("predictor.predict", items=1):
            score = self.forest.predict_one(x)
        n_absorbed = self.stats.n_updates_pos + self.stats.n_updates_neg
        if score >= self.alarm_threshold and n_absorbed >= self.warmup_samples:
            alarm = Alarm(disk_id, float(score), tag)
            self.stats.n_alarms += 1
            if self.record_alarms:
                self.stats.alarms.append(alarm)
            return alarm
        return None

    def process_failure(self, disk_id: Hashable) -> int:
        """Disk *disk_id* failed (Algorithm 2, lines 2-8).

        Flushes its queue as positive updates; returns how many positive
        samples were absorbed.
        """
        self.stats.n_failures += 1
        with self.tracer.span("predictor.labeler") as sp:
            released = self.labeler.fail(disk_id)
            sp.items = len(released)
        if released:
            with self.tracer.span(
                "predictor.forest_update", items=len(released)
            ):
                for labeled in released:
                    self.forest.update(labeled.x, labeled.y)
                    self.stats.n_updates_pos += 1
        return len(released)

    def process(
        self,
        disk_id: Hashable,
        x: Optional[np.ndarray],
        failed: bool,
        tag: object = None,
    ) -> Optional[Alarm]:
        """Unified entry point matching Algorithm 2's signature.

        ``failed=True`` routes to :meth:`process_failure` (x may be
        None — a failed disk often reports nothing on its death day);
        otherwise to :meth:`process_sample`.
        """
        if failed:
            if x is not None:
                # final snapshot exists: it is part of the last week too,
                # and the eviction it may cause is a real confirmed
                # negative (that sample's window elapsed before death)
                x = self._checked_vector(disk_id, x)
                with self.tracer.span("predictor.labeler") as sp:
                    released = self.labeler.observe(disk_id, x, tag)
                    sp.items = len(released)
                if released:
                    with self.tracer.span(
                        "predictor.forest_update", items=len(released)
                    ):
                        for labeled in released:
                            self.forest.update(labeled.x, labeled.y)
                            self.stats.n_updates_neg += 1
            self.process_failure(disk_id)
            return None
        if x is None:
            raise ValueError("x is required for a working disk")
        return self.process_sample(disk_id, x, tag)

    def process_batch(
        self,
        events: Sequence[Tuple[Hashable, Optional[np.ndarray], bool, object]],
    ) -> List[Optional[Alarm]]:
        """Micro-batched Algorithm 2 over ``(disk_id, x, failed, tag)`` rows.

        The labeler runs event by event (so queue semantics are exact),
        the released labels are folded with *one* ``partial_fit`` call in
        release order, and all working samples are scored with *one*
        ``predict_score`` call — routing every tree through the
        vectorized batch path and the forest's executor.  The resulting
        **forest state is bit-identical** to processing the events one
        at a time: the exact ``partial_fit`` path consumes each slot's
        RNG stream element-for-element like per-sample ``update``.

        What relaxes is scoring: every sample in the batch is scored
        against the forest *after* all of the batch's updates (the
        per-sample loop scores each sample mid-batch), and the warmup
        gate sees the post-batch absorbed count — so alarms near a
        model-state boundary can differ within one batch.  Returns one
        entry per event, aligned with the input (None for failures and
        quiet samples).
        """
        updates: List[Tuple[np.ndarray, int]] = []
        to_score: List[Tuple[int, Hashable, np.ndarray, object]] = []
        n_pos = n_neg = 0
        with self.tracer.span("predictor.labeler", items=len(events)):
            for i, (disk_id, x, failed, tag) in enumerate(events):
                if failed:
                    if x is not None:
                        x = self._checked_vector(disk_id, x)
                        for labeled in self.labeler.observe(disk_id, x, tag):
                            updates.append((labeled.x, 0))
                            n_neg += 1
                    self.stats.n_failures += 1
                    for labeled in self.labeler.fail(disk_id):
                        updates.append((labeled.x, 1))
                        n_pos += 1
                    continue
                if x is None:
                    raise ValueError("x is required for a working disk")
                x = self._checked_vector(disk_id, x)
                self.stats.n_samples += 1
                for labeled in self.labeler.observe(disk_id, x, tag):
                    updates.append((labeled.x, 0))
                    n_neg += 1
                to_score.append((i, disk_id, x, tag))

        if updates:
            with self.tracer.span(
                "predictor.forest_update", items=len(updates)
            ):
                self.forest.partial_fit(
                    np.stack([u[0] for u in updates]),
                    np.array([u[1] for u in updates], dtype=np.int64),
                )
            self.stats.n_updates_pos += n_pos
            self.stats.n_updates_neg += n_neg

        results: List[Optional[Alarm]] = [None] * len(events)
        if to_score:
            with self.tracer.span("predictor.predict", items=len(to_score)):
                scores = self.forest.predict_score(
                    np.stack([row[2] for row in to_score])
                )
            n_absorbed = self.stats.n_updates_pos + self.stats.n_updates_neg
            warm = n_absorbed >= self.warmup_samples
            for (i, disk_id, _x, tag), score in zip(to_score, scores):
                if warm and score >= self.alarm_threshold:
                    alarm = Alarm(disk_id, float(score), tag)
                    self.stats.n_alarms += 1
                    if self.record_alarms:
                        self.stats.alarms.append(alarm)
                    results[i] = alarm
        return results

    # --------------------------------------------------------------- serving
    def compile(self) -> "OnlineDiskFailurePredictor":
        """Warm the forest's compiled inference snapshots; returns self.

        Scoring compiles lazily on first use — this just front-loads the
        work (e.g. right after a checkpoint restore) so the first scored
        sample pays no materialization cost.  Representation-only.
        """
        self.forest.compile()
        return self

    # ------------------------------------------------------------- inspection
    @property
    def n_monitored_disks(self) -> int:
        """Disks currently holding a labeling queue."""
        return self.labeler.n_disks
