"""The streaming disk-failure monitor — Algorithm 2 of the paper.

:class:`OnlineDiskFailurePredictor` wires together the automatic online
labeler (Figure 1) and the Online Random Forest (Algorithm 1): every
incoming SMART sample first releases any newly labeled samples into the
forest (model-update phase), then is scored itself (prediction phase); a
score above the alarm threshold raises an :class:`Alarm` recommending
data migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional

import numpy as np

from repro.core.forest import OnlineRandomForest
from repro.core.labeler import OnlineLabeler
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class Alarm:
    """A positive prediction for a live disk."""

    disk_id: Hashable
    score: float
    tag: object = None


@dataclass
class PredictorStats:
    """Lifetime counters of the monitor."""

    n_samples: int = 0
    n_failures: int = 0
    n_alarms: int = 0
    n_updates_pos: int = 0
    n_updates_neg: int = 0
    alarms: List[Alarm] = field(default_factory=list)


class OnlineDiskFailurePredictor:
    """End-to-end online monitor (Algorithm 2).

    Parameters
    ----------
    forest:
        The ORF model to evolve (constructed by the caller so all
        hyper-parameters stay in one place).
    queue_length:
        The labeler's per-disk window (7 daily samples in the paper).
    alarm_threshold:
        Score at/above which a live disk is declared risky.  Tune with
        :func:`repro.eval.threshold.threshold_for_far` to pin FAR.
    warmup_samples:
        Suppress alarms until the forest has absorbed this many labeled
        samples (a brand-new model's scores are noise).
    record_alarms:
        Keep every alarm on :attr:`stats` (handy in notebooks; switch off
        for unbounded streams).
    """

    def __init__(
        self,
        forest: OnlineRandomForest,
        *,
        queue_length: int = 7,
        alarm_threshold: float = 0.5,
        warmup_samples: int = 0,
        record_alarms: bool = True,
    ) -> None:
        check_probability(alarm_threshold, "alarm_threshold")
        if warmup_samples < 0:
            raise ValueError("warmup_samples must be >= 0")
        self.forest = forest
        self.labeler = OnlineLabeler(queue_length)
        self.alarm_threshold = float(alarm_threshold)
        self.warmup_samples = int(warmup_samples)
        self.record_alarms = record_alarms
        self.stats = PredictorStats()

    # ----------------------------------------------------------------- events
    def process_sample(
        self, disk_id: Hashable, x: np.ndarray, tag: object = None
    ) -> Optional[Alarm]:
        """A working disk reported a SMART sample (Algorithm 2, lines 10-22).

        Model-update phase: the labeler may release one confirmed
        negative, which updates the forest.  Prediction phase: the fresh
        sample is scored; returns an :class:`Alarm` if risky, else None.
        """
        x = np.asarray(x, dtype=np.float64)
        self.stats.n_samples += 1
        for labeled in self.labeler.observe(disk_id, x, tag):
            self.forest.update(labeled.x, labeled.y)
            self.stats.n_updates_neg += 1

        score = self.forest.predict_one(x)
        n_absorbed = self.stats.n_updates_pos + self.stats.n_updates_neg
        if score >= self.alarm_threshold and n_absorbed >= self.warmup_samples:
            alarm = Alarm(disk_id, float(score), tag)
            self.stats.n_alarms += 1
            if self.record_alarms:
                self.stats.alarms.append(alarm)
            return alarm
        return None

    def process_failure(self, disk_id: Hashable) -> int:
        """Disk *disk_id* failed (Algorithm 2, lines 2-8).

        Flushes its queue as positive updates; returns how many positive
        samples were absorbed.
        """
        self.stats.n_failures += 1
        released = self.labeler.fail(disk_id)
        for labeled in released:
            self.forest.update(labeled.x, labeled.y)
            self.stats.n_updates_pos += 1
        return len(released)

    def process(
        self,
        disk_id: Hashable,
        x: Optional[np.ndarray],
        failed: bool,
        tag: object = None,
    ) -> Optional[Alarm]:
        """Unified entry point matching Algorithm 2's signature.

        ``failed=True`` routes to :meth:`process_failure` (x may be
        None — a failed disk often reports nothing on its death day);
        otherwise to :meth:`process_sample`.
        """
        if failed:
            if x is not None:
                # final snapshot exists: it is part of the last week too
                self.labeler.observe(disk_id, x, tag)
            self.process_failure(disk_id)
            return None
        if x is None:
            raise ValueError("x is required for a working disk")
        return self.process_sample(disk_id, x, tag)

    # ------------------------------------------------------------- inspection
    @property
    def n_monitored_disks(self) -> int:
        """Disks currently holding a labeling queue."""
        return self.labeler.n_disks
