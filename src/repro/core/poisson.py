"""Imbalance-aware Poisson online bagging — Eq. (3) of the paper.

Classic online bagging (Oza & Russell) updates each tree k ~ Poisson(1)
times per sample.  The paper's twist for the failed/healthy imbalance is
two class-specific rates: positives use λp (= 1) and negatives λn
(≈ 0.02), so negative samples are only rarely selected for an update —
the online analogue of offline negative downsampling.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


class ImbalanceBagger:
    """Draws per-tree update multiplicities k(⟨x, y⟩) per Eq. (3)."""

    def __init__(
        self,
        lambda_pos: float = 1.0,
        lambda_neg: float = 0.02,
        *,
        seed: SeedLike = None,
    ) -> None:
        check_positive(lambda_pos, "lambda_pos", strict=False)
        check_positive(lambda_neg, "lambda_neg", strict=False)
        self.lambda_pos = float(lambda_pos)
        self.lambda_neg = float(lambda_neg)
        self._rng = as_generator(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The bagger's own draw stream (public handle; also settable so
        checkpoint restores can reinstall a saved stream)."""
        return self._rng

    @rng.setter
    def rng(self, value: "SeedLike") -> None:
        self._rng = as_generator(value)

    def rate_for(self, y: int) -> float:
        """λ applicable to a sample of class *y*."""
        if y not in (0, 1):
            raise ValueError(f"y must be 0 or 1, got {y!r}")
        return self.lambda_pos if y == 1 else self.lambda_neg

    def rate_vector(self, y: np.ndarray) -> np.ndarray:
        """λ per row for an array of binary labels (vectorized
        :meth:`rate_for`; the chunked forest path uses this)."""
        y = np.asarray(y)
        return np.where(y == 1, self.lambda_pos, self.lambda_neg)

    def draw_using(
        self, rng: np.random.Generator, y: int, n_trees: int
    ) -> np.ndarray:
        """Like :meth:`draw`, but from an explicit stream.

        Parallel forests give every tree slot its own generator so draws
        are independent of scheduling; this method keeps the λ == 0
        semantics identical between the owned and external streams.
        """
        check_positive(n_trees, "n_trees")
        lam = self.rate_for(y)
        if lam <= 0.0:
            return np.zeros(n_trees, dtype=np.int64)
        return rng.poisson(lam, size=n_trees)

    def draw(self, y: int, n_trees: int) -> np.ndarray:
        """k for each of *n_trees* trees for one sample of class *y*.

        λ == 0 yields all-zero k without touching the RNG stream's
        Poisson path (the sample is then pure out-of-bag for every tree).
        """
        return self.draw_using(self._rng, y, n_trees)

    def expected_update_fraction(self, y: int) -> float:
        """P(k > 0) for class *y* — useful for sanity checks and docs."""
        return float(1.0 - np.exp(-self.rate_for(y)))
