"""Automatic online label method — Figure 1 / the queues of Algorithm 2.

In online operation the true status of a working disk is unknowable: a
sample taken today can only be called *negative* once the disk has
survived long enough, and *positive* only once the disk has actually
failed.  The paper's solution: keep the last ``queue_length`` samples of
each disk unlabeled in a FIFO queue.

* A new sample arriving at a full queue evicts the oldest entry, which is
  thereby confirmed **negative** (the disk survived the whole window).
* A disk failure flushes its entire queue as **positive** samples (they
  were all taken within the window before death) and retires the disk.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Tuple

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LabeledSample:
    """A sample whose label just became known."""

    disk_id: Hashable
    x: np.ndarray
    y: int
    #: opaque caller tag carried with the sample (e.g. its day index)
    tag: object = None


class OnlineLabeler:
    """Per-disk FIFO queues that release samples once their label is known.

    Parameters
    ----------
    queue_length:
        Samples held per disk — the paper uses one week of daily samples
        (7), matching the 7-day prediction horizon.
    """

    def __init__(self, queue_length: int = 7) -> None:
        check_positive(queue_length, "queue_length")
        self.queue_length = int(queue_length)
        self._queues: Dict[Hashable, Deque[Tuple[np.ndarray, object]]] = {}

    # ------------------------------------------------------------------ feed
    def observe(
        self, disk_id: Hashable, x: np.ndarray, tag: object = None
    ) -> List[LabeledSample]:
        """A working disk reported a sample; returns newly labeled negatives.

        At most one negative is released per call (the evicted oldest
        entry of a full queue).
        """
        q = self._queues.setdefault(disk_id, deque())
        released: List[LabeledSample] = []
        if len(q) >= self.queue_length:
            old_x, old_tag = q.popleft()
            released.append(LabeledSample(disk_id, old_x, 0, old_tag))
        # always copy: np.asarray aliases float64 input, and a sample may
        # sit queued for days while the caller reuses its buffer
        q.append((np.array(x, dtype=np.float64, copy=True), tag))
        return released

    def fail(self, disk_id: Hashable) -> List[LabeledSample]:
        """The disk failed; returns its queued samples, all positive.

        The disk is retired — subsequent ``observe`` calls for the same
        id start a fresh queue (Backblaze serials are never reused, but
        the labeler does not need to care).
        """
        q = self._queues.pop(disk_id, deque())
        return [LabeledSample(disk_id, x, 1, tag) for x, tag in q]

    def retire(self, disk_id: Hashable) -> int:
        """Decommission a disk *without* failure (e.g. planned removal).

        Its queued samples never get a trustworthy label and are
        discarded; returns how many were dropped.
        """
        q = self._queues.pop(disk_id, None)
        return len(q) if q is not None else 0

    # ------------------------------------------------------------ inspection
    @property
    def n_disks(self) -> int:
        """Disks currently holding a queue."""
        return len(self._queues)

    @property
    def n_pending(self) -> int:
        """Samples currently awaiting a label."""
        return sum(len(q) for q in self._queues.values())

    def pending_for(self, disk_id: Hashable) -> int:
        """Queue length of one disk (0 if unknown)."""
        q = self._queues.get(disk_id)
        return len(q) if q is not None else 0
