"""Per-leaf sufficient statistics for online tree growth.

A leaf tracks (a) its own weighted class histogram — which doubles as the
leaf's prediction posterior — and (b) for every candidate random test,
the class histogram on each side of the test.  Everything needed for the
paper's split rule (Eqs. 1–2) lives in one dense ``(N, 2, 2)`` array, so
both the per-sample update and the gain evaluation over all N tests are
single vectorized NumPy operations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.random_tests import RandomTestSet


def gini(counts: np.ndarray) -> np.ndarray:
    """Gini impurity (Eq. 1) from class-count arrays ``(..., 2)``.

    Empty nodes have impurity 0.  The result lies in [0, 0.5].
    """
    total = counts.sum(axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        p1 = np.where(total > 0, counts[..., 1] / np.where(total > 0, total, 1), 0.0)
    return 2.0 * p1 * (1.0 - p1)


class LeafStats:
    """Mutable statistics of one growing leaf.

    Parameters
    ----------
    tests:
        The leaf's candidate random tests; ``None`` for leaves that can
        no longer split (max depth reached) — they keep only the class
        histogram used for prediction.
    prior_counts:
        Class histogram inherited from the parent partition at split
        time, so a fresh leaf predicts sensibly before seeing any sample
        of its own.
    """

    __slots__ = (
        "tests", "class_counts", "test_stats", "n_seen", "n_updates", "_arange"
    )

    def __init__(
        self,
        tests: Optional[RandomTestSet],
        prior_counts: Optional[np.ndarray] = None,
    ) -> None:
        self.tests = tests
        self.class_counts = (
            prior_counts.astype(np.float64).copy()
            if prior_counts is not None
            else np.zeros(2, dtype=np.float64)
        )
        if tests is not None:
            self.test_stats = np.zeros((tests.n_tests, 2, 2), dtype=np.float64)
            self._arange = np.arange(tests.n_tests)
        else:
            self.test_stats = None
            self._arange = None
        #: weighted number of samples seen *by this leaf* (the |D| of the
        #: split condition — inherited prior counts do not count)
        self.n_seen = 0.0
        #: integer count of update events folded into this leaf.  The
        #: split-check amortization gates on this counter, never on the
        #: weighted ``n_seen``: under fractional weights ``int(n_seen)``
        #: repeats or skips residues, so a modulo gate on it double-checks
        #: or never fires on schedule.
        self.n_updates = 0

    # ---------------------------------------------------------------- update
    def update(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        """Fold one sample into the leaf's statistics."""
        self.class_counts[y] += weight
        self.n_seen += weight
        self.n_updates += 1
        if self.tests is not None:
            sides = self.tests.evaluate(x)
            # first index is arange (all rows distinct) → fancy += is safe
            self.test_stats[self._arange, sides, y] += weight

    def update_batch(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray) -> None:
        """Fold a batch of samples (used by the chunked fast path)."""
        np.add.at(self.class_counts, y, weights)
        self.n_seen += float(weights.sum())
        self.n_updates += int(X.shape[0])
        if self.tests is not None:
            sides = self.tests.evaluate_batch(X)  # (n, N)
            n, N = sides.shape
            test_idx = np.broadcast_to(self._arange, (n, N))
            cls_idx = np.broadcast_to(y[:, None], (n, N))
            w = np.broadcast_to(weights[:, None], (n, N))
            np.add.at(self.test_stats, (test_idx, sides, cls_idx), w)

    # ----------------------------------------------------------------- gains
    def gains(self) -> np.ndarray:
        """ΔG (Eq. 2) of every candidate test, vectorized.

        Uses the *test-local* class totals (left + right per test), which
        equal the samples this leaf has routed since creation.
        """
        if self.tests is None:
            return np.zeros(0, dtype=np.float64)
        stats = self.test_stats  # (N, side, class)
        totals = stats.sum(axis=(1, 2))  # (N,)
        side_totals = stats.sum(axis=2)  # (N, 2)
        parent_counts = stats.sum(axis=1)  # (N, 2)
        g_parent = gini(parent_counts)
        g_children = gini(stats)  # (N, 2) per side
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(
                totals[:, None] > 0, side_totals / np.where(totals[:, None] > 0, totals[:, None], 1), 0.0
            )
        return g_parent - (frac * g_children).sum(axis=1)

    def best_split(self) -> Tuple[int, float]:
        """(test index, its ΔG); (-1, 0) when the leaf has no tests."""
        g = self.gains()
        if g.size == 0:
            return -1, 0.0
        best = int(np.argmax(g))
        return best, float(g[best])

    # ------------------------------------------------------------ prediction
    def posterior_positive(self, *, laplace: float = 1.0) -> float:
        """Smoothed P(y = 1) at this leaf."""
        c0, c1 = self.class_counts
        return (c1 + laplace) / (c0 + c1 + 2.0 * laplace)

    def child_counts(self, test_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(left, right) class histograms of a chosen test's partition —
        inherited by the children at split time."""
        if self.tests is None:
            raise RuntimeError("leaf has no candidate tests")
        return (
            self.test_stats[test_index, 0].copy(),
            self.test_stats[test_index, 1].copy(),
        )
