"""The paper's contribution: Online Random Forests for disk failure prediction.

* :class:`~repro.core.forest.OnlineRandomForest` — Algorithm 1: online
  trees with random candidate tests, Gini-gain splitting gated by
  MinParentSize (α) and MinGain (β), imbalance-aware Poisson online
  bagging (λp / λn), and OOBE-based discard of decayed trees.
* :class:`~repro.core.labeler.OnlineLabeler` — the automatic online
  label method of Figure 1 (per-disk FIFO queues).
* :class:`~repro.core.predictor.OnlineDiskFailurePredictor` —
  Algorithm 2: the streaming monitor wiring the labeler to the forest
  and raising alarms.
"""

from repro.core.explain import Explanation, explain_score, feature_usage
from repro.core.forest import OnlineRandomForest
from repro.core.health import (
    HealthLevels,
    OnlineHealthAssessor,
    health_level_accuracy,
)
from repro.core.labeler import LabeledSample, OnlineLabeler
from repro.core.node_stats import LeafStats
from repro.core.online_tree import OnlineDecisionTree
from repro.core.oobe import OOBETracker
from repro.core.poisson import ImbalanceBagger
from repro.core.predictor import Alarm, OnlineDiskFailurePredictor
from repro.core.random_tests import RandomTestSet, make_random_tests

__all__ = [
    "OnlineRandomForest",
    "HealthLevels",
    "OnlineHealthAssessor",
    "health_level_accuracy",
    "Explanation",
    "explain_score",
    "feature_usage",
    "OnlineDecisionTree",
    "LeafStats",
    "RandomTestSet",
    "make_random_tests",
    "ImbalanceBagger",
    "OOBETracker",
    "OnlineLabeler",
    "LabeledSample",
    "OnlineDiskFailurePredictor",
    "Alarm",
]
