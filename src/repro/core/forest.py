"""Online Random Forest — Algorithm 1 of the paper.

The forest maintains T independent online trees.  Per arriving labeled
sample ⟨x, y⟩ it draws, for every tree, an update multiplicity
k ~ Poisson(λp or λn) (Eq. 3).  Trees with k > 0 fold the sample in k
times (splitting when the α/β condition fires); trees with k = 0 treat
the sample as out-of-bag, update their OOBE, and are discarded and
regrown when decayed (OOBE > θ_OOBE and AGE > θ_AGE).

Trees are mutually independent, so ``update``, ``partial_fit`` and
``predict_score`` all map over a :class:`~repro.parallel.TreeExecutor`
when one is supplied.  Each tree travels as one picklable
:class:`TreeSlot` bundle — the tree, its OOBE tracker, and a private RNG
stream that feeds both its Poisson draws and the seeds of any
replacement trees — so a slot's trajectory depends only on its own
stream, never on scheduling order or on which worker processed it.  The
serial executor is the bit-exact reference; thread and process backends
produce observationally identical forests (the equivalence test suite
asserts this).  All mapped functions are module-level with explicit
payloads, so ``ExecutorKind.PROCESS`` works for both fit and predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.online_tree import OnlineDecisionTree
from repro.core.oobe import OOBETracker
from repro.core.poisson import ImbalanceBagger
from repro.obs.tracing import NULL_TRACER, NullTracer
from repro.parallel.chunking import assemble_groups, split_work  # repro: noqa RPR501 — chunking is scheduling math with no model knowledge; inverting it into core would couple the scheduler to one consumer
from repro.parallel.pool import SerialExecutor, TreeExecutor  # repro: noqa RPR501 — models layer consumes the executor abstraction; pool has no model knowledge, so the inversion would be artificial
from repro.utils.rng import RngFactory, SeedLike
from repro.utils.validation import (
    check_array_2d,
    check_binary_labels,
    check_feature_count,
    check_in_range,
    check_positive,
)


@dataclass
class TreeSlot:
    """One tree's complete streaming state, picklable as a unit.

    ``rng`` is the slot's private stream: it supplies the per-sample
    Poisson multiplicities *and* the integer seeds of replacement trees,
    so regrowth inside a worker process stays deterministic without any
    callback to the parent.
    """

    tree: OnlineDecisionTree
    tracker: OOBETracker
    rng: np.random.Generator


@dataclass(frozen=True)
class _FitSpec:
    """Everything a fit worker needs beyond the slots and the data."""

    lambda_pos: float
    lambda_neg: float
    oobe_threshold: Optional[float]
    age_threshold: float
    chunk_size: int
    tree_params: dict


def _regrow_tree(spec: _FitSpec, rng: np.random.Generator) -> OnlineDecisionTree:
    """Fresh tree seeded from the slot's own stream (deterministic per slot)."""
    seed = int(rng.integers(0, 2**63))
    return OnlineDecisionTree(seed=seed, **spec.tree_params)


def _maybe_replace(slot: TreeSlot, spec: _FitSpec) -> int:
    """Apply the decay rule; returns 1 if the tree was replaced."""
    if spec.oobe_threshold is None:
        return 0
    if slot.tracker.is_decayed(
        slot.tree.age,
        oobe_threshold=spec.oobe_threshold,
        age_threshold=spec.age_threshold,
    ):
        slot.tree = _regrow_tree(spec, slot.rng)
        slot.tracker.reset()
        return 1
    return 0


def _fit_slot_exact(
    slot: TreeSlot, X: np.ndarray, y: np.ndarray, lam: np.ndarray, spec: _FitSpec
) -> int:
    """Per-sample Algorithm 1 for one slot over the whole batch, row order."""
    n_replaced = 0
    ks = slot.rng.poisson(lam)
    for i in range(X.shape[0]):
        k = int(ks[i])
        if k > 0:
            slot.tree.update_repeated(X[i], int(y[i]), k)
        else:
            # out-of-bag: score the sample, update OOBE, maybe replace
            pred = 1 if slot.tree.predict_one(X[i]) > 0.5 else 0
            slot.tracker.observe(int(y[i]), pred)
            n_replaced += _maybe_replace(slot, spec)
    return n_replaced


def _fit_slot_chunked(
    slot: TreeSlot, X: np.ndarray, y: np.ndarray, lam: np.ndarray, spec: _FitSpec
) -> int:
    """Mini-batch fast path for one slot: vectorized draws, bulk folds,
    closed-form batch OOBE, decay checked once per chunk."""
    n_replaced = 0
    for start in range(0, X.shape[0], spec.chunk_size):
        sl = slice(start, min(start + spec.chunk_size, X.shape[0]))
        Xc, yc = X[sl], y[sl]
        ks = slot.rng.poisson(lam[sl])
        in_bag = ks > 0
        if in_bag.any():
            slot.tree.update_batch(
                Xc[in_bag], yc[in_bag], ks[in_bag].astype(np.float64)
            )
        oob = ~in_bag
        if oob.any():
            preds = (slot.tree.predict_batch(Xc[oob]) > 0.5).astype(np.int8)
            slot.tracker.observe_batch(yc[oob], preds)
            n_replaced += _maybe_replace(slot, spec)
    return n_replaced


def _fit_slots(payload: Tuple[List[TreeSlot], np.ndarray, np.ndarray, np.ndarray]) -> Tuple[List[TreeSlot], int]:
    """Worker: stream one batch through a group of slots.

    Module-level so process pools can pickle it; returns the (possibly
    copied, in process workers) slots so the caller can reinstall them.
    """
    slots, X, y, spec = payload
    lam = np.where(y == 1, spec.lambda_pos, spec.lambda_neg)
    fit_one = _fit_slot_exact if spec.chunk_size <= 0 else _fit_slot_chunked
    n_replaced = 0
    for slot in slots:
        n_replaced += fit_one(slot, X, y, lam, spec)
    return slots, n_replaced


def _score_trees(payload: Tuple[List[TreeSlot], np.ndarray, str]) -> np.ndarray:
    """Worker: per-tree score rows for a group of trees (picklable payload).

    Returning one row per tree (not a group-local sum) lets the caller
    reduce over the full ``(T, n)`` stack in tree order, so the result is
    bit-identical whatever the executor's grouping.
    """
    trees, X, vote = payload
    out = np.empty((len(trees), X.shape[0]), dtype=np.float64)
    for i, tree in enumerate(trees):
        p = tree.predict_batch(X)
        out[i] = (p > 0.5).astype(np.float64) if vote == "hard" else p
    return out


class OnlineRandomForest:
    """ORF classifier for streaming, heavily imbalanced binary data.

    Parameters (paper symbols in parentheses)
    ----------
    n_features:
        Input dimensionality.
    n_trees:
        Ensemble size (T; the paper uses 30).
    n_tests:
        Candidate random tests per leaf (N).
    min_parent_size / min_gain:
        Split gates (α = 200, β = 0.1 in the paper).
    lambda_pos / lambda_neg:
        Class-specific online-bagging rates (λp = 1, λn = 0.02).
    oobe_threshold / age_threshold:
        Tree-decay gates (θ_OOBE, θ_AGE).  Age is counted in weighted
        samples folded into the tree.  Set ``oobe_threshold=None`` to
        disable tree replacement entirely (ablation A1).
    vote:
        ``"soft"`` — average leaf posteriors (granular scores for FAR
        thresholding); ``"hard"`` — fraction of trees voting positive
        (the literal "mode of the classes" of §3.1).
    max_depth, split_check_interval, feature_ranges:
        Forwarded to every tree (see :class:`OnlineDecisionTree`).
    executor:
        Optional :class:`TreeExecutor`; per-tree work — both stream
        updates and batch prediction — is dealt into contiguous slot
        groups and mapped over it.  Because every slot owns its RNG
        stream, thread and process backends are observationally
        identical to the serial reference under the same seed.
    """

    def __init__(
        self,
        n_features: int,
        *,
        n_trees: int = 25,
        n_tests: int = 40,
        min_parent_size: float = 200.0,
        min_gain: float = 0.1,
        lambda_pos: float = 1.0,
        lambda_neg: float = 0.02,
        oobe_threshold: Optional[float] = 0.25,
        age_threshold: float = 2000.0,
        oobe_decay: float = 0.01,
        oobe_min_observations: int = 50,
        vote: str = "soft",
        max_depth: int = 20,
        split_check_interval: int = 1,
        feature_ranges: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        executor: Optional[TreeExecutor] = None,
    ) -> None:
        check_positive(n_features, "n_features")
        check_positive(n_trees, "n_trees")
        if oobe_threshold is not None:
            check_in_range(oobe_threshold, "oobe_threshold", 0.0, 1.0)
        check_positive(age_threshold, "age_threshold", strict=False)
        if vote not in ("soft", "hard"):
            raise ValueError(f"vote must be 'soft' or 'hard', got {vote!r}")

        self.n_features = int(n_features)
        self.n_trees = int(n_trees)
        self.n_tests = int(n_tests)
        self.min_parent_size = float(min_parent_size)
        self.min_gain = float(min_gain)
        self.oobe_threshold = oobe_threshold
        self.age_threshold = float(age_threshold)
        self.oobe_decay = float(oobe_decay)
        self.oobe_min_observations = int(oobe_min_observations)
        self.vote = vote
        self.max_depth = int(max_depth)
        self.split_check_interval = int(split_check_interval)
        self.feature_ranges = feature_ranges

        self._rng_factory = RngFactory(seed)
        self.bagger = ImbalanceBagger(
            lambda_pos, lambda_neg, seed=self._rng_factory.make()
        )
        self.slots: List[TreeSlot] = [
            TreeSlot(
                tree=self._new_tree(),
                tracker=self._new_tracker(),
                rng=self._rng_factory.make(),
            )
            for _ in range(self.n_trees)
        ]
        self._executor = executor or SerialExecutor()
        #: stage tracer for the batch fit/predict paths; the no-op
        #: default keeps results bit-identical and the hot path free
        self.tracer: NullTracer = NULL_TRACER
        #: lifetime counters (inspection / ablation instrumentation)
        self.n_samples_seen = 0
        self.n_replacements = 0

    # --------------------------------------------------------------- plumbing
    def _tree_params(self) -> dict:
        """Constructor kwargs shared by every tree (picklable, seed-free)."""
        return dict(
            n_features=self.n_features,
            n_tests=self.n_tests,
            min_parent_size=self.min_parent_size,
            min_gain=self.min_gain,
            max_depth=self.max_depth,
            feature_ranges=self.feature_ranges,
            split_check_interval=self.split_check_interval,
        )

    def _new_tree(self, seed: SeedLike = None) -> OnlineDecisionTree:
        if seed is None:
            seed = self._rng_factory.make()
        return OnlineDecisionTree(seed=seed, **self._tree_params())

    def _new_tracker(self) -> OOBETracker:
        return OOBETracker(
            decay=self.oobe_decay, min_observations=self.oobe_min_observations
        )

    def _fit_spec(self, chunk_size: int) -> _FitSpec:
        return _FitSpec(
            lambda_pos=self.bagger.lambda_pos,
            lambda_neg=self.bagger.lambda_neg,
            oobe_threshold=self.oobe_threshold,
            age_threshold=self.age_threshold,
            chunk_size=int(chunk_size),
            tree_params=self._tree_params(),
        )

    @property
    def trees(self) -> List[OnlineDecisionTree]:
        """Current trees, in slot order (read-only view)."""
        return [slot.tree for slot in self.slots]

    @property
    def trackers(self) -> List[OOBETracker]:
        """Current OOBE trackers, in slot order (read-only view)."""
        return [slot.tracker for slot in self.slots]

    @property
    def lambda_pos(self) -> float:
        """Poisson rate applied to positive samples (Eq. 3)."""
        return self.bagger.lambda_pos

    @property
    def lambda_neg(self) -> float:
        """Poisson rate applied to negative samples (Eq. 3)."""
        return self.bagger.lambda_neg

    # ----------------------------------------------------------------- update
    def _map_fit(self, X: np.ndarray, y: np.ndarray, chunk_size: int) -> None:
        """Deal slots into worker groups, stream the batch, reinstall."""
        spec = self._fit_spec(chunk_size)
        with self.tracer.span("forest.fit", items=X.shape[0]):
            groups = split_work(
                self.slots, getattr(self._executor, "n_workers", 1)
            )
            payloads = [(group, X, y, spec) for group in groups]
            results = self._executor.map(_fit_slots, payloads)
            # process workers mutate copies; reinstall whatever came back
            self.slots = assemble_groups([slots for slots, _ in results])
            self.n_replacements += sum(n for _, n in results)

    def update(self, x: np.ndarray, y: int) -> None:
        """Fold one labeled sample into the forest (Algorithm 1)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_features,):
            raise ValueError(
                f"x must have shape ({self.n_features},), got {x.shape}"
            )
        if y not in (0, 1):
            raise ValueError(f"y must be 0 or 1, got {y!r}")
        self.n_samples_seen += 1
        self._map_fit(x[None, :], np.array([y], dtype=np.int64), 0)

    def partial_fit(self, X: np.ndarray, y: np.ndarray, *, chunk_size: int = 0) -> "OnlineRandomForest":
        """Stream a batch of labeled samples, in row order; returns self.

        ``chunk_size = 0`` (default) replays Algorithm 1 exactly, sample
        by sample.  A positive ``chunk_size`` switches to the mini-batch
        fast path: per chunk and per tree, Poisson multiplicities are
        drawn vectorized, in-bag rows are bulk-routed and bulk-folded
        into leaf statistics (splits evaluated at chunk boundaries), and
        out-of-bag rows update the OOBE via one batch prediction and a
        closed-form EWMA.  Decay checks run once per tree per chunk.
        Semantics relax slightly (splits/replacements can lag by up to
        one chunk) in exchange for a large constant-factor speedup on
        negative-heavy streams — see the A8 throughput bench.

        Both paths map per-tree work over the forest's executor; because
        each slot owns its RNG stream, the resulting forest is identical
        for serial, thread, and process backends under the same seed.
        """
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features, "X")
        y = check_binary_labels(y, n_rows=X.shape[0])
        if X.shape[0] == 0:
            return self
        self.n_samples_seen += X.shape[0]
        self._map_fit(X, np.asarray(y, dtype=np.int64), chunk_size)
        return self

    # ------------------------------------------------------------- prediction
    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """Positive score per row (mean posterior, or vote fraction)."""
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features, "X")
        with self.tracer.span("forest.predict", items=X.shape[0]):
            groups = split_work(
                self.trees, getattr(self._executor, "n_workers", 1)
            )
            payloads = [(group, X, self.vote) for group in groups]
            partials = self._executor.map(_score_trees, payloads)
            return np.sum(np.vstack(partials), axis=0) / self.n_trees

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``(n, 2)`` class probabilities."""
        p1 = self.predict_score(X)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at a score threshold."""
        return (self.predict_score(X) >= threshold).astype(np.int8)

    def predict_one(self, x: np.ndarray) -> float:
        """Score a single sample (the Algorithm-2 per-snapshot path).

        Bit-identical to ``predict_score(x[None, :])[0]`` for both vote
        modes: per-tree scores come from the same compiled snapshots,
        the hard-vote boundary is the same strict ``> 0.5``, and the
        reduction is the same ``(T, 1)`` column sum divided by
        ``n_trees`` (asserted in ``tests/test_predict_contract.py``).
        """
        x = np.asarray(x, dtype=np.float64)
        with self.tracer.span("forest.predict", items=1):
            hard = self.vote == "hard"
            p = np.empty((self.n_trees, 1), dtype=np.float64)
            for i, slot in enumerate(self.slots):
                s = slot.tree.predict_one(x)
                p[i, 0] = (1.0 if s > 0.5 else 0.0) if hard else s
            return float(np.sum(p, axis=0)[0] / self.n_trees)

    def compile(self, *, laplace: float = 1.0) -> "OnlineRandomForest":
        """Warm every tree's compiled inference snapshot; returns self.

        Prediction compiles lazily anyway — calling this up front moves
        the one-off array materialization out of the first scored
        request (e.g. after a checkpoint restore or before latency-
        sensitive serving).  Representation-only: scores are unchanged.
        """
        for slot in self.slots:
            slot.tree.compile(laplace=laplace)
        return self

    # ------------------------------------------------------------- inspection
    def tree_ages(self) -> np.ndarray:
        """Weighted samples folded into each tree (AGE_t)."""
        return np.array([slot.tree.age for slot in self.slots])

    def oobe_values(self) -> np.ndarray:
        """Current balanced OOBE of each tree."""
        return np.array([slot.tracker.value() for slot in self.slots])

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalized online Gini importance, accumulated at every split.

        Each split credits its feature with ``|D| · ΔG`` (the weighted
        impurity decrease at split time); the forest view is the mean
        over trees, normalized to sum to 1 (all-zero before any split).
        """
        total = np.sum([slot.tree.importance_ for slot in self.slots], axis=0)
        s = total.sum()
        return total / s if s > 0 else total

    def stats(self) -> dict:
        """One-line health summary for logs and notebooks."""
        return {
            "n_samples_seen": self.n_samples_seen,
            "n_replacements": self.n_replacements,
            "mean_tree_age": float(self.tree_ages().mean()),
            "mean_oobe": float(self.oobe_values().mean()),
            "total_nodes": int(sum(s.tree.n_nodes for s in self.slots)),
            "mean_depth": float(np.mean([s.tree.depth for s in self.slots])),
        }
