"""Online Random Forest — Algorithm 1 of the paper.

The forest maintains T independent online trees.  Per arriving labeled
sample ⟨x, y⟩ it draws, for every tree, an update multiplicity
k ~ Poisson(λp or λn) (Eq. 3).  Trees with k > 0 fold the sample in k
times (splitting when the α/β condition fires); trees with k = 0 treat
the sample as out-of-bag, update their OOBE, and are discarded and
regrown when decayed (OOBE > θ_OOBE and AGE > θ_AGE).

Trees are mutually independent, so ``partial_fit`` and ``predict_score``
map over a :class:`~repro.parallel.TreeExecutor` when one is supplied.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.online_tree import OnlineDecisionTree
from repro.core.oobe import OOBETracker
from repro.core.poisson import ImbalanceBagger
from repro.parallel.chunking import split_work
from repro.parallel.pool import SerialExecutor, TreeExecutor
from repro.utils.rng import RngFactory, SeedLike
from repro.utils.validation import (
    check_array_2d,
    check_binary_labels,
    check_feature_count,
    check_in_range,
    check_positive,
)


class OnlineRandomForest:
    """ORF classifier for streaming, heavily imbalanced binary data.

    Parameters (paper symbols in parentheses)
    ----------
    n_features:
        Input dimensionality.
    n_trees:
        Ensemble size (T; the paper uses 30).
    n_tests:
        Candidate random tests per leaf (N).
    min_parent_size / min_gain:
        Split gates (α = 200, β = 0.1 in the paper).
    lambda_pos / lambda_neg:
        Class-specific online-bagging rates (λp = 1, λn = 0.02).
    oobe_threshold / age_threshold:
        Tree-decay gates (θ_OOBE, θ_AGE).  Age is counted in weighted
        samples folded into the tree.  Set ``oobe_threshold=None`` to
        disable tree replacement entirely (ablation A1).
    vote:
        ``"soft"`` — average leaf posteriors (granular scores for FAR
        thresholding); ``"hard"`` — fraction of trees voting positive
        (the literal "mode of the classes" of §3.1).
    max_depth, split_check_interval, feature_ranges:
        Forwarded to every tree (see :class:`OnlineDecisionTree`).
    executor:
        Optional :class:`TreeExecutor`; trees are mapped over it in
        groups for batch prediction and stream updates.
    """

    def __init__(
        self,
        n_features: int,
        *,
        n_trees: int = 25,
        n_tests: int = 40,
        min_parent_size: float = 200.0,
        min_gain: float = 0.1,
        lambda_pos: float = 1.0,
        lambda_neg: float = 0.02,
        oobe_threshold: Optional[float] = 0.25,
        age_threshold: float = 2000.0,
        oobe_decay: float = 0.01,
        oobe_min_observations: int = 50,
        vote: str = "soft",
        max_depth: int = 20,
        split_check_interval: int = 1,
        feature_ranges: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        executor: Optional[TreeExecutor] = None,
    ) -> None:
        check_positive(n_features, "n_features")
        check_positive(n_trees, "n_trees")
        if oobe_threshold is not None:
            check_in_range(oobe_threshold, "oobe_threshold", 0.0, 1.0)
        check_positive(age_threshold, "age_threshold", strict=False)
        if vote not in ("soft", "hard"):
            raise ValueError(f"vote must be 'soft' or 'hard', got {vote!r}")

        self.n_features = int(n_features)
        self.n_trees = int(n_trees)
        self.n_tests = int(n_tests)
        self.min_parent_size = float(min_parent_size)
        self.min_gain = float(min_gain)
        self.oobe_threshold = oobe_threshold
        self.age_threshold = float(age_threshold)
        self.oobe_decay = float(oobe_decay)
        self.oobe_min_observations = int(oobe_min_observations)
        self.vote = vote
        self.max_depth = int(max_depth)
        self.split_check_interval = int(split_check_interval)
        self.feature_ranges = feature_ranges

        self._rng_factory = RngFactory(seed)
        self.bagger = ImbalanceBagger(
            lambda_pos, lambda_neg, seed=self._rng_factory.make()
        )
        self.trees: List[OnlineDecisionTree] = [
            self._new_tree() for _ in range(self.n_trees)
        ]
        self.trackers: List[OOBETracker] = [
            OOBETracker(
                decay=self.oobe_decay, min_observations=self.oobe_min_observations
            )
            for _ in range(self.n_trees)
        ]
        self._executor = executor or SerialExecutor()
        #: lifetime counters (inspection / ablation instrumentation)
        self.n_samples_seen = 0
        self.n_replacements = 0

    # --------------------------------------------------------------- plumbing
    def _new_tree(self) -> OnlineDecisionTree:
        return OnlineDecisionTree(
            self.n_features,
            n_tests=self.n_tests,
            min_parent_size=self.min_parent_size,
            min_gain=self.min_gain,
            max_depth=self.max_depth,
            feature_ranges=self.feature_ranges,
            split_check_interval=self.split_check_interval,
            seed=self._rng_factory.make(),
        )

    @property
    def lambda_pos(self) -> float:
        """Poisson rate applied to positive samples (Eq. 3)."""
        return self.bagger.lambda_pos

    @property
    def lambda_neg(self) -> float:
        """Poisson rate applied to negative samples (Eq. 3)."""
        return self.bagger.lambda_neg

    # ----------------------------------------------------------------- update
    def update(self, x: np.ndarray, y: int) -> None:
        """Fold one labeled sample into the forest (Algorithm 1)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_features,):
            raise ValueError(
                f"x must have shape ({self.n_features},), got {x.shape}"
            )
        if y not in (0, 1):
            raise ValueError(f"y must be 0 or 1, got {y!r}")
        self.n_samples_seen += 1
        ks = self.bagger.draw(y, self.n_trees)
        for t in range(self.n_trees):
            k = ks[t]
            tree = self.trees[t]
            if k > 0:
                for _ in range(k):
                    tree.update(x, y)
            else:
                # out-of-bag: score the sample, update OOBE, maybe replace
                tracker = self.trackers[t]
                pred = 1 if tree.predict_one(x) > 0.5 else 0
                tracker.observe(y, pred)
                if self.oobe_threshold is not None and tracker.is_decayed(
                    tree.age,
                    oobe_threshold=self.oobe_threshold,
                    age_threshold=self.age_threshold,
                ):
                    self.trees[t] = self._new_tree()
                    tracker.reset()
                    self.n_replacements += 1

    def partial_fit(self, X, y, *, chunk_size: int = 0) -> "OnlineRandomForest":
        """Stream a batch of labeled samples, in row order; returns self.

        ``chunk_size = 0`` (default) replays Algorithm 1 exactly, sample
        by sample.  A positive ``chunk_size`` switches to the mini-batch
        fast path: per chunk and per tree, Poisson multiplicities are
        drawn vectorized, in-bag rows are bulk-routed and bulk-folded
        into leaf statistics (splits evaluated at chunk boundaries), and
        out-of-bag rows update the OOBE via one batch prediction and a
        closed-form EWMA.  Decay checks run once per tree per chunk.
        Semantics relax slightly (splits/replacements can lag by up to
        one chunk) in exchange for a large constant-factor speedup on
        negative-heavy streams — see the A8 throughput bench.
        """
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features, "X")
        y = check_binary_labels(y, n_rows=X.shape[0])
        if chunk_size <= 0:
            for i in range(X.shape[0]):
                self.update(X[i], int(y[i]))
            return self

        lam = np.where(y == 1, self.bagger.lambda_pos, self.bagger.lambda_neg)
        rng = self.bagger._rng
        for start in range(0, X.shape[0], chunk_size):
            sl = slice(start, min(start + chunk_size, X.shape[0]))
            Xc, yc, lamc = X[sl], y[sl], lam[sl]
            self.n_samples_seen += Xc.shape[0]
            for t in range(self.n_trees):
                tree = self.trees[t]
                ks = rng.poisson(lamc)
                in_bag = ks > 0
                if in_bag.any():
                    tree.update_batch(
                        Xc[in_bag], yc[in_bag], ks[in_bag].astype(np.float64)
                    )
                oob = ~in_bag
                if oob.any():
                    preds = (tree.predict_batch(Xc[oob]) > 0.5).astype(np.int8)
                    tracker = self.trackers[t]
                    tracker.observe_batch(yc[oob], preds)
                    if self.oobe_threshold is not None and tracker.is_decayed(
                        tree.age,
                        oobe_threshold=self.oobe_threshold,
                        age_threshold=self.age_threshold,
                    ):
                        self.trees[t] = self._new_tree()
                        tracker.reset()
                        self.n_replacements += 1
        return self

    # ------------------------------------------------------------- prediction
    def predict_score(self, X) -> np.ndarray:
        """Positive score per row (mean posterior, or vote fraction)."""
        X = check_array_2d(X, "X")
        check_feature_count(X, self.n_features, "X")
        groups = split_work(self.trees, getattr(self._executor, "n_workers", 1))

        def score_group(trees: List[OnlineDecisionTree]) -> np.ndarray:
            acc = np.zeros(X.shape[0], dtype=np.float64)
            for tree in trees:
                p = tree.predict_batch(X)
                acc += (p > 0.5).astype(np.float64) if self.vote == "hard" else p
            return acc

        partials = self._executor.map(score_group, groups)
        return np.sum(partials, axis=0) / self.n_trees

    def predict_proba(self, X) -> np.ndarray:
        """``(n, 2)`` class probabilities."""
        p1 = self.predict_score(X)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X, *, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at a score threshold."""
        return (self.predict_score(X) >= threshold).astype(np.int8)

    def predict_one(self, x: np.ndarray) -> float:
        """Score a single sample (the Algorithm-2 per-snapshot path)."""
        x = np.asarray(x, dtype=np.float64)
        if self.vote == "hard":
            votes = sum(1 for tree in self.trees if tree.predict_one(x) > 0.5)
            return votes / self.n_trees
        return float(np.mean([tree.predict_one(x) for tree in self.trees]))

    # ------------------------------------------------------------- inspection
    def tree_ages(self) -> np.ndarray:
        """Weighted samples folded into each tree (AGE_t)."""
        return np.array([tree.age for tree in self.trees])

    def oobe_values(self) -> np.ndarray:
        """Current balanced OOBE of each tree."""
        return np.array([tr.value() for tr in self.trackers])

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalized online Gini importance, accumulated at every split.

        Each split credits its feature with ``|D| · ΔG`` (the weighted
        impurity decrease at split time); the forest view is the mean
        over trees, normalized to sum to 1 (all-zero before any split).
        """
        total = np.sum([t.importance_ for t in self.trees], axis=0)
        s = total.sum()
        return total / s if s > 0 else total

    def stats(self) -> dict:
        """One-line health summary for logs and notebooks."""
        return {
            "n_samples_seen": self.n_samples_seen,
            "n_replacements": self.n_replacements,
            "mean_tree_age": float(self.tree_ages().mean()),
            "mean_oobe": float(self.oobe_values().mean()),
            "total_nodes": int(sum(t.n_nodes for t in self.trees)),
            "mean_depth": float(np.mean([t.depth for t in self.trees])),
        }
