"""Multi-level health assessment — the paper's related-work extension.

The paper's group later reformulated disk failure prediction as
*health-degree* assessment (Xu et al. RNN, Li et al. GBRT): instead of a
binary will-it-fail-within-7-days answer, the model places a drive on a
residual-life scale (fails within a week / within a month / ... /
healthy), which lets operators order migrations by urgency.

This module composes that capability from the paper's own primitive: a
bank of one-vs-rest Online Random Forests, one per residual-life
horizon.  Forest k answers "will this drive fail within horizon_k
days?"; the assessed health level is the most urgent horizon whose
forest fires.  Every forest keeps the ORF's online properties (Poisson
imbalance bagging, OOBE tree replacement), so the assessor inherits the
model-aging resistance of the binary predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.forest import OnlineRandomForest
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array_2d, check_positive

#: residual-life boundaries (days) used by the related work: within a
#: week, within two weeks, within a month, within a quarter.
DEFAULT_HORIZONS: Tuple[int, ...] = (7, 14, 30, 90)


@dataclass(frozen=True)
class HealthLevels:
    """Discretization of residual life into ordered health levels.

    Level 0 is the most urgent ("fails within horizons[0] days"); level
    ``len(horizons)`` means "healthy at every horizon".
    """

    horizons: Tuple[int, ...] = DEFAULT_HORIZONS

    def __post_init__(self) -> None:
        if not self.horizons:
            raise ValueError("at least one horizon is required")
        if any(h <= 0 for h in self.horizons):
            raise ValueError("horizons must be positive")
        if list(self.horizons) != sorted(set(self.horizons)):
            raise ValueError("horizons must be strictly increasing")

    @property
    def n_levels(self) -> int:
        """Number of health levels (horizons + the healthy level)."""
        return len(self.horizons) + 1

    def level_of(self, days_to_failure: float) -> int:
        """Health level of a drive that fails in *days_to_failure* days.

        ``inf`` (a good drive) maps to the healthiest level.
        """
        if days_to_failure < 0:
            raise ValueError("days_to_failure must be >= 0")
        for k, horizon in enumerate(self.horizons):
            if days_to_failure < horizon:
                return k
        return len(self.horizons)

    def levels_of(self, days_to_failure: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`level_of`."""
        dtf = np.asarray(days_to_failure, dtype=np.float64)
        return np.searchsorted(np.asarray(self.horizons, dtype=np.float64), dtf, "right")


class OnlineHealthAssessor:
    """One-vs-rest ORF bank over residual-life horizons.

    Parameters
    ----------
    n_features:
        Input dimensionality.
    levels:
        The residual-life discretization.
    thresholds:
        Per-horizon alarm thresholds (defaults to 0.5 each).
    orf_params:
        Keyword arguments forwarded to every underlying
        :class:`OnlineRandomForest`.  ``lambda_neg`` scales up with the
        horizon automatically (longer horizons have more positives, so
        less aggressive imbalance correction is needed) unless given.
    """

    def __init__(
        self,
        n_features: int,
        *,
        levels: Optional[HealthLevels] = None,
        thresholds: Optional[Sequence[float]] = None,
        seed: SeedLike = None,
        **orf_params: Any,
    ) -> None:
        check_positive(n_features, "n_features")
        self.levels = levels or HealthLevels()
        self.n_features = int(n_features)
        rng = as_generator(seed)
        if thresholds is None:
            thresholds = [0.5] * len(self.levels.horizons)
        if len(thresholds) != len(self.levels.horizons):
            raise ValueError("one threshold per horizon is required")
        self.thresholds = [float(t) for t in thresholds]

        base_lambda_neg = orf_params.pop("lambda_neg", 0.02)
        self.forests: List[OnlineRandomForest] = []
        for k, horizon in enumerate(self.levels.horizons):
            params = dict(orf_params)
            # longer horizons label more samples positive → relax λn
            params["lambda_neg"] = min(
                1.0, base_lambda_neg * horizon / self.levels.horizons[0]
            )
            self.forests.append(
                OnlineRandomForest(
                    self.n_features, seed=rng.spawn(1)[0], **params
                )
            )

    # ----------------------------------------------------------------- train
    def update(self, x: np.ndarray, days_to_failure: float) -> None:
        """Fold one sample with *known* residual life into every forest.

        In deployment, residual life becomes known exactly the way the
        binary labels do (Figure 1): a failure stamps the queued samples
        with their true distance-to-death; survival past a horizon
        confirms that horizon's negative.
        """
        for horizon, forest in zip(self.levels.horizons, self.forests):
            forest.update(x, int(days_to_failure < horizon))

    def partial_fit(self, X: np.ndarray, days_to_failure: np.ndarray) -> "OnlineHealthAssessor":
        """Stream a batch of (sample, residual life) pairs in row order."""
        X = check_array_2d(X, "X")
        dtf = np.asarray(days_to_failure, dtype=np.float64)
        if dtf.shape != (X.shape[0],):
            raise ValueError("days_to_failure must have one entry per row")
        for i in range(X.shape[0]):
            self.update(X[i], float(dtf[i]))
        return self

    # ----------------------------------------------------------------- score
    def horizon_scores(self, X: np.ndarray) -> np.ndarray:
        """``(n_rows, n_horizons)`` matrix of per-horizon failure scores."""
        X = check_array_2d(X, "X")
        return np.column_stack([f.predict_score(X) for f in self.forests])

    def assess(self, X: np.ndarray) -> np.ndarray:
        """Health level per row: the most urgent horizon whose forest fires.

        Rows where no forest fires get the healthiest level.
        """
        scores = self.horizon_scores(X)
        fired = scores >= np.asarray(self.thresholds)[None, :]
        levels = np.full(scores.shape[0], len(self.levels.horizons), dtype=np.int64)
        for k in range(len(self.levels.horizons) - 1, -1, -1):
            levels[fired[:, k]] = k
        return levels

    def assess_one(self, x: np.ndarray) -> int:
        """Health level of a single sample."""
        return int(self.assess(np.asarray(x, dtype=np.float64).reshape(1, -1))[0])


def health_level_accuracy(
    predicted: np.ndarray, actual: np.ndarray, *, tolerance: int = 0
) -> float:
    """Fraction of samples assessed within ±tolerance levels of the truth.

    ``tolerance=0`` is the exact ACC metric of the residual-life papers;
    ``tolerance=1`` is the common relaxed variant (off-by-one urgency is
    operationally acceptable).
    """
    predicted = np.asarray(predicted)
    actual = np.asarray(actual)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual must align")
    if predicted.size == 0:
        return float("nan")
    return float((np.abs(predicted - actual) <= tolerance).mean())
