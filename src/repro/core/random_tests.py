"""Random candidate tests for online tree nodes.

Every fresh leaf draws a set of N random tests of the paper's form
``SMART_i > θ`` (§3.1): a feature index and a threshold sampled uniformly
from that feature's value range.  The leaf then accumulates, for every
test, the class histogram of the samples falling on each side; when the
leaf splits, the highest-gain test becomes the decision function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RandomTestSet:
    """N candidate tests: ``x[features[i]] > thresholds[i]``."""

    features: np.ndarray  # (N,) int32
    thresholds: np.ndarray  # (N,) float64

    @property
    def n_tests(self) -> int:
        """Number of candidate tests in the set."""
        return int(self.features.shape[0])

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Side taken by sample *x* under every test: 1 = right (>θ)."""
        return (x[self.features] > self.thresholds).astype(np.int8)

    def evaluate_batch(self, X: np.ndarray) -> np.ndarray:
        """Sides for a batch: ``(n_rows, N)`` int8, 1 = right."""
        return (X[:, self.features] > self.thresholds[None, :]).astype(np.int8)


def default_feature_ranges(n_features: int) -> np.ndarray:
    """Unit ranges — correct for the library's min-max scaled features."""
    ranges = np.empty((n_features, 2), dtype=np.float64)
    ranges[:, 0] = 0.0
    ranges[:, 1] = 1.0
    return ranges


def validate_feature_ranges(ranges: np.ndarray, n_features: int) -> np.ndarray:
    """Check an (n_features, 2) array of [low, high) threshold ranges."""
    ranges = np.asarray(ranges, dtype=np.float64)
    if ranges.shape != (n_features, 2):
        raise ValueError(
            f"feature_ranges must have shape ({n_features}, 2), got {ranges.shape}"
        )
    if np.any(ranges[:, 0] > ranges[:, 1]):
        raise ValueError("feature_ranges must satisfy low <= high")
    return ranges


def make_random_tests(
    rng: SeedLike,
    n_tests: int,
    n_features: int,
    feature_ranges: np.ndarray,
) -> RandomTestSet:
    """Draw N tests: feature uniform over columns, θ uniform over its range.

    Degenerate ranges (low == high) produce a threshold at that point —
    the test then sends everything left, carries zero gain, and is never
    selected; no special-casing needed.
    """
    check_positive(n_tests, "n_tests")
    check_positive(n_features, "n_features")
    gen = as_generator(rng)
    features = gen.integers(0, n_features, size=n_tests, dtype=np.int32)
    low = feature_ranges[features, 0]
    high = feature_ranges[features, 1]
    thresholds = gen.uniform(low, high)
    # uniform(l, l) raises in some numpy versions only when l > h; equal
    # bounds return l, which is what we want for degenerate ranges.
    return RandomTestSet(features=features, thresholds=thresholds)
