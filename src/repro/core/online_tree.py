"""One online decision tree (the f_t of Algorithm 1).

The tree is stored struct-of-arrays (parallel Python lists of scalars for
O(1) append on split).  Leaves own a :class:`~repro.core.node_stats.
LeafStats`; a leaf splits when it has seen at least ``min_parent_size``
(α) samples and its best candidate test achieves Gini gain at least
``min_gain`` (β) — exactly the condition of §3.1.

Inference additionally runs through a **compiled** snapshot
(:class:`CompiledTree`): :meth:`OnlineDecisionTree.compile` freezes the
structure into contiguous NumPy arrays plus a precomputed per-node leaf
posterior, so batch routing is level-synchronous vectorized indexing
instead of a Python loop over nodes, and per-sample scoring is a flat
list walk plus one posterior lookup.  The snapshot is cached on the
tree, patched incrementally when leaf statistics change, and rebuilt
only when the structure changes (a split) — see :meth:`compile`.
Compilation is representation-only: compiled and interpreted inference
are bit-identical (asserted in ``tests/core/test_compiled.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.node_stats import LeafStats
from repro.core.random_tests import (
    RandomTestSet,
    make_random_tests,
    validate_feature_ranges,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


@dataclass
class CompiledTree:
    """Flat-array inference snapshot of one :class:`OnlineDecisionTree`.

    The structure arrays are frozen at compile time (a split invalidates
    the whole snapshot); the posterior entries track live leaf updates
    through the ``dirty`` set, flushed by :meth:`patch` on the next
    :meth:`OnlineDecisionTree.compile` access.

    The Python-list mirrors (``*_l``) exist because scalar routing in
    CPython is measurably faster over plain lists than over ndarray
    scalar indexing; both views are built from the same data, so the
    vectorized and scalar routers are bit-identical by construction.
    """

    feature: np.ndarray  # (n_nodes,) int32; -1 marks a leaf
    threshold: np.ndarray  # (n_nodes,) float64
    left: np.ndarray  # (n_nodes,) int32
    right: np.ndarray  # (n_nodes,) int32
    leaf_posterior: np.ndarray  # (n_nodes,) float64; NaN on branch nodes
    laplace: float
    feature_l: List[int]
    threshold_l: List[float]
    left_l: List[int]
    right_l: List[int]
    posterior_l: List[float]
    #: leaf ids whose statistics changed since the posterior was computed
    dirty: Set[int] = field(default_factory=set)

    @property
    def n_nodes(self) -> int:
        """Total node count of the snapshot."""
        return int(self.feature.shape[0])

    def route_one(self, x: np.ndarray) -> int:
        """Leaf id one sample routes to (scalar walk over the mirrors)."""
        feature, threshold = self.feature_l, self.threshold_l
        left, right = self.left_l, self.right_l
        nid = 0
        f = feature[0]
        while f >= 0:
            nid = right[nid] if x[f] > threshold[nid] else left[nid]
            f = feature[nid]
        return nid

    def route_batch(self, X: np.ndarray) -> np.ndarray:
        """Leaf id per row by level-synchronous vectorized routing.

        Each iteration advances every still-internal row one level, so
        the Python-loop count is the tree *depth*, not the node count —
        the move that makes compiled batch inference fast on grown
        trees.
        """
        feature, threshold = self.feature, self.threshold
        left, right = self.left, self.right
        nid = np.zeros(X.shape[0], dtype=np.int64)
        rows = np.nonzero(feature[nid] >= 0)[0]
        while rows.size:
            cur = nid[rows]
            f = feature[cur]
            go_right = X[rows, f] > threshold[cur]
            nxt = np.where(go_right, right[cur], left[cur])
            nid[rows] = nxt
            rows = rows[feature[nxt] >= 0]
        return nid

    def predict_one(self, x: np.ndarray) -> float:
        """P(y = 1) for one sample via the compiled posterior."""
        return self.posterior_l[self.route_one(x)]

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """P(y = 1) per row: vectorized routing + one posterior gather."""
        return self.leaf_posterior[self.route_batch(X)]

    def patch(self, leaf_stats: Dict[int, LeafStats]) -> None:
        """Recompute the posterior of every dirty leaf from live stats."""
        for nid in self.dirty:
            p = leaf_stats[nid].posterior_positive(laplace=self.laplace)
            self.leaf_posterior[nid] = p
            self.posterior_l[nid] = p
        self.dirty.clear()


class OnlineDecisionTree:
    """A single randomized tree grown from a sample stream.

    Parameters
    ----------
    n_features:
        Dimensionality of the input vectors.
    n_tests:
        Number of candidate random tests per leaf (the paper's N).
    min_parent_size:
        α — minimum weighted samples a leaf must see before splitting.
    min_gain:
        β — minimum Gini gain a split must achieve.
    max_depth:
        Depth cap; leaves at the cap stop drawing candidate tests and
        only accumulate class counts.
    feature_ranges:
        ``(n_features, 2)`` threshold sampling ranges; defaults to [0, 1]
        per feature (inputs are min-max scaled upstream).
    split_check_interval:
        Evaluate the split condition every k-th update once the leaf is
        past α (1 = after every update, the paper's literal rule; larger
        values amortize the gain computation on hot leaves).  The gate
        counts *update events* (``LeafStats.n_updates``), not weighted
        mass, so fractional weights cannot skip or repeat the schedule.
    """

    def __init__(
        self,
        n_features: int,
        *,
        n_tests: int = 40,
        min_parent_size: float = 200.0,
        min_gain: float = 0.1,
        max_depth: int = 20,
        feature_ranges: Optional[np.ndarray] = None,
        split_check_interval: int = 1,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_features, "n_features")
        check_positive(n_tests, "n_tests")
        check_positive(min_parent_size, "min_parent_size")
        check_positive(min_gain, "min_gain", strict=False)
        check_positive(max_depth, "max_depth")
        check_positive(split_check_interval, "split_check_interval")
        self.n_features = int(n_features)
        self.n_tests = int(n_tests)
        self.min_parent_size = float(min_parent_size)
        self.min_gain = float(min_gain)
        self.max_depth = int(max_depth)
        self.split_check_interval = int(split_check_interval)
        if feature_ranges is None:
            ranges = np.empty((n_features, 2), dtype=np.float64)
            ranges[:, 0], ranges[:, 1] = 0.0, 1.0
            self.feature_ranges = ranges
        else:
            self.feature_ranges = validate_feature_ranges(feature_ranges, n_features)
        self._rng = as_generator(seed)

        # struct-of-arrays node storage; -1 feature marks a leaf
        self._feature: List[int] = []
        self._threshold: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._depth: List[int] = []
        self._leaf_stats: Dict[int, LeafStats] = {}
        #: cached flat-array inference snapshot (None until compiled;
        #: invalidated by structure changes, patched on leaf updates)
        self._compiled: Optional[CompiledTree] = None

        #: weighted samples folded into this tree (its AGE in Algorithm 1)
        self.age = 0.0
        self.n_splits = 0
        #: accumulated |D|·ΔG per feature (online Gini importance)
        self.importance_ = np.zeros(self.n_features, dtype=np.float64)
        self._add_leaf(depth=0, prior_counts=None)

    # ------------------------------------------------------------- structure
    def _add_leaf(self, depth: int, prior_counts: Optional[np.ndarray]) -> int:
        nid = len(self._feature)
        self._feature.append(-1)
        self._threshold.append(np.nan)
        self._left.append(-1)
        self._right.append(-1)
        self._depth.append(depth)
        tests = (
            make_random_tests(
                self._rng, self.n_tests, self.n_features, self.feature_ranges
            )
            if depth < self.max_depth
            else None
        )
        self._leaf_stats[nid] = LeafStats(tests, prior_counts)
        return nid

    @property
    def n_nodes(self) -> int:
        """Total node count (branches + leaves)."""
        return len(self._feature)

    @property
    def n_leaves(self) -> int:
        """Current leaf count."""
        return len(self._leaf_stats)

    @property
    def depth(self) -> int:
        """Depth of the deepest node (root = 0)."""
        return max(self._depth) if self._depth else 0

    # the compiled snapshot is a cache: drop it from pickles so executor
    # payloads stay slim; workers rebuild lazily on first prediction
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    # ------------------------------------------------------------- compiled
    def compile(self, *, laplace: float = 1.0) -> CompiledTree:
        """Materialize (or fetch) the flat-array inference snapshot.

        The snapshot is cached on the tree and reused across calls:
        leaf-statistic updates only mark their leaf dirty (the posterior
        entry is re-patched here on the next access), while a structure
        change (:meth:`_split`) discards the cache entirely, so the next
        access rebuilds from the current node arrays.  Requesting a
        different ``laplace`` than the cached snapshot's also rebuilds.
        """
        c = self._compiled
        if c is None or c.laplace != laplace:
            feature = np.asarray(self._feature, dtype=np.int32)
            threshold = np.asarray(self._threshold, dtype=np.float64)
            left = np.asarray(self._left, dtype=np.int32)
            right = np.asarray(self._right, dtype=np.int32)
            posterior = np.full(feature.shape[0], np.nan, dtype=np.float64)
            for nid, stats in self._leaf_stats.items():
                posterior[nid] = stats.posterior_positive(laplace=laplace)
            c = CompiledTree(
                feature=feature,
                threshold=threshold,
                left=left,
                right=right,
                leaf_posterior=posterior,
                laplace=float(laplace),
                feature_l=list(self._feature),
                threshold_l=list(self._threshold),
                left_l=list(self._left),
                right_l=list(self._right),
                posterior_l=posterior.tolist(),
            )
            self._compiled = c
        elif c.dirty:
            c.patch(self._leaf_stats)
        return c

    # ----------------------------------------------------------------- route
    def find_leaf(self, x: np.ndarray) -> int:
        """Leaf id the sample routes to (the FindLeaf of Algorithm 1)."""
        c = self._compiled
        if c is not None:
            return c.route_one(x)
        feature, threshold = self._feature, self._threshold
        left, right = self._left, self._right
        nid = 0
        f = feature[0]
        while f >= 0:
            nid = right[nid] if x[f] > threshold[nid] else left[nid]
            f = feature[nid]
        return nid

    # ---------------------------------------------------------------- update
    def update(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        """Fold one labeled sample into the tree (UpdateNode + split check)."""
        self.age += weight
        nid = self.find_leaf(x)
        stats = self._leaf_stats[nid]
        stats.update(x, y, weight)
        c = self._compiled
        if c is not None:
            c.dirty.add(nid)
        self._maybe_split(nid, stats)

    def update_repeated(self, x: np.ndarray, y: int, k: int, weight: float = 1.0) -> None:
        """Fold one sample in *k* times (the k ~ Poisson multiplicity).

        Each repetition re-routes from the root: a split fired by an
        earlier repetition changes where the later ones land, exactly as
        in the sample-by-sample Algorithm 1.
        """
        for _ in range(k):
            self.update(x, y, weight)

    def _maybe_split(self, nid: int, stats: LeafStats) -> None:
        if stats.tests is None or stats.n_seen < self.min_parent_size:
            return
        if self.split_check_interval > 1 and (
            stats.n_updates % self.split_check_interval != 0
        ):
            return
        test_idx, gain = stats.best_split()
        if test_idx < 0 or gain < self.min_gain:
            return
        self._split(nid, stats, test_idx)

    def _split(self, nid: int, stats: LeafStats, test_idx: int) -> None:
        tests = stats.tests
        assert tests is not None  # callers gate on stats.tests
        gain = float(stats.gains()[test_idx])
        self.importance_[tests.features[test_idx]] += gain * stats.n_seen
        left_counts, right_counts = stats.child_counts(test_idx)
        depth = self._depth[nid]
        left_id = self._add_leaf(depth + 1, left_counts)
        right_id = self._add_leaf(depth + 1, right_counts)
        self._feature[nid] = int(tests.features[test_idx])
        self._threshold[nid] = float(tests.thresholds[test_idx])
        self._left[nid] = left_id
        self._right[nid] = right_id
        del self._leaf_stats[nid]
        self.n_splits += 1
        # structure changed: the compiled snapshot is stale as a whole
        self._compiled = None

    def route_batch(self, X: np.ndarray) -> np.ndarray:
        """Leaf id per row.

        Routes through the compiled snapshot when one is cached (the
        serving path keeps it warm); otherwise falls back to the
        interpreted group traversal — callers that never predict (pure
        training) pay no compilation churn.
        """
        c = self._compiled
        if c is not None:
            return c.route_batch(X)
        return self._route_batch_interpreted(X)

    def _route_batch_interpreted(self, X: np.ndarray) -> np.ndarray:
        """Reference batch router: per-node group traversal over the
        Python lists (one NumPy op per visited node)."""
        n = X.shape[0]
        out = np.empty(n, dtype=np.int64)
        stack: List[Tuple[int, np.ndarray]] = [(0, np.arange(n))]
        feature, threshold = self._feature, self._threshold
        while stack:
            nid, rows = stack.pop()
            if rows.size == 0:
                continue
            f = feature[nid]
            if f < 0:
                out[rows] = nid
                continue
            go_right = X[rows, f] > threshold[nid]
            stack.append((self._left[nid], rows[~go_right]))
            stack.append((self._right[nid], rows[go_right]))
        return out

    def update_batch(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray) -> None:
        """Mini-batch variant of :meth:`update`.

        Routes the whole batch against the *current* structure, bulk-updates
        each touched leaf, then evaluates splits once per touched leaf —
        i.e. splits are deferred to batch boundaries, a deliberate semantic
        relaxation of the per-sample algorithm (document at the forest
        level; per-sample exactness is available via ``update``).

        ``split_check_interval`` is honored at the same granularity: a
        touched leaf is only evaluated when this batch moved its update
        counter across a multiple of the interval, matching the
        per-sample schedule evaluated at batch boundaries (for
        single-row batches the two gates are identical).
        """
        if X.shape[0] == 0:
            return
        self.age += float(weights.sum())
        leaf_ids = self.route_batch(X)
        interval = self.split_check_interval
        c = self._compiled
        for nid in np.unique(leaf_ids):
            mask = leaf_ids == nid
            stats = self._leaf_stats[int(nid)]
            checks_before = stats.n_updates // interval
            stats.update_batch(X[mask], y[mask].astype(np.int64), weights[mask])
            if c is not None:
                c.dirty.add(int(nid))
            if stats.tests is None or stats.n_seen < self.min_parent_size:
                continue
            if stats.n_updates // interval == checks_before:
                continue  # no check point of the schedule crossed yet
            test_idx, gain = stats.best_split()
            if test_idx >= 0 and gain >= self.min_gain:
                self._split(int(nid), stats, test_idx)

    # ------------------------------------------------------------ prediction
    def predict_one(self, x: np.ndarray, *, laplace: float = 1.0) -> float:
        """P(y = 1) for one sample (compiled: flat walk + posterior lookup)."""
        return self.compile(laplace=laplace).predict_one(x)

    def predict_batch(self, X: np.ndarray, *, laplace: float = 1.0) -> np.ndarray:
        """P(y = 1) per row (compiled: vectorized routing + one gather)."""
        return self.compile(laplace=laplace).predict_batch(X)

    def _predict_one_interpreted(self, x: np.ndarray, *, laplace: float = 1.0) -> float:
        """Reference scalar scorer: list walk + live posterior."""
        feature, threshold = self._feature, self._threshold
        left, right = self._left, self._right
        nid = 0
        f = feature[0]
        while f >= 0:
            nid = right[nid] if x[f] > threshold[nid] else left[nid]
            f = feature[nid]
        return self._leaf_stats[nid].posterior_positive(laplace=laplace)

    def _predict_batch_interpreted(
        self, X: np.ndarray, *, laplace: float = 1.0
    ) -> np.ndarray:
        """Reference batch scorer: group traversal, then each reached
        leaf's posterior computed once and broadcast."""
        leaf_ids = self._route_batch_interpreted(X)
        out = np.empty(X.shape[0], dtype=np.float64)
        for nid in np.unique(leaf_ids):
            out[leaf_ids == nid] = self._leaf_stats[int(nid)].posterior_positive(
                laplace=laplace
            )
        return out

    # ----------------------------------------------------------- introspection
    def decision_path(self, x: np.ndarray) -> List[Tuple[int, int, float]]:
        """The (node, feature, threshold) chain a sample follows — the
        interpretability hook the paper cites as an ORF advantage."""
        path: List[Tuple[int, int, float]] = []
        nid = 0
        while self._feature[nid] >= 0:
            f, thr = self._feature[nid], self._threshold[nid]
            path.append((nid, f, thr))
            nid = self._right[nid] if x[f] > thr else self._left[nid]
        path.append((nid, -1, np.nan))
        return path
