"""One online decision tree (the f_t of Algorithm 1).

The tree is stored struct-of-arrays (parallel Python lists of scalars for
O(1) append on split; converted to NumPy views only for batch
prediction).  Leaves own a :class:`~repro.core.node_stats.LeafStats`; a
leaf splits when it has seen at least ``min_parent_size`` (α) samples and
its best candidate test achieves Gini gain at least ``min_gain`` (β) —
exactly the condition of §3.1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.node_stats import LeafStats
from repro.core.random_tests import (
    RandomTestSet,
    make_random_tests,
    validate_feature_ranges,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


class OnlineDecisionTree:
    """A single randomized tree grown from a sample stream.

    Parameters
    ----------
    n_features:
        Dimensionality of the input vectors.
    n_tests:
        Number of candidate random tests per leaf (the paper's N).
    min_parent_size:
        α — minimum weighted samples a leaf must see before splitting.
    min_gain:
        β — minimum Gini gain a split must achieve.
    max_depth:
        Depth cap; leaves at the cap stop drawing candidate tests and
        only accumulate class counts.
    feature_ranges:
        ``(n_features, 2)`` threshold sampling ranges; defaults to [0, 1]
        per feature (inputs are min-max scaled upstream).
    split_check_interval:
        Evaluate the split condition every k-th update once the leaf is
        past α (1 = after every update, the paper's literal rule; larger
        values amortize the gain computation on hot leaves).
    """

    def __init__(
        self,
        n_features: int,
        *,
        n_tests: int = 40,
        min_parent_size: float = 200.0,
        min_gain: float = 0.1,
        max_depth: int = 20,
        feature_ranges: Optional[np.ndarray] = None,
        split_check_interval: int = 1,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_features, "n_features")
        check_positive(n_tests, "n_tests")
        check_positive(min_parent_size, "min_parent_size")
        check_positive(min_gain, "min_gain", strict=False)
        check_positive(max_depth, "max_depth")
        check_positive(split_check_interval, "split_check_interval")
        self.n_features = int(n_features)
        self.n_tests = int(n_tests)
        self.min_parent_size = float(min_parent_size)
        self.min_gain = float(min_gain)
        self.max_depth = int(max_depth)
        self.split_check_interval = int(split_check_interval)
        if feature_ranges is None:
            ranges = np.empty((n_features, 2), dtype=np.float64)
            ranges[:, 0], ranges[:, 1] = 0.0, 1.0
            self.feature_ranges = ranges
        else:
            self.feature_ranges = validate_feature_ranges(feature_ranges, n_features)
        self._rng = as_generator(seed)

        # struct-of-arrays node storage; -1 feature marks a leaf
        self._feature: List[int] = []
        self._threshold: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._depth: List[int] = []
        self._leaf_stats: Dict[int, LeafStats] = {}

        #: weighted samples folded into this tree (its AGE in Algorithm 1)
        self.age = 0.0
        self.n_splits = 0
        #: accumulated |D|·ΔG per feature (online Gini importance)
        self.importance_ = np.zeros(self.n_features, dtype=np.float64)
        self._add_leaf(depth=0, prior_counts=None)

    # ------------------------------------------------------------- structure
    def _add_leaf(self, depth: int, prior_counts: Optional[np.ndarray]) -> int:
        nid = len(self._feature)
        self._feature.append(-1)
        self._threshold.append(np.nan)
        self._left.append(-1)
        self._right.append(-1)
        self._depth.append(depth)
        tests = (
            make_random_tests(
                self._rng, self.n_tests, self.n_features, self.feature_ranges
            )
            if depth < self.max_depth
            else None
        )
        self._leaf_stats[nid] = LeafStats(tests, prior_counts)
        return nid

    @property
    def n_nodes(self) -> int:
        """Total node count (branches + leaves)."""
        return len(self._feature)

    @property
    def n_leaves(self) -> int:
        """Current leaf count."""
        return len(self._leaf_stats)

    @property
    def depth(self) -> int:
        """Depth of the deepest node (root = 0)."""
        return max(self._depth) if self._depth else 0

    # ----------------------------------------------------------------- route
    def find_leaf(self, x: np.ndarray) -> int:
        """Leaf id the sample routes to (the FindLeaf of Algorithm 1)."""
        feature, threshold = self._feature, self._threshold
        left, right = self._left, self._right
        nid = 0
        f = feature[0]
        while f >= 0:
            nid = right[nid] if x[f] > threshold[nid] else left[nid]
            f = feature[nid]
        return nid

    # ---------------------------------------------------------------- update
    def update(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        """Fold one labeled sample into the tree (UpdateNode + split check)."""
        self.age += weight
        nid = self.find_leaf(x)
        stats = self._leaf_stats[nid]
        stats.update(x, y, weight)
        self._maybe_split(nid, stats)

    def update_repeated(self, x: np.ndarray, y: int, k: int, weight: float = 1.0) -> None:
        """Fold one sample in *k* times (the k ~ Poisson multiplicity).

        Each repetition re-routes from the root: a split fired by an
        earlier repetition changes where the later ones land, exactly as
        in the sample-by-sample Algorithm 1.
        """
        for _ in range(k):
            self.update(x, y, weight)

    def _maybe_split(self, nid: int, stats: LeafStats) -> None:
        if stats.tests is None or stats.n_seen < self.min_parent_size:
            return
        if self.split_check_interval > 1 and (
            int(stats.n_seen) % self.split_check_interval != 0
        ):
            return
        test_idx, gain = stats.best_split()
        if test_idx < 0 or gain < self.min_gain:
            return
        self._split(nid, stats, test_idx)

    def _split(self, nid: int, stats: LeafStats, test_idx: int) -> None:
        tests = stats.tests
        gain = float(stats.gains()[test_idx])
        self.importance_[tests.features[test_idx]] += gain * stats.n_seen
        left_counts, right_counts = stats.child_counts(test_idx)
        depth = self._depth[nid]
        left_id = self._add_leaf(depth + 1, left_counts)
        right_id = self._add_leaf(depth + 1, right_counts)
        self._feature[nid] = int(tests.features[test_idx])
        self._threshold[nid] = float(tests.thresholds[test_idx])
        self._left[nid] = left_id
        self._right[nid] = right_id
        del self._leaf_stats[nid]
        self.n_splits += 1

    def route_batch(self, X: np.ndarray) -> np.ndarray:
        """Leaf id per row, by vectorized group traversal."""
        n = X.shape[0]
        out = np.empty(n, dtype=np.int64)
        stack: List[Tuple[int, np.ndarray]] = [(0, np.arange(n))]
        feature, threshold = self._feature, self._threshold
        while stack:
            nid, rows = stack.pop()
            if rows.size == 0:
                continue
            f = feature[nid]
            if f < 0:
                out[rows] = nid
                continue
            go_right = X[rows, f] > threshold[nid]
            stack.append((self._left[nid], rows[~go_right]))
            stack.append((self._right[nid], rows[go_right]))
        return out

    def update_batch(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray) -> None:
        """Mini-batch variant of :meth:`update`.

        Routes the whole batch against the *current* structure, bulk-updates
        each touched leaf, then evaluates splits once per touched leaf —
        i.e. splits are deferred to batch boundaries, a deliberate semantic
        relaxation of the per-sample algorithm (document at the forest
        level; per-sample exactness is available via ``update``).
        """
        if X.shape[0] == 0:
            return
        self.age += float(weights.sum())
        leaf_ids = self.route_batch(X)
        for nid in np.unique(leaf_ids):
            mask = leaf_ids == nid
            stats = self._leaf_stats[int(nid)]
            stats.update_batch(X[mask], y[mask].astype(np.int64), weights[mask])
            if stats.tests is not None and stats.n_seen >= self.min_parent_size:
                test_idx, gain = stats.best_split()
                if test_idx >= 0 and gain >= self.min_gain:
                    self._split(int(nid), stats, test_idx)

    # ------------------------------------------------------------ prediction
    def predict_one(self, x: np.ndarray, *, laplace: float = 1.0) -> float:
        """P(y = 1) for one sample."""
        return self._leaf_stats[self.find_leaf(x)].posterior_positive(laplace=laplace)

    def predict_batch(self, X: np.ndarray, *, laplace: float = 1.0) -> np.ndarray:
        """P(y = 1) per row: one vectorized routing pass, then each
        reached leaf's posterior is computed once and broadcast."""
        leaf_ids = self.route_batch(X)
        out = np.empty(X.shape[0], dtype=np.float64)
        for nid in np.unique(leaf_ids):
            out[leaf_ids == nid] = self._leaf_stats[int(nid)].posterior_positive(
                laplace=laplace
            )
        return out

    # ----------------------------------------------------------- introspection
    def decision_path(self, x: np.ndarray) -> List[Tuple[int, int, float]]:
        """The (node, feature, threshold) chain a sample follows — the
        interpretability hook the paper cites as an ORF advantage."""
        path: List[Tuple[int, int, float]] = []
        nid = 0
        while self._feature[nid] >= 0:
            f, thr = self._feature[nid], self._threshold[nid]
            path.append((nid, f, thr))
            nid = self._right[nid] if x[f] > thr else self._left[nid]
        path.append((nid, -1, np.nan))
        return path
