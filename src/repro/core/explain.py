"""Alarm explanation — the interpretability claim of §3.2.

The paper argues ORF models "are highly interpretable so they can be
used to reveal the real cause of disk failures".  This module cashes
that claim in: for a scored sample, walk every tree's decision path and
attribute the posterior movement to the feature tested at each step
(a path-based contribution in the SABAAS/TreeInterpreter style, adapted
to the online trees' leaf statistics).

The result is a per-feature contribution vector that sums (with the
root prior) to the forest's score, so an operator reading an alarm sees
*"0.31 from Reported Uncorrectable Errors, 0.22 from Current Pending
Sector Count, ..."* — the real cause, in SMART terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.forest import OnlineRandomForest
from repro.core.online_tree import OnlineDecisionTree


def _node_posterior(tree: OnlineDecisionTree, nid: int) -> float:
    """P(y=1) at any node: leaves read their stats; internal nodes read
    the aggregate of their subtree via recursion-free descent weighting.

    Internal nodes keep no counts after splitting, so we approximate the
    internal posterior by the weighted average of child leaf posteriors,
    computed on demand (paths are short; memoization is unnecessary).
    """
    stats = tree._leaf_stats.get(nid)
    if stats is not None:
        return stats.posterior_positive()
    # average the subtree's leaves weighted by their observed mass
    total_w = 0.0
    acc = 0.0
    stack = [nid]
    while stack:
        cur = stack.pop()
        s = tree._leaf_stats.get(cur)
        if s is not None:
            w = float(s.class_counts.sum()) + 1e-9
            acc += w * s.posterior_positive()
            total_w += w
            continue
        stack.append(tree._left[cur])
        stack.append(tree._right[cur])
    return acc / total_w if total_w > 0 else 0.5


@dataclass(frozen=True)
class Explanation:
    """Per-feature contributions for one scored sample.

    ``score == prior + contributions.sum()`` up to floating error.
    """

    score: float
    prior: float
    contributions: np.ndarray  # (n_features,)

    def top_features(
        self, k: int = 5, names: Optional[Sequence[str]] = None
    ) -> List[Tuple[str, float]]:
        """The k largest |contribution| features, as (name, value)."""
        order = np.argsort(-np.abs(self.contributions))[:k]
        out = []
        for idx in order:
            # exact-zero sentinel: untouched features are initialized to
            # literal 0.0 and only ever receive nonzero credits
            if self.contributions[idx] == 0.0:  # repro: noqa RPR201 — exact-zero sentinel for features never tested on the path
                break
            label = names[idx] if names is not None else f"feature_{idx}"
            out.append((label, float(self.contributions[idx])))
        return out


def explain_tree(tree: OnlineDecisionTree, x: np.ndarray) -> Tuple[float, np.ndarray]:
    """(prior, per-feature contributions) of one tree for sample *x*.

    Walking root → leaf, the posterior change across each tested node is
    credited to that node's feature.
    """
    contributions = np.zeros(tree.n_features)
    nid = 0
    current = _node_posterior(tree, nid)
    prior = current
    while tree._feature[nid] >= 0:
        f = tree._feature[nid]
        nxt = (
            tree._right[nid]
            if x[f] > tree._threshold[nid]
            else tree._left[nid]
        )
        nxt_posterior = _node_posterior(tree, nxt)
        contributions[f] += nxt_posterior - current
        current = nxt_posterior
        nid = nxt
    return prior, contributions


def explain_score(forest: OnlineRandomForest, x: np.ndarray) -> Explanation:
    """Decompose the forest's soft score for *x* into feature contributions.

    Averages the per-tree path decompositions; exact for ``vote="soft"``
    (``prior + Σ contributions == predict_one(x)``).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (forest.n_features,):
        raise ValueError(f"x must have shape ({forest.n_features},), got {x.shape}")
    priors = np.empty(forest.n_trees)
    contribs = np.zeros((forest.n_trees, forest.n_features))
    for t, tree in enumerate(forest.trees):
        priors[t], contribs[t] = explain_tree(tree, x)
    return Explanation(
        score=float(priors.mean() + contribs.sum(axis=1).mean()),
        prior=float(priors.mean()),
        contributions=contribs.mean(axis=0),
    )


def feature_usage(forest: OnlineRandomForest) -> np.ndarray:
    """How often each feature gates a decision node, forest-wide.

    A cheap global interpretability view: the fleet-level analogue of
    the per-alarm explanation.  Normalized to sum to 1 (all-zero when
    no tree has split yet).
    """
    counts = np.zeros(forest.n_features)
    for tree in forest.trees:
        for f in tree._feature:
            if f >= 0:
                counts[f] += 1
    total = counts.sum()
    return counts / total if total > 0 else counts
