"""Out-of-bag-error tracking and the tree-decay rule.

Whenever a sample's k draw is 0 for a tree, that sample is out-of-bag for
the tree: the tree predicts it, and the outcome feeds this tracker
(Algorithm 1, lines 21–27).  A tree is *decayed* — and gets replaced by a
fresh one — when its OOBE exceeds ``oobe_threshold`` (θ_OOBE) **and** its
age exceeds ``age_threshold`` (θ_AGE).

Because the raw stream is hundreds-to-thousands-to-one negative, a plain
error rate would be dominated by the negatives and hide a dead positive
class.  The tracker therefore keeps *per-class* exponentially-weighted
error rates and reports their mean (balanced OOBE): a stale tree that
starts false-alarming on drifted healthy data, or one that misses the
new failure signature, both push the balanced OOBE up.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_in_range, check_positive


class OOBETracker:
    """Per-class EWMA out-of-bag error for one tree.

    Parameters
    ----------
    decay:
        EWMA coefficient per observation: ``err ← (1-decay)·err +
        decay·mistake``.  Roughly a sliding window of ``1/decay``
        observations of that class.
    min_observations:
        Balanced OOBE reads 0 until each class has this many OOB
        observations — fresh trees must not be judged on noise.
    """

    __slots__ = ("decay", "min_observations", "err_pos", "err_neg", "n_pos", "n_neg")

    def __init__(self, *, decay: float = 0.01, min_observations: int = 50) -> None:
        check_in_range(decay, "decay", 0.0, 1.0, inclusive=False)
        check_positive(min_observations, "min_observations")
        self.decay = float(decay)
        self.min_observations = int(min_observations)
        self.err_pos = 0.0
        self.err_neg = 0.0
        self.n_pos = 0
        self.n_neg = 0

    def observe(self, y_true: int, y_pred: int) -> None:
        """Fold one out-of-bag prediction outcome into the tracker."""
        mistake = 1.0 if int(y_true) != int(y_pred) else 0.0
        if y_true == 1:
            self.err_pos += self.decay * (mistake - self.err_pos)
            self.n_pos += 1
        else:
            self.err_neg += self.decay * (mistake - self.err_neg)
            self.n_neg += 1

    def observe_batch(self, y_true: "np.ndarray", y_pred: "np.ndarray") -> None:
        """Fold a batch of OOB outcomes, exactly equivalent to sequential
        :meth:`observe` calls in array order.

        Uses the closed form of n EWMA steps —
        ``err ← (1-d)ⁿ·err + d·Σᵢ (1-d)^(n-1-i)·mᵢ`` — so the chunked
        fast path of :meth:`OnlineRandomForest.partial_fit` pays one
        vectorized pass instead of n Python calls.
        """
        y_true = np.asarray(y_true)
        y_pred = np.asarray(y_pred)
        if y_true.shape != y_pred.shape:
            raise ValueError("y_true and y_pred must align")
        mistakes = (y_true != y_pred).astype(np.float64)
        d = self.decay
        for cls in (0, 1):
            mask = y_true == cls
            n = int(mask.sum())
            if n == 0:
                continue
            m = mistakes[mask]
            weights = (1.0 - d) ** np.arange(n - 1, -1, -1)
            contribution = d * float(np.dot(weights, m))
            if cls == 1:
                self.err_pos = (1.0 - d) ** n * self.err_pos + contribution
                self.n_pos += n
            else:
                self.err_neg = (1.0 - d) ** n * self.err_neg + contribution
                self.n_neg += n

    @property
    def n_observations(self) -> int:
        """Total out-of-bag outcomes observed (both classes)."""
        return self.n_pos + self.n_neg

    def value(self) -> float:
        """Balanced OOBE ∈ [0, 1]; 0 while either class is under-observed."""
        if self.n_pos < self.min_observations or self.n_neg < self.min_observations:
            return 0.0
        return 0.5 * (self.err_pos + self.err_neg)

    def reset(self) -> None:
        """Forget everything (called when the tree is replaced)."""
        self.err_pos = self.err_neg = 0.0
        self.n_pos = self.n_neg = 0

    def is_decayed(
        self, tree_age: float, *, oobe_threshold: float, age_threshold: float
    ) -> bool:
        """The paper's discard test: OOBE > θ_OOBE and AGE > θ_AGE."""
        return self.value() > oobe_threshold and tree_age > age_threshold
