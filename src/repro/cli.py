"""Command-line interface.

Nine subcommands cover the operational lifecycle::

    repro generate     --spec sta --scale 0.2 --months 15 -o fleet.csv
    repro train        --data fleet.csv --model orf -o model.npz
    repro evaluate     --data fleet.csv --model-file model.npz --far 0.01
    repro monitor      --data fleet.csv --model-file model.npz
    repro serve        --data fleet.csv --model-file model.npz --shards 4
    repro gateway      --model-file model.npz --port 7070 --admin-token s3cret
    repro experiment   --data fleet.csv --kind monthly
    repro lint         src tests benchmarks --format json --stats
    repro trace-report trace.json --slowest 10

All commands accept Backblaze-schema CSVs, so they run unchanged against
the real public archive.  ``train`` writes a *bundle* — the model plus
the feature selection and the scaler fitted on the training split — and
``evaluate``/``monitor``/``serve`` reuse that scaler instead of
re-fitting one on the data they are judging.  ``main`` takes an argv
list (tests call it directly) and returns a process exit code.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.forest import OnlineRandomForest
from repro.core.predictor import OnlineDiskFailurePredictor
from repro.eval.protocol import LabeledArrays, prepare_arrays, split_disks, stream_order
from repro.eval.threshold import fdr_at_far
from repro.features.scaling import MinMaxScaler
from repro.features.selection import FeatureSelection
from repro.offline.forest import RandomForestClassifier
from repro.offline.gbdt import GradientBoostedTrees
from repro.offline.sampling import downsample_negatives
from repro.offline.svm import SVC
from repro.offline.tree import DecisionTreeClassifier
from repro.persistence import load_bundle, load_model, save_bundle, save_model
from repro.smart.dataset import SmartDataset
from repro.smart.drive_model import STA, STB, scaled_spec
from repro.smart.generator import generate_dataset
from repro.smart.io import read_backblaze_csv, write_backblaze_csv

_SPECS = {"sta": STA, "stb": STB}


def _load_dataset(path: str) -> SmartDataset:
    return read_backblaze_csv(path)


def _prepare(
    dataset: SmartDataset,
    seed: int,
    *,
    selection: Optional[FeatureSelection] = None,
    scaler: Optional[MinMaxScaler] = None,
) -> Tuple[LabeledArrays, LabeledArrays, MinMaxScaler, FeatureSelection]:
    """Split, project, scale.  A persisted scaler is reused, never refit."""
    selection = selection or FeatureSelection.paper_table2()
    train_s, test_s = split_disks(dataset, seed=seed)
    train, scaler = prepare_arrays(
        dataset.subset_serials(train_s), selection, scaler=scaler
    )
    test, _ = prepare_arrays(
        dataset.subset_serials(test_s), selection, scaler=scaler
    )
    return train, test, scaler, selection


def _load_model_bundle(
    path: str,
) -> Tuple[Any, Optional[MinMaxScaler], Optional[FeatureSelection]]:
    """(model, scaler, selection) from a bundle or legacy single archive."""
    bundle = load_bundle(path)
    scaler = bundle.get("scaler")
    if scaler is None:
        print(
            f"warning: {path} has no persisted scaler (legacy checkpoint); "
            "fitting one on the evaluated data — retrain to pin the "
            "training-time scaling",
            file=sys.stderr,
        )
    return bundle.get("model"), scaler, bundle.get("selection")


# ------------------------------------------------------------------ commands
def _cmd_generate(args: argparse.Namespace) -> int:
    spec = scaled_spec(
        _SPECS[args.spec],
        fleet_scale=args.scale,
        duration_months=args.months,
    )
    dataset = generate_dataset(
        spec, seed=args.seed, sample_every_days=args.stride
    )
    n = write_backblaze_csv(dataset, args.output)
    s = dataset.summary()
    print(
        f"wrote {n:,} snapshots for {s['#GoodDisks']} good + "
        f"{s['#FailedDisks']} failed drives to {args.output}"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.data)
    train, _test, scaler, selection = _prepare(dataset, args.seed)
    rows = train.training_rows()

    if args.model == "orf":
        model = OnlineRandomForest(
            train.n_features,
            n_trees=args.trees,
            lambda_pos=1.0,
            lambda_neg=args.lambda_neg,
            min_parent_size=120,
            min_gain=0.05,
            seed=args.seed,
        )
        order = rows[stream_order(train.days[rows], train.serials[rows])]
        model.partial_fit(train.X[order], train.y[order])
    else:
        y = train.y[rows]
        idx = rows[downsample_negatives(y, args.neg_ratio, seed=args.seed)]
        Xb, yb = train.X[idx], train.y[idx]
        if args.model == "rf":
            model = RandomForestClassifier(n_trees=args.trees, seed=args.seed)
        elif args.model == "dt":
            model = DecisionTreeClassifier(
                max_num_splits=100, class_weight="balanced", seed=args.seed
            )
        elif args.model == "gbdt":
            model = GradientBoostedTrees(
                n_rounds=150, max_depth=5, learning_rate=0.15, seed=args.seed
            )
        else:
            model = SVC(C=10.0, gamma=2.0, seed=args.seed)
        model.fit(Xb, yb)

    if args.model in ("orf", "rf", "dt"):
        # bundle the preprocessing with the model: a checkpoint is
        # meaningless without the exact scaler that fed it
        save_bundle(args.output, model=model, scaler=scaler, selection=selection)
        print(f"trained {args.model} on {rows.size:,} samples -> {args.output}")
    else:
        print(
            f"trained {args.model} on downsampled set "
            f"(checkpointing not supported for this model type)",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.data)
    model, scaler, selection = _load_model_bundle(args.model_file)
    _train, test, _scaler, _sel = _prepare(
        dataset, args.seed, selection=selection, scaler=scaler
    )
    scores = model.predict_score(test.X)
    fdr, far, thr = fdr_at_far(
        scores,
        test.serials,
        test.detection_mask(),
        test.false_alarm_mask(),
        args.far,
    )
    print(f"FDR {100 * fdr:.2f}%  FAR {100 * far:.2f}%  threshold {thr:.4f}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.data)
    model, scaler, selection = _load_model_bundle(args.model_file)
    selection = selection or FeatureSelection.paper_table2()
    arrays, _ = prepare_arrays(dataset, selection, scaler=scaler)
    if not isinstance(model, OnlineRandomForest):
        print("monitor requires an ORF checkpoint", file=sys.stderr)
        return 2
    monitor = OnlineDiskFailurePredictor(
        model, queue_length=7, alarm_threshold=args.threshold
    )
    fail_day = {d.serial: d.fail_day for d in dataset.drives if d.failed}
    order = stream_order(arrays.days, arrays.serials)
    seen = set()
    death_emitted = set()
    for i in order:
        serial = int(arrays.serials[i])
        day = int(arrays.days[i])
        failed = fail_day.get(serial) == day
        seen.add(serial)
        if failed:
            death_emitted.add(serial)
        alarm = monitor.process(serial, arrays.X[i], failed=failed, tag=day)
        if alarm is not None:
            print(f"day {day:5d}  ALARM drive {serial}  score {alarm.score:.3f}")
    # disks that reported nothing on their death day still died: flush
    # their queued positives into the forest instead of leaking them
    for serial in sorted(seen - death_emitted):
        fd = fail_day.get(serial)
        if fd is not None:
            monitor.process(serial, None, failed=True, tag=int(fd))
    print(
        f"# processed {monitor.stats.n_samples:,} samples, "
        f"{monitor.stats.n_failures} failures, "
        f"{monitor.stats.n_alarms} alarms"
    )
    return 0


def _build_serving_fleet(args: argparse.Namespace, shards, *, registry,
                         manager, rotator, tracer):
    """Construct the serving backend ``--runtime`` selects.

    Both runtimes receive the identical shard list, alarm manager, and
    rotator, so switching runtimes changes the process topology and
    nothing else — alarms, digests, and checkpoints stay bit-identical.
    """
    if getattr(args, "runtime", "inproc") == "process":
        from repro.runtime import FleetSupervisor

        fault_options = None
        if getattr(args, "kill_shard", None) is not None:
            fault_options = {
                args.kill_shard: {
                    "fail_after": args.kill_after,
                    "kill_on_fault": True,
                }
            }
        return FleetSupervisor(
            shards,
            alarm_manager=manager,
            registry=registry,
            rotator=rotator,
            mode=args.mode,
            strict=args.strict,
            max_dead_letters=args.dead_letter_max,
            tracer=tracer,
            journal_max_events=args.journal_max,
            fault_options=fault_options,
        )
    from repro.parallel.pool import make_executor
    from repro.service import FleetMonitor

    return FleetMonitor(
        shards,
        alarm_manager=manager,
        registry=registry,
        rotator=rotator,
        mode=args.mode,
        executor=make_executor(getattr(args, "executor", "serial")),
        strict=args.strict,
        max_dead_letters=args.dead_letter_max,
        tracer=tracer,
    )


def _finish_process_runtime(fleet) -> None:
    """Report restarts and stop the workers of a process-runtime fleet."""
    for rec in fleet.restart_log:
        print(
            f"# restarted shard {rec.shard} ({rec.reason}); "
            f"replayed {rec.replayed_events} journaled event(s) "
            f"in {rec.attempts} attempt(s)"
        )
    print(f"# worker restarts: {sum(fleet.restarts)}")
    fleet.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        AlarmManager,
        CheckpointRotator,
        MetricsRegistry,
        fleet_events,
    )

    dataset = _load_dataset(args.data)
    model, scaler, selection = _load_model_bundle(args.model_file)
    if not isinstance(model, OnlineRandomForest):
        print("serve requires an ORF checkpoint", file=sys.stderr)
        return 2
    selection = selection or FeatureSelection.paper_table2()
    arrays, _ = prepare_arrays(dataset, selection, scaler=scaler)

    # every shard starts from an independent copy of the checkpoint
    forests = [model] + [
        load_bundle(args.model_file)["model"] for _ in range(args.shards - 1)
    ]
    shards = [
        OnlineDiskFailurePredictor(
            forest,
            queue_length=7,
            alarm_threshold=args.threshold,
            warmup_samples=args.warmup,
            record_alarms=False,
        )
        for forest in forests
    ]
    registry = MetricsRegistry()
    manager = AlarmManager(
        cooldown=args.cooldown,
        escalate_after=args.escalate_after,
        registry=registry,
    )
    rotator = None
    if args.checkpoint_dir:
        rotator = CheckpointRotator(
            args.checkpoint_dir,
            every_samples=args.checkpoint_every,
            retention=args.retention,
        )
    tracer = None
    if args.trace or args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer(registry=registry)
    fleet = _build_serving_fleet(
        args, shards, registry=registry, manager=manager,
        rotator=rotator, tracer=tracer,
    )

    fail_day = {d.serial: d.fail_day for d in dataset.drives if d.failed}
    events = fleet_events(arrays, fail_day)
    if args.fault_rate > 0:
        from repro.service import salt_events

        events = salt_events(
            events,
            rate=args.fault_rate,
            n_features=fleet.n_features,
            seed=args.fault_seed,
        )
    next_digest = args.digest_every
    batch = []
    for event in events:
        batch.append(event)
        if len(batch) < args.batch_size:
            continue
        for emitted in fleet.ingest(batch):
            a = emitted.alarm
            print(
                f"day {a.tag!s:>5}  {emitted.action.value.upper():9s} "
                f"drive {a.disk_id}  score {a.score:.3f}  "
                f"(shard {emitted.shard})"
            )
        batch = []
        if args.digest_every and fleet.n_samples >= next_digest:
            d = fleet.digest()
            print(
                f"# digest: {d['samples']:,} samples  "
                f"{d['failures']} failures  alarms {d['alarms']}  "
                f"queue {d['queue_depth']}  "
                f"{d['samples_per_sec']:,.0f} samples/s"
            )
            next_digest += args.digest_every
    if batch:
        for emitted in fleet.ingest(batch):
            a = emitted.alarm
            print(
                f"day {a.tag!s:>5}  {emitted.action.value.upper():9s} "
                f"drive {a.disk_id}  score {a.score:.3f}  "
                f"(shard {emitted.shard})"
            )

    d = fleet.digest()
    print(
        f"# served {d['samples']:,} samples across {fleet.n_shards} shard(s): "
        f"{d['failures']} failures, alarms {d['alarms']}, "
        f"{d['tree_replacements']} tree replacements"
    )
    reasons = ", ".join(
        f"{k}={v}" for k, v in sorted(d["quarantine_reasons"].items())
    )
    print(f"# quarantined: {d['quarantined']}" + (f" ({reasons})" if reasons else ""))
    print(
        "# degraded shards: "
        + (", ".join(map(str, d["degraded_shards"])) or "none")
    )
    if rotator is not None and rotator.latest is not None:
        print(f"# latest checkpoint: {rotator.latest}")
    if args.runtime == "process":
        _finish_process_runtime(fleet)
    if tracer is not None:
        from repro.obs import format_trace_report, write_trace

        spans = tracer.snapshot()
        if args.trace:
            print(format_trace_report(spans))
        if args.trace_out:
            write_trace(spans, args.trace_out)
            print(f"# wrote {len(spans)} span(s) to {args.trace_out}")
    if args.dump_metrics:
        print(registry.render(), end="")
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from repro.gateway import GatewayServer
    from repro.service import (
        AlarmManager,
        CheckpointRotator,
        MetricsRegistry,
    )

    model, _scaler, _selection = _load_model_bundle(args.model_file)
    if not isinstance(model, OnlineRandomForest):
        print("gateway requires an ORF checkpoint", file=sys.stderr)
        return 2

    # every shard starts from an independent copy of the checkpoint,
    # mirroring `repro serve`
    forests = [model] + [
        load_bundle(args.model_file)["model"] for _ in range(args.shards - 1)
    ]
    shards = [
        OnlineDiskFailurePredictor(
            forest,
            queue_length=7,
            alarm_threshold=args.threshold,
            warmup_samples=args.warmup,
            record_alarms=False,
        )
        for forest in forests
    ]
    registry = MetricsRegistry()
    manager = AlarmManager(
        cooldown=args.cooldown,
        escalate_after=args.escalate_after,
        registry=registry,
    )
    rotator = None
    if args.checkpoint_dir:
        rotator = CheckpointRotator(
            args.checkpoint_dir,
            every_samples=args.checkpoint_every,
            retention=args.retention,
        )
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer(registry=registry)
    fleet = _build_serving_fleet(
        args, shards, registry=registry, manager=manager,
        rotator=rotator, tracer=tracer,
    )
    server = GatewayServer(
        fleet,
        host=args.host,
        port=args.port,
        admin_token=args.admin_token,
        registry=registry,
        tracer=tracer,
        max_batch_events=args.max_batch_events,
        max_queue_events=args.max_queue_events,
        max_inflight=args.max_inflight,
    )

    async def _run() -> None:
        await server.start()
        print(f"gateway listening on {server.host}:{server.port}", flush=True)
        if args.port_file:
            from pathlib import Path

            Path(args.port_file).write_text(f"{server.port}\n")
        try:
            await server.serve_until_drained()
        finally:
            if server.status != "drained":
                await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("# interrupted; events admitted but unflushed were dropped",
              file=sys.stderr)

    d = fleet.digest()
    print(
        f"# gateway served {d['samples']:,} samples across "
        f"{fleet.n_shards} shard(s): {d['failures']} failures, "
        f"alarms {d['alarms']}, quarantined {d['quarantined']}"
    )
    if server.final_checkpoint is not None:
        print(f"# final checkpoint: {server.final_checkpoint}")
    if args.runtime == "process":
        _finish_process_runtime(fleet)
    if args.dump_metrics:
        print(registry.render(), end="")
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs import format_trace_report, load_trace

    try:
        spans = load_trace(args.trace_file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_trace_report(spans, slowest=args.slowest))
    return 0


def _explain_rule(rule_id: str) -> int:
    """Print what one RPR rule enforces and why (``lint --explain``)."""
    import inspect

    from repro.analysis.engine import GraphRule, PARSE_ERROR_RULE
    from repro.analysis.rules import rules_by_id

    wanted = rule_id.upper()
    if wanted == PARSE_ERROR_RULE:
        print(f"{PARSE_ERROR_RULE} [error] — per-file stage")
        print("  file does not parse; reported so a syntax error can never")
        print("  make a lint run look clean")
        return 0
    rules = rules_by_id()
    rule = rules.get(wanted)
    if rule is None:
        print(
            f"error: unknown rule {rule_id!r}; known rules: "
            + ", ".join(sorted(rules)),
            file=sys.stderr,
        )
        return 2
    stage = "whole-program (graph) stage" if isinstance(rule, GraphRule) else (
        "per-file stage"
    )
    print(f"{rule.rule_id} [{rule.severity.value}] — {stage}")
    print(f"  {rule.description}")
    doc = inspect.getdoc(type(rule))
    if doc:
        print()
        for line in doc.splitlines():
            print(f"  {line}" if line else "")
    pack = sys.modules.get(type(rule).__module__)
    pack_doc = inspect.getdoc(pack) if pack is not None else None
    if pack_doc:
        print()
        print(f"  From {type(rule).__module__}:")
        for line in pack_doc.splitlines():
            print(f"    {line}" if line else "")
    return 0


def _changed_python_files(ref: str, scopes: List[str]) -> Optional[List[str]]:
    """``.py`` files changed vs *ref* (plus untracked), scoped to *scopes*.

    Returns None when git is unavailable or errors — the caller falls
    back to a full walk, because "could not compute the diff" must fail
    open into *more* linting, never less.
    """
    import subprocess
    from pathlib import Path

    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref],
            capture_output=True, text=True, check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = exc.stderr.strip() if isinstance(
            exc, subprocess.CalledProcessError
        ) and exc.stderr else str(exc)
        print(
            f"warning: --changed fell back to a full walk (git: {detail})",
            file=sys.stderr,
        )
        return None
    scope_roots = [Path(s).resolve() for s in scopes]
    out: List[str] = []
    for name in sorted(
        set(diff.stdout.splitlines()) | set(untracked.stdout.splitlines())
    ):
        path = Path(name)
        if path.suffix != ".py" or not path.is_file():
            continue  # deleted files and non-python changes
        resolved = path.resolve()
        if any(
            resolved == root or root in resolved.parents
            for root in scope_roots
        ):
            out.append(name)
    return out


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import (
        lint_paths,
        load_baseline,
        prune_baseline,
        write_baseline,
    )
    from repro.analysis.baseline import DEFAULT_BASELINE

    if args.explain:
        return _explain_rule(args.explain)

    paths = args.paths
    if args.changed is not None:
        changed = _changed_python_files(args.changed, paths)
        if changed is not None:
            if not changed:
                print(
                    f"# no python files changed vs {args.changed} under "
                    + " ".join(args.paths)
                )
                return 0
            paths = changed

    try:
        report = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(report.findings, baseline_path)
        print(
            f"wrote baseline with {len(report.findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    if args.prune_baseline:
        pruned = prune_baseline(report.findings, baseline_path)
        if pruned:
            print(
                f"# pruned {len(pruned)} stale entr{'y' if len(pruned) == 1 else 'ies'} "
                f"from {baseline_path}",
                file=sys.stderr,
            )

    baseline = load_baseline(baseline_path)
    new, grandfathered = baseline.split(report.findings)
    stale = baseline.stale_entries(report.findings)
    stats = report.stats()
    stats["new_findings"] = len(new)
    stats["grandfathered_findings"] = len(grandfathered)
    stats["stale_baseline_entries"] = len(stale)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in new],
                    "grandfathered": [f.to_dict() for f in grandfathered],
                    "stats": stats,
                },
                indent=2,
            )
        )
    else:
        for f in new:
            print(f"{f.location}: {f.rule_id} [{f.severity.value}] {f.message}")
        for f in grandfathered:
            print(
                f"{f.location}: {f.rule_id} [baseline] {f.message}",
                file=sys.stderr,
            )
        summary = (
            f"# scanned {stats['files_scanned']} files with "
            f"{stats['rules_run']} rules in "
            f"{stats['runtime_seconds']:.2f}s: "
            f"{len(new)} new finding(s), {len(grandfathered)} grandfathered, "
            f"{stats['suppressed_total']} suppressed"
        )
        print(summary, file=sys.stderr if new else sys.stdout)
        if args.stats:
            print(json.dumps(stats, indent=2))
    rc = 1 if new else 0
    if args.fail_stale and stale:
        print(
            f"# {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} (fixed debt): "
            "regenerate with --write-baseline or drop with --prune-baseline",
            file=sys.stderr,
        )
        rc = max(rc, 1)
    return rc


def _cmd_graph(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.engine import is_suppressed
    from repro.analysis.graph import (
        build_graph_doc,
        build_project,
        render_dot,
        validate_graph_doc,
    )
    from repro.analysis.rules import layering

    try:
        project = build_project(args.root)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not project.modules:
        print(f"error: no project modules under {args.root!r}", file=sys.stderr)
        return 2
    violations = []
    for rule in layering.RULES:
        for finding in rule.check_project(project):
            if is_suppressed(finding, project.lines_for(finding.path)):
                continue  # sanctioned, reasoned exceptions stay out of --check
            violations.append(finding.to_dict())
    cycles = project.cycles()
    doc = build_graph_doc(project, cycles=cycles, violations=violations)
    validate_graph_doc(doc)
    if args.format == "dot":
        print(render_dot(doc), end="")
    else:
        print(json.dumps(doc, indent=2, sort_keys=True))
    if args.check and (violations or cycles):
        print(
            f"# {len(violations)} layering violation(s), "
            f"{len(cycles)} import cycle(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval.longterm import LongTermConfig, run_longterm
    from repro.eval.monthly import MonthlyConfig, run_monthly_comparison
    from repro.eval.report import (
        longterm_series_table,
        longterm_summary,
        monthly_fdr_table,
    )

    dataset = _load_dataset(args.data)
    if args.kind == "monthly":
        config = MonthlyConfig(
            models=tuple(args.models.split(",")),
            orf_chunk_size=args.chunk_size,
        )
        results = run_monthly_comparison(dataset, config=config, seed=args.seed)
        print(monthly_fdr_table(results))
    else:
        config = LongTermConfig(
            warmup_months=args.warmup,
            fdr_window_months=3,
            orf_chunk_size=args.chunk_size,
        )
        results = run_longterm(dataset, config=config, seed=args.seed)
        for metric in ("far", "fdr"):
            print(longterm_series_table(
                results, metric, title=f"long-term {metric.upper()}(%) by month"
            ))
            print()
        summary = longterm_summary(results)
        for name, agg in summary.items():
            print(
                f"{name:13s} mean FAR {100 * agg['mean_far']:.2f}%  "
                f"FAR trend {100 * agg['far_trend']:+.2f}pp  "
                f"mean FDR {100 * agg['mean_fdr']:.1f}%"
            )
    return 0


# ------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Disk failure prediction via online learning (ICPP'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic SMART dataset CSV")
    p.add_argument("--spec", choices=sorted(_SPECS), default="sta")
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument("--months", type=int, default=15)
    p.add_argument("--stride", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("train", help="train a model on a dataset CSV")
    p.add_argument("--data", required=True)
    p.add_argument(
        "--model", choices=("orf", "rf", "dt", "svm", "gbdt"), default="orf"
    )
    p.add_argument("--trees", type=int, default=25)
    p.add_argument("--lambda-neg", type=float, default=0.02)
    p.add_argument("--neg-ratio", type=float, default=3.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("evaluate", help="disk-level FDR/FAR of a checkpoint")
    p.add_argument("--data", required=True)
    p.add_argument("--model-file", required=True)
    p.add_argument("--far", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_evaluate)

    p = sub.add_parser("monitor", help="replay Algorithm 2 over a dataset CSV")
    p.add_argument("--data", required=True)
    p.add_argument("--model-file", required=True)
    p.add_argument("--threshold", type=float, default=0.5)
    p.set_defaults(fn=_cmd_monitor)

    p = sub.add_parser(
        "serve", help="replay a dataset CSV through the sharded fleet monitor"
    )
    p.add_argument("--data", required=True)
    p.add_argument("--model-file", required=True)
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--threshold", type=float, default=0.5)
    p.add_argument("--warmup", type=int, default=0, help="warmup samples per shard")
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--mode", choices=("exact", "batch"), default="exact")
    p.add_argument(
        "--runtime", choices=("inproc", "process"), default="inproc",
        help="inproc: sharded fleet in this process; process: one "
             "supervised worker process per shard with restart-on-crash",
    )
    p.add_argument("--executor", choices=("serial", "thread"), default="serial",
                   help="shard-bucket executor (inproc runtime only)")
    p.add_argument(
        "--journal-max", type=int, default=4096,
        help="per-shard in-flight journal bound before a forced snapshot "
             "(process runtime only)",
    )
    p.add_argument(
        "--kill-shard", type=int, default=None, metavar="SHARD",
        help="chaos drill (process runtime): SIGKILL this shard's worker "
             "mid-stream and prove supervised recovery",
    )
    p.add_argument(
        "--kill-after", type=int, default=0, metavar="N",
        help="events the killed shard processes before dying "
             "(with --kill-shard)",
    )
    p.add_argument(
        "--cooldown", type=int, default=None,
        help="per-disk samples before an open alarm re-notifies (default: never)",
    )
    p.add_argument("--escalate-after", type=int, default=3)
    p.add_argument("--checkpoint-dir", default=None)
    p.add_argument("--checkpoint-every", type=int, default=10_000)
    p.add_argument("--retention", type=int, default=3)
    p.add_argument(
        "--digest-every", type=int, default=10_000,
        help="print a metrics digest every N samples (0 disables)",
    )
    p.add_argument(
        "--dump-metrics", action="store_true",
        help="print the Prometheus text exposition after the replay",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="raise on invalid events instead of quarantining them "
             "(serving defaults to tolerant mode with a dead-letter queue)",
    )
    p.add_argument(
        "--dead-letter-max", type=int, default=1024,
        help="quarantined events retained for inspection",
    )
    p.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="chaos drill: corrupt this fraction of working-disk events "
             "(NaN/Inf/wrong-dim/missing vectors) before ingest",
    )
    p.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for --fault-rate corruption",
    )
    p.add_argument(
        "--trace", action="store_true",
        help="trace every serving stage and print a latency report "
             "(p50/p95/p99 per stage plus the slowest spans)",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the raw span trace as JSON for `repro trace-report`",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "gateway",
        help="serve a train bundle over TCP (newline-delimited JSON)",
    )
    p.add_argument("--model-file", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 binds an ephemeral port, printed at startup)",
    )
    p.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port to this file once listening",
    )
    p.add_argument(
        "--admin-token", default=None,
        help="shared secret for the drain op (omitting disables remote drain)",
    )
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--threshold", type=float, default=0.5)
    p.add_argument("--warmup", type=int, default=0, help="warmup samples per shard")
    p.add_argument("--mode", choices=("exact", "batch"), default="exact")
    p.add_argument(
        "--runtime", choices=("inproc", "process"), default="inproc",
        help="inproc: sharded fleet in this process; process: one "
             "supervised worker process per shard with restart-on-crash",
    )
    p.add_argument(
        "--journal-max", type=int, default=4096,
        help="per-shard in-flight journal bound before a forced snapshot "
             "(process runtime only)",
    )
    p.add_argument(
        "--max-batch-events", type=int, default=1024,
        help="micro-batcher coalescing cap (events per fleet flush)",
    )
    p.add_argument(
        "--max-queue-events", type=int, default=8192,
        help="admission-queue bound; beyond it ingests shed as overloaded",
    )
    p.add_argument(
        "--max-inflight", type=int, default=64,
        help="per-connection cap on unanswered requests",
    )
    p.add_argument(
        "--cooldown", type=int, default=None,
        help="per-disk samples before an open alarm re-notifies (default: never)",
    )
    p.add_argument("--escalate-after", type=int, default=3)
    p.add_argument("--checkpoint-dir", default=None)
    p.add_argument("--checkpoint-every", type=int, default=10_000)
    p.add_argument("--retention", type=int, default=3)
    p.add_argument(
        "--strict", action="store_true",
        help="raise on invalid events instead of quarantining them",
    )
    p.add_argument("--dead-letter-max", type=int, default=1024)
    p.add_argument(
        "--trace", action="store_true",
        help="record serving-stage spans into the metrics exposition",
    )
    p.add_argument(
        "--dump-metrics", action="store_true",
        help="print the Prometheus text exposition after the drain",
    )
    p.set_defaults(fn=_cmd_gateway)

    p = sub.add_parser(
        "trace-report",
        help="summarize a trace JSON written by `repro serve --trace-out`",
    )
    p.add_argument("trace_file", help="trace JSON path")
    p.add_argument(
        "--slowest", type=int, default=10,
        help="rows in the slowest-span table",
    )
    p.set_defaults(fn=_cmd_trace_report)

    p = sub.add_parser(
        "lint", help="check reproducibility invariants via AST static analysis"
    )
    p.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file for grandfathered findings "
             "(default: lint-baseline.json when present)",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="append a JSON stats summary (per-rule/severity counts, "
             "files scanned, runtime) for lint-debt tracking",
    )
    p.add_argument(
        "--explain", metavar="RPRxxx", default=None,
        help="print what one rule enforces and why, then exit",
    )
    p.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="lint only files changed vs REF (default HEAD) plus untracked "
             "files; falls back to a full walk when git is unavailable",
    )
    p.add_argument(
        "--prune-baseline", action="store_true",
        help="drop stale (already-fixed) entries from the baseline file "
             "before diffing",
    )
    p.add_argument(
        "--fail-stale", action="store_true",
        help="exit non-zero when the baseline contains stale entries "
             "(CI keeps the debt ledger honest)",
    )
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "graph",
        help="emit the whole-program layered import graph (json or dot)",
    )
    p.add_argument(
        "--root", default="src",
        help="project root the graph stage parses (default: src)",
    )
    p.add_argument("--format", choices=("json", "dot"), default="json")
    p.add_argument(
        "--check", action="store_true",
        help="exit 1 on unsuppressed layering violations or import cycles",
    )
    p.set_defaults(fn=_cmd_graph)

    p = sub.add_parser(
        "experiment", help="run the paper's §4.4/§4.5 protocols on a dataset CSV"
    )
    p.add_argument("--data", required=True)
    p.add_argument("--kind", choices=("monthly", "longterm"), default="monthly")
    p.add_argument("--models", default="orf,rf", help="comma list (monthly only)")
    p.add_argument("--warmup", type=int, default=6, help="months (longterm only)")
    p.add_argument("--chunk-size", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
