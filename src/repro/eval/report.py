"""Render experiment results as aligned text / markdown tables.

The benches, the CLI's ``experiment`` subcommand and user notebooks all
need the same few views over :class:`MonthlyResult` and
:class:`MonthRates` series; this module centralizes them so the
formatting logic exists once.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.eval.longterm import MonthRates
from repro.eval.monthly import MonthlyResult
from repro.utils.tables import format_markdown_table, format_table


def _pct(value: float, digits: int = 1) -> str:
    if value != value:  # NaN
        return "-"
    return f"{100.0 * value:.{digits}f}"


def monthly_fdr_table(
    results: Dict[str, MonthlyResult],
    *,
    markdown: bool = False,
    title: str = "FDR(%) vs months at the FAR-pinned operating point",
) -> str:
    """One row per model, one column per evaluation month."""
    months = sorted({m for r in results.values() for m in r.months})
    header = ["Model"] + [f"m{m}" for m in months]
    rows: List[List[str]] = []
    for name, r in results.items():
        by_month = dict(zip(r.months, r.fdr))
        rows.append(
            [name.upper()]
            + [_pct(by_month[m], 0) if m in by_month else "-" for m in months]
        )
    if markdown:
        return format_markdown_table(header, rows)
    return format_table(header, rows, title=title)


def longterm_series_table(
    results: Dict[str, List[MonthRates]],
    metric: str = "far",
    *,
    markdown: bool = False,
    title: str | None = None,
) -> str:
    """One row per strategy, one column per month, for ``far`` or ``fdr``."""
    if metric not in ("far", "fdr"):
        raise ValueError(f"metric must be 'far' or 'fdr', got {metric!r}")
    months = sorted({p.month for series in results.values() for p in series})
    header = ["Strategy"] + [f"m{m}" for m in months]
    rows: List[List[str]] = []
    for name, series in results.items():
        by_month = {p.month: getattr(p, metric) for p in series}
        rows.append(
            [name] + [_pct(by_month.get(m, float("nan"))) for m in months]
        )
    if markdown:
        return format_markdown_table(header, rows)
    return format_table(
        header, rows, title=title or f"Long-term {metric.upper()}(%) by month"
    )


def longterm_summary(results: Dict[str, List[MonthRates]]) -> Dict[str, dict]:
    """Aggregate each strategy's series into headline numbers.

    Returns per strategy: mean/max FAR, mean FDR (NaN-months dropped),
    and the FAR trend (last-3-months mean minus first-3-months mean —
    positive = aging).
    """
    out: Dict[str, dict] = {}
    for name, series in results.items():
        fars = np.array([p.far for p in series])
        fdrs = np.array([p.fdr for p in series])
        fdrs = fdrs[np.isfinite(fdrs)]
        out[name] = {
            "mean_far": float(fars.mean()) if fars.size else float("nan"),
            "max_far": float(fars.max()) if fars.size else float("nan"),
            "mean_fdr": float(fdrs.mean()) if fdrs.size else float("nan"),
            "far_trend": (
                float(fars[-3:].mean() - fars[:3].mean())
                if fars.size >= 3
                else float("nan")
            ),
            "n_months": len(series),
        }
    return out
