"""The §4.4 convergence experiment (Figures 2 and 3).

Disks are split 70/30; the ORF model evolves over the training stream in
timestamp order, while at every evaluation month each offline baseline
is retrained from scratch on *all* training data collected so far
(λ-downsampled).  All models are then scored on the same fixed test set,
and each figure point reports FDR at the FAR ≈ 1% operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.forest import OnlineRandomForest
from repro.eval.protocol import (
    LabeledArrays,
    prepare_arrays,
    split_disks,
    stream_order,
)
from repro.eval.threshold import fdr_at_far
from repro.features.selection import FeatureSelection
from repro.offline.forest import RandomForestClassifier
from repro.offline.sampling import downsample_negatives
from repro.offline.svm import SVC
from repro.offline.tree import DecisionTreeClassifier
from repro.smart.dataset import SmartDataset
from repro.utils.rng import SeedLike, as_generator


@dataclass
class MonthlyConfig:
    """Everything tunable about the §4.4 run.

    Defaults follow the paper where stated (λ = 3, FAR target 1%,
    T = 30 offline trees) and DESIGN.md §3 where scaled down (N = 40
    candidate tests instead of 5000).
    """

    horizon: int = 7
    far_target: float = 0.01
    test_fraction: float = 0.3
    neg_sample_ratio: Optional[float] = 3.0
    start_month: int = 2
    eval_months: Optional[Sequence[int]] = None
    models: Sequence[str] = ("orf", "rf", "dt", "svm")
    operating_mode: str = "closest"  # how figure points pin FAR
    #: 0 = exact per-sample ORF updates (Algorithm 1); >0 streams the ORF
    #: in mini-batches of this size (~10x faster, see ablation A8)
    orf_chunk_size: int = 0

    orf_params: dict = field(
        default_factory=lambda: dict(
            n_trees=25,
            n_tests=40,
            min_parent_size=120.0,
            min_gain=0.05,
            lambda_pos=1.0,
            lambda_neg=0.02,
            oobe_threshold=0.25,
            age_threshold=2000.0,
        )
    )
    rf_params: dict = field(
        default_factory=lambda: dict(n_trees=30, max_features="sqrt", min_samples_leaf=2)
    )
    dt_params: dict = field(
        default_factory=lambda: dict(max_num_splits=100, class_weight="balanced")
    )
    svm_params: dict = field(default_factory=lambda: dict(C=10.0, gamma=2.0))
    svm_max_train: int = 2500


@dataclass
class MonthlyResult:
    """One model's FDR/FAR series over the evaluation months."""

    model: str
    months: List[int] = field(default_factory=list)
    fdr: List[float] = field(default_factory=list)
    far: List[float] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)

    def append(self, month: int, fdr: float, far: float, thr: float) -> None:
        """Record one evaluation month's operating point."""
        self.months.append(int(month))
        self.fdr.append(float(fdr))
        self.far.append(float(far))
        self.threshold.append(float(thr))


def _evaluate_on_test(
    score_fn: Callable[[np.ndarray], np.ndarray],
    test: LabeledArrays,
    config: MonthlyConfig,
) -> tuple:
    scores = score_fn(test.X)
    return fdr_at_far(
        scores,
        test.serials,
        test.detection_mask(),
        test.false_alarm_mask(),
        config.far_target,
        mode=config.operating_mode,
    )


def _fit_offline(
    name: str,
    X: np.ndarray,
    y: np.ndarray,
    config: MonthlyConfig,
    rng: np.random.Generator,
) -> Optional[Union[RandomForestClassifier, DecisionTreeClassifier, SVC]]:
    """Train one offline baseline on a λ-balanced snapshot of the pool."""
    idx = downsample_negatives(y, config.neg_sample_ratio, rng.spawn(1)[0])
    Xb, yb = X[idx], y[idx]
    if name == "rf":
        model = RandomForestClassifier(seed=rng.spawn(1)[0], **config.rf_params)
    elif name == "dt":
        model = DecisionTreeClassifier(seed=rng.spawn(1)[0], **config.dt_params)
    elif name == "svm":
        if Xb.shape[0] > config.svm_max_train:
            sub = rng.choice(Xb.shape[0], size=config.svm_max_train, replace=False)
            Xb, yb = Xb[sub], yb[sub]
        model = SVC(seed=rng.spawn(1)[0], **config.svm_params)
    else:  # pragma: no cover - guarded by caller
        raise ValueError(f"unknown offline model {name!r}")
    if np.unique(yb).size < 2:
        return None  # not enough signal collected yet this early in time
    model.fit(Xb, yb)
    return model


def run_monthly_comparison(
    dataset: SmartDataset,
    *,
    selection: Optional[FeatureSelection] = None,
    config: Optional[MonthlyConfig] = None,
    seed: SeedLike = None,
) -> Dict[str, MonthlyResult]:
    """Run the Figure-2/3 experiment on one dataset.

    Returns ``{model_name: MonthlyResult}``.  Months with too little
    training signal for a model (no positives collected yet) are skipped
    for that model, matching the paper's truncated early curves.
    """
    config = config or MonthlyConfig()
    selection = selection or FeatureSelection.paper_table2()
    rng = as_generator(seed)

    train_serials, test_serials = split_disks(
        dataset, test_fraction=config.test_fraction, seed=rng.spawn(1)[0]
    )
    ds_train = dataset.subset_serials(train_serials)
    ds_test = dataset.subset_serials(test_serials)
    train, scaler = prepare_arrays(ds_train, selection, horizon=config.horizon)
    test, _ = prepare_arrays(ds_test, selection, scaler=scaler, horizon=config.horizon)

    usable = np.flatnonzero(train.usable)
    order = usable[stream_order(train.days[usable], train.serials[usable])]
    months_of_stream = train.months[order]

    last_month = int(dataset.months.max())
    eval_months = (
        list(config.eval_months)
        if config.eval_months is not None
        else list(range(config.start_month, last_month + 1))
    )
    eval_set = sorted(m for m in eval_months if m <= last_month)

    results: Dict[str, MonthlyResult] = {m: MonthlyResult(m) for m in config.models}

    orf: Optional[OnlineRandomForest] = None
    if "orf" in config.models:
        orf = OnlineRandomForest(
            train.n_features, seed=rng.spawn(1)[0], **config.orf_params
        )

    stream_pos = 0
    for month in range(0, (eval_set[-1] if eval_set else -1) + 1):
        # ---- feed the ORF this month's stream slice --------------------
        month_end = np.searchsorted(months_of_stream, month, side="right")
        if orf is not None and month_end > stream_pos:
            slice_rows = order[stream_pos:month_end]
            orf.partial_fit(
                train.X[slice_rows],
                train.y[slice_rows],
                chunk_size=config.orf_chunk_size,
            )
        stream_pos = month_end

        if month not in eval_set:
            continue

        # ---- evaluate every model on the fixed test set ----------------
        if orf is not None:
            fdr, far, thr = _evaluate_on_test(orf.predict_score, test, config)
            results["orf"].append(month, fdr, far, thr)

        pool = order[:month_end]
        if pool.size:
            X_pool, y_pool = train.X[pool], train.y[pool]
            for name in config.models:
                if name == "orf":
                    continue
                model = _fit_offline(name, X_pool, y_pool, config, rng)
                if model is None:
                    continue
                fdr, far, thr = _evaluate_on_test(model.predict_score, test, config)
                results[name].append(month, fdr, far, thr)

    return results
