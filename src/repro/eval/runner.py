"""Seed replication and mean±std aggregation for the table benches.

The paper repeats every table experiment five times and reports
``mean ± std``; these helpers make that a one-liner in the benches and
keep seed handling reproducible (seed i of a run is derived from the
master seed, not from global state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.tables import format_mean_std

T = TypeVar("T")


def derive_seeds(master_seed: SeedLike, n: int) -> List[int]:
    """n reproducible child seeds from a master seed."""
    rng = as_generator(master_seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n)]


def repeat_with_seeds(
    fn: Callable[[int], T], *, n_repeats: int = 5, master_seed: SeedLike = 0
) -> List[T]:
    """Run ``fn(seed)`` for n derived seeds; returns the result list."""
    if n_repeats <= 0:
        raise ValueError(f"n_repeats must be > 0, got {n_repeats}")
    return [fn(seed) for seed in derive_seeds(master_seed, n_repeats)]


@dataclass(frozen=True)
class MeanStd:
    """An aggregated measurement, formatted the way the paper's tables are."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return format_mean_std(self.mean, self.std)

    def as_percent(self) -> "MeanStd":
        """Scale a rate in [0, 1] to percentage points."""
        return MeanStd(self.mean * 100.0, self.std * 100.0, self.n)


def aggregate_mean_std(values: Sequence[float]) -> MeanStd:
    """Mean and (population) std of repeated measurements; NaNs dropped."""
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=np.float64)
    if arr.size == 0:
        return MeanStd(float("nan"), float("nan"), 0)
    return MeanStd(float(arr.mean()), float(arr.std()), int(arr.size))


def aggregate_rate_pairs(
    pairs: Sequence[Tuple[float, float]]
) -> Dict[str, MeanStd]:
    """Aggregate a sequence of (fdr, far) runs into table-ready cells."""
    fdrs = [p[0] for p in pairs]
    fars = [p[1] for p in pairs]
    return {
        "fdr": aggregate_mean_std(fdrs).as_percent(),
        "far": aggregate_mean_std(fars).as_percent(),
    }
