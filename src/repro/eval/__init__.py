"""Evaluation harness: the paper's metrics and experiment protocols.

* :mod:`~repro.eval.metrics` — disk-level FDR/FAR (§4.3) and trade-off
  curves;
* :mod:`~repro.eval.protocol` — labeling rules and the 70/30 disk-level
  split (§4.4 experimental setup);
* :mod:`~repro.eval.threshold` — FAR-pinned operating-point selection;
* :mod:`~repro.eval.monthly` — the §4.4 convergence experiment
  (Figures 2/3);
* :mod:`~repro.eval.longterm` — the §4.5 long-term-use simulation
  (Figures 4-7);
* :mod:`~repro.eval.runner` — seed-replication and mean±std aggregation
  used by every table bench.
"""

from repro.eval.metrics import (
    DiskLevelCounts,
    detection_mask,
    disk_level_rates,
    disk_max_scores,
    false_alarm_mask,
    fdr_far_curve,
)
from repro.eval.aging import DriftAlert, ScoreDriftMonitor
from repro.eval.leadtime import (
    curve_auc,
    lead_time_distribution,
    lead_time_summary,
    migration_feasible_rate,
)
from repro.eval.monthly import MonthlyConfig, MonthlyResult, run_monthly_comparison
from repro.eval.longterm import LongTermConfig, MonthRates, run_longterm
from repro.eval.protocol import (
    LabeledArrays,
    labels_and_mask,
    prepare_arrays,
    split_disks,
    stream_order,
)
from repro.eval.runner import aggregate_mean_std, repeat_with_seeds
from repro.eval.threshold import fdr_at_far, threshold_for_far

__all__ = [
    "DiskLevelCounts",
    "disk_max_scores",
    "detection_mask",
    "false_alarm_mask",
    "disk_level_rates",
    "fdr_far_curve",
    "LabeledArrays",
    "split_disks",
    "labels_and_mask",
    "prepare_arrays",
    "stream_order",
    "threshold_for_far",
    "fdr_at_far",
    "MonthlyConfig",
    "MonthlyResult",
    "run_monthly_comparison",
    "LongTermConfig",
    "MonthRates",
    "run_longterm",
    "repeat_with_seeds",
    "aggregate_mean_std",
    "ScoreDriftMonitor",
    "DriftAlert",
    "curve_auc",
    "lead_time_distribution",
    "lead_time_summary",
    "migration_feasible_rate",
]
