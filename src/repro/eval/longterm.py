"""The §4.5 long-term-use simulation (Figures 4-7).

Unlike §4.4, there is no disk split: the labeled samples are divided
*temporally* into months, and every strategy is deployed at the end of a
warm-up period, then evaluated month by month on the next month's
samples:

* ``no_update``    — offline RF trained once on the warm-up months;
* ``replacing``    — offline RF retrained each month on the previous
  month only (Zhu et al.'s 1-month replacing strategy);
* ``accumulation`` — offline RF retrained each month on everything
  since the beginning;
* ``orf``          — the online model streams through the data once and
  is never retrained.

Decision thresholds are tuned (to the FAR budget, ``mode="under"``) on
the data each strategy trains on; the no-update and ORF strategies tune
once at deployment and *hold* the threshold — which is exactly what
exposes model aging as a rising FAR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.forest import OnlineRandomForest
from repro.eval.metrics import DiskLevelCounts, disk_level_rates, disk_max_scores
from repro.eval.protocol import LabeledArrays, prepare_arrays, stream_order
from repro.eval.threshold import threshold_for_far
from repro.features.selection import FeatureSelection
from repro.offline.forest import RandomForestClassifier
from repro.offline.sampling import downsample_negatives
from repro.smart.dataset import SmartDataset
from repro.utils.rng import SeedLike, as_generator

STRATEGIES = ("no_update", "replacing", "accumulation", "orf")


@dataclass
class LongTermConfig:
    """Knobs of the §4.5 run; defaults mirror the paper's setup."""

    horizon: int = 7
    far_target: float = 0.01
    #: offline models deploy after this many months (paper: 6 for STA, 4 for STB)
    warmup_months: int = 6
    neg_sample_ratio: Optional[float] = 3.0
    strategies: Sequence[str] = STRATEGIES
    #: months of trailing data used to tune each re-trained model's threshold
    validation_months: int = 2
    #: FDR is measured over failures in a trailing window of this many
    #: months (1 = paper-faithful; >1 smooths the series when the scaled
    #: fleet yields few failures per month)
    fdr_window_months: int = 1
    #: 0 = exact per-sample ORF updates; >0 streams in mini-batches of
    #: this size (see OnlineRandomForest.partial_fit and ablation A8)
    orf_chunk_size: int = 0
    #: re-tune the ORF's alarm threshold each month on the trailing stream.
    #: The model itself is never retrained — this is operating-point
    #: tracking, which any online deployment does for free; a threshold
    #: tuned once against the immature warm-up model goes stale as the
    #: forest keeps learning.
    orf_retune_monthly: bool = True

    rf_params: dict = field(
        default_factory=lambda: dict(n_trees=30, max_features="sqrt", min_samples_leaf=2)
    )
    orf_params: dict = field(
        default_factory=lambda: dict(
            n_trees=25,
            n_tests=40,
            min_parent_size=120.0,
            min_gain=0.05,
            lambda_pos=1.0,
            lambda_neg=0.02,
            oobe_threshold=0.25,
            age_threshold=2000.0,
        )
    )


@dataclass(frozen=True)
class MonthRates:
    """One month's measured operating point for one strategy."""

    month: int
    fdr: float
    far: float
    n_failed: int
    n_good: int
    threshold: float


def _tune_threshold(
    scores: np.ndarray, arrays: LabeledArrays, rows: np.ndarray, config: LongTermConfig
) -> float:
    """FAR-budget threshold from per-disk max scores over given rows.

    ``scores`` aligns with ``rows`` (it was computed on ``arrays.X[rows]``).
    """
    fa_rows = arrays.false_alarm_mask()[rows]
    _, good_max = disk_max_scores(scores, arrays.serials[rows], fa_rows)
    return threshold_for_far(good_max, config.far_target, mode="under")


def _month_counts(
    scores_month: np.ndarray,
    arrays: LabeledArrays,
    month_rows: np.ndarray,
    det_window_rows: np.ndarray,
    det_window_scores: np.ndarray,
    threshold: float,
) -> DiskLevelCounts:
    det = arrays.detection_mask()
    fa = arrays.false_alarm_mask()
    det_counts = disk_level_rates(
        det_window_scores,
        arrays.serials[det_window_rows],
        det[det_window_rows],
        np.zeros(det_window_rows.size, dtype=bool),
        threshold,
    )
    fa_counts = disk_level_rates(
        scores_month,
        arrays.serials[month_rows],
        np.zeros(month_rows.size, dtype=bool),
        fa[month_rows],
        threshold,
    )
    return DiskLevelCounts(
        n_failed=det_counts.n_failed,
        n_detected=det_counts.n_detected,
        n_good=fa_counts.n_good,
        n_false_alarms=fa_counts.n_false_alarms,
    )


def _fit_rf(
    X: np.ndarray,
    y: np.ndarray,
    config: LongTermConfig,
    rng: np.random.Generator,
) -> Optional[RandomForestClassifier]:
    if np.unique(y).size < 2:
        return None
    idx = downsample_negatives(y, config.neg_sample_ratio, rng.spawn(1)[0])
    model = RandomForestClassifier(seed=rng.spawn(1)[0], **config.rf_params)
    model.fit(X[idx], y[idx])
    return model


def run_longterm(
    dataset: SmartDataset,
    *,
    selection: Optional[FeatureSelection] = None,
    config: Optional[LongTermConfig] = None,
    seed: SeedLike = None,
) -> Dict[str, List[MonthRates]]:
    """Run the Figure-4/5/6/7 simulation; returns {strategy: month series}.

    Months where a strategy has no trainable data (e.g. the replacing
    strategy after a month with no positives) reuse the previous model,
    which is what an operator would do.
    """
    config = config or LongTermConfig()
    selection = selection or FeatureSelection.paper_table2()
    unknown = set(config.strategies) - set(STRATEGIES)
    if unknown:
        raise ValueError(f"unknown strategies {sorted(unknown)}")
    rng = as_generator(seed)

    arrays, _scaler = prepare_arrays(dataset, selection, horizon=config.horizon)
    usable = np.flatnonzero(arrays.usable)
    order = usable[stream_order(arrays.days[usable], arrays.serials[usable])]
    stream_months = arrays.months[order]

    last_month = int(arrays.months.max())
    warmup = config.warmup_months
    if warmup >= last_month:
        raise ValueError(
            f"warmup_months={warmup} leaves no months to evaluate "
            f"(dataset spans {last_month + 1})"
        )
    eval_months = list(range(warmup, last_month + 1))

    results: Dict[str, List[MonthRates]] = {s: [] for s in config.strategies}

    # ------------------------------------------------------------- warm-up
    warmup_rows = order[stream_months < warmup]
    X_warm, y_warm = arrays.X[warmup_rows], arrays.y[warmup_rows]

    models: Dict[str, object] = {}
    thresholds: Dict[str, float] = {}

    if "no_update" in config.strategies or "accumulation" in config.strategies:
        base_rf = _fit_rf(X_warm, y_warm, config, rng)
        if base_rf is None:
            raise ValueError("warm-up period contains no positive samples")
        if "no_update" in config.strategies:
            models["no_update"] = base_rf
            scores = base_rf.predict_score(X_warm)
            thresholds["no_update"] = _tune_threshold(
                scores, arrays, warmup_rows, config
            )
        if "accumulation" in config.strategies:
            models["accumulation"] = base_rf
            thresholds["accumulation"] = thresholds.get("no_update")
            if thresholds["accumulation"] is None:
                scores = base_rf.predict_score(X_warm)
                thresholds["accumulation"] = _tune_threshold(
                    scores, arrays, warmup_rows, config
                )

    if "replacing" in config.strategies:
        rep_rows = order[stream_months == warmup - 1]
        rep_model = _fit_rf(
            arrays.X[rep_rows], arrays.y[rep_rows], config, rng
        ) or models.get("no_update") or _fit_rf(X_warm, y_warm, config, rng)
        models["replacing"] = rep_model
        scores = rep_model.predict_score(arrays.X[rep_rows])
        thresholds["replacing"] = _tune_threshold(scores, arrays, rep_rows, config)

    orf: Optional[OnlineRandomForest] = None
    if "orf" in config.strategies:
        orf = OnlineRandomForest(
            arrays.n_features, seed=rng.spawn(1)[0], **config.orf_params
        )
        warm_rows = order[stream_months < warmup]
        orf.partial_fit(
            arrays.X[warm_rows], arrays.y[warm_rows],
            chunk_size=config.orf_chunk_size,
        )
        models["orf"] = orf
        scores = orf.predict_score(X_warm)
        thresholds["orf"] = _tune_threshold(scores, arrays, warmup_rows, config)

    # --------------------------------------------------------- month loop
    for month in eval_months:
        month_rows = np.flatnonzero(arrays.months == month)
        if month_rows.size == 0:
            continue
        window_lo = month - config.fdr_window_months + 1
        det_window_rows = np.flatnonzero(
            (arrays.months >= window_lo) & (arrays.months <= month)
        )

        for strategy in config.strategies:
            model = models.get(strategy)
            if model is None:
                continue
            scores_month = model.predict_score(arrays.X[month_rows])
            det_scores = (
                scores_month
                if config.fdr_window_months == 1
                else model.predict_score(arrays.X[det_window_rows])
            )
            counts = _month_counts(
                scores_month,
                arrays,
                month_rows,
                det_window_rows if config.fdr_window_months > 1 else month_rows,
                det_scores,
                thresholds[strategy],
            )
            results[strategy].append(
                MonthRates(
                    month=month,
                    fdr=counts.fdr,
                    far=counts.far,
                    n_failed=counts.n_failed,
                    n_good=counts.n_good,
                    threshold=thresholds[strategy],
                )
            )

        # ---- post-month updates for the next iteration ------------------
        if "accumulation" in config.strategies:
            rows = order[stream_months <= month]
            model = _fit_rf(arrays.X[rows], arrays.y[rows], config, rng)
            if model is not None:
                models["accumulation"] = model
                val_rows = order[
                    (stream_months > month - config.validation_months)
                    & (stream_months <= month)
                ]
                scores = model.predict_score(arrays.X[val_rows])
                thresholds["accumulation"] = _tune_threshold(
                    scores, arrays, val_rows, config
                )
        if "replacing" in config.strategies:
            rows = order[stream_months == month]
            model = _fit_rf(arrays.X[rows], arrays.y[rows], config, rng)
            if model is not None:
                models["replacing"] = model
                scores = model.predict_score(arrays.X[rows])
                thresholds["replacing"] = _tune_threshold(scores, arrays, rows, config)
        if orf is not None:
            month_rows_stream = order[stream_months == month]
            orf.partial_fit(
                arrays.X[month_rows_stream], arrays.y[month_rows_stream],
                chunk_size=config.orf_chunk_size,
            )
            if config.orf_retune_monthly:
                val_rows = order[
                    (stream_months > month - config.validation_months)
                    & (stream_months <= month)
                ]
                if val_rows.size:
                    scores = orf.predict_score(arrays.X[val_rows])
                    thresholds["orf"] = _tune_threshold(
                        scores, arrays, val_rows, config
                    )

    return results
