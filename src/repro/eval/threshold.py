"""Operating-point selection: pin FAR, read off FDR.

The paper reports every figure "under the constraint that the FAR is
around 1.0%".  Two selection modes implement the two readings of that
sentence:

* ``"under"`` — the largest-FDR threshold with FAR ≤ target (what an
  operator deploying a FAR budget would choose);
* ``"closest"`` — the threshold whose FAR is nearest the target (what a
  paper plotting "FAR ≈ 1.0%" points reports).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.eval.metrics import disk_max_scores


def threshold_for_far(
    good_max_scores: np.ndarray,
    target_far: float,
    *,
    mode: str = "under",
) -> float:
    """Score threshold hitting the target FAR on per-disk max scores.

    ``good_max_scores`` is one entry per good disk (its max score over
    false-alarm rows).  Lowering the threshold raises both FAR and FDR,
    so the best threshold under a FAR cap is the *lowest* one still
    within budget.
    """
    if not 0.0 <= target_far <= 1.0:
        raise ValueError(f"target_far must be in [0, 1], got {target_far}")
    if mode not in ("under", "closest"):
        raise ValueError(f"mode must be 'under' or 'closest', got {mode!r}")
    gs = np.asarray(good_max_scores, dtype=np.float64)
    if gs.size == 0:
        return 0.5  # no good disks in scope: any threshold is vacuous

    candidates = np.unique(gs)
    # thresholds midway between consecutive candidates + one above the max
    thresholds = np.concatenate(
        [
            [candidates[0] - 1e-9],
            0.5 * (candidates[:-1] + candidates[1:]),
            [candidates[-1] + 1e-9],
        ]
    )
    sorted_gs = np.sort(gs)
    fars = (gs.size - np.searchsorted(sorted_gs, thresholds, "left")) / gs.size

    if mode == "under":
        ok = fars <= target_far
        # fars is non-increasing in threshold; pick the lowest ok threshold
        return float(thresholds[np.argmax(ok)]) if ok.any() else float(thresholds[-1])
    return float(thresholds[np.argmin(np.abs(fars - target_far))])


def fdr_at_far(
    scores: np.ndarray,
    serials: np.ndarray,
    det_mask: np.ndarray,
    fa_mask: np.ndarray,
    target_far: float,
    *,
    mode: str = "closest",
) -> Tuple[float, float, float]:
    """(fdr, achieved_far, threshold) at the FAR-pinned operating point.

    This is how every figure point in the reproduction is measured: tune
    the threshold on the same scored rows so FAR lands on the target,
    report the FDR there.
    """
    _, good_max = disk_max_scores(scores, serials, fa_mask)
    thr = threshold_for_far(good_max, target_far, mode=mode)
    _, failed_max = disk_max_scores(scores, serials, det_mask)
    fdr = (
        float(np.mean(failed_max >= thr)) if failed_max.size else float("nan")
    )
    far = float(np.mean(good_max >= thr)) if good_max.size else float("nan")
    return fdr, far, thr
