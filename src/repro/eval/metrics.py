"""Disk-level FDR and FAR — the paper's §4.3 metrics.

Both metrics are defined over *disks*, not samples:

* a **failed** disk is detected iff at least one of its samples taken
  within the last ``horizon`` days before failure scores positive;
* a **good** disk is a false alarm iff any of its samples outside its
  final (unlabelable) week scores positive.

All functions work on flat per-row arrays (scores, serials, masks), so
the same code serves the global test-set evaluation of §4.4 and the
month-sliced evaluation of §4.5 — callers only change the row masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def detection_mask(days_to_failure: np.ndarray, horizon: int = 7) -> np.ndarray:
    """Rows that count toward detection: within *horizon* days of failure.

    ``days_to_failure`` is +inf for good disks, so their rows are never
    detection rows.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    return days_to_failure < horizon


def false_alarm_mask(
    days_to_failure: np.ndarray,
    days: np.ndarray,
    last_day: np.ndarray,
    horizon: int = 7,
) -> np.ndarray:
    """Rows that count toward false alarms.

    Only good disks' rows, and only those outside the disk's final
    *horizon*-day window (whose labels are unknowable online, §4.4).
    ``last_day`` is each row's disk's last observed day.
    """
    good = ~np.isfinite(days_to_failure)
    return good & (days <= last_day - horizon)


def disk_max_scores(
    scores: np.ndarray, serials: np.ndarray, mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(unique serials, per-disk max score) over the masked rows."""
    sel = np.flatnonzero(mask)
    if sel.size == 0:
        return np.empty(0, dtype=serials.dtype), np.empty(0)
    uniq, inverse = np.unique(serials[sel], return_inverse=True)
    out = np.full(uniq.shape[0], -np.inf)
    np.maximum.at(out, inverse, scores[sel])
    return uniq, out


@dataclass(frozen=True)
class DiskLevelCounts:
    """Confusion counts at the disk level, plus the derived rates."""

    n_failed: int
    n_detected: int
    n_good: int
    n_false_alarms: int

    @property
    def fdr(self) -> float:
        """Failure detection rate; NaN when no failed disks are in scope."""
        return self.n_detected / self.n_failed if self.n_failed else float("nan")

    @property
    def far(self) -> float:
        """False alarm rate; NaN when no good disks are in scope."""
        return self.n_false_alarms / self.n_good if self.n_good else float("nan")


def disk_level_rates(
    scores: np.ndarray,
    serials: np.ndarray,
    det_mask: np.ndarray,
    fa_mask: np.ndarray,
    threshold: float,
) -> DiskLevelCounts:
    """Evaluate FDR/FAR at a fixed score threshold."""
    _, failed_max = disk_max_scores(scores, serials, det_mask)
    _, good_max = disk_max_scores(scores, serials, fa_mask)
    return DiskLevelCounts(
        n_failed=int(failed_max.shape[0]),
        n_detected=int(np.sum(failed_max >= threshold)),
        n_good=int(good_max.shape[0]),
        n_false_alarms=int(np.sum(good_max >= threshold)),
    )


def fdr_far_curve(
    scores: np.ndarray,
    serials: np.ndarray,
    det_mask: np.ndarray,
    fa_mask: np.ndarray,
    *,
    n_thresholds: int = 200,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(thresholds, fdr, far) swept over the observed score range.

    Thresholds are the unique per-disk max scores (subsampled to at most
    ``n_thresholds``), so every achievable operating point appears.
    Vectorized: one sort per disk group, then two searchsorted passes.
    """
    _, failed_max = disk_max_scores(scores, serials, det_mask)
    _, good_max = disk_max_scores(scores, serials, fa_mask)
    candidates = np.unique(np.concatenate([failed_max, good_max]))
    if candidates.size == 0:
        return np.empty(0), np.empty(0), np.empty(0)
    if candidates.size > n_thresholds:
        pick = np.linspace(0, candidates.size - 1, n_thresholds).astype(int)
        candidates = candidates[pick]

    failed_sorted = np.sort(failed_max)
    good_sorted = np.sort(good_max)
    n_failed = max(failed_sorted.size, 1)
    n_good = max(good_sorted.size, 1)
    # counts of disks with max >= t
    fdr = (failed_sorted.size - np.searchsorted(failed_sorted, candidates, "left")) / n_failed
    far = (good_sorted.size - np.searchsorted(good_sorted, candidates, "left")) / n_good
    return candidates, fdr, far


def sample_level_rates(
    scores: np.ndarray, y: np.ndarray, threshold: float
) -> Tuple[float, float]:
    """(recall, false-positive rate) at the *sample* level.

    Secondary diagnostic only — the paper's headline metrics are
    disk-level; sample-level rates help debug a model before the disk
    aggregation.
    """
    pred = scores >= threshold
    pos = y == 1
    neg = ~pos
    recall = float(pred[pos].mean()) if pos.any() else float("nan")
    fpr = float(pred[neg].mean()) if neg.any() else float("nan")
    return recall, fpr
