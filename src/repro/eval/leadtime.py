"""Lead-time and curve-summary metrics — "being accurate is not enough".

The paper's reference [17] (Li et al., SRDS'16) argues FDR alone
under-specifies a disk-failure predictor: an alarm one hour before
death is detected-but-useless.  These metrics quantify the *when*:

* :func:`lead_time_distribution` — per failed disk, days between its
  first positive-scoring sample and its death;
* :func:`migration_feasible_rate` — fraction of failures with enough
  lead time to evacuate the drive at a given migration duration;
* :func:`curve_auc` — area under the disk-level FDR/FAR trade-off
  curve (threshold-free quality summary used by the ablations).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.eval.metrics import fdr_far_curve
from repro.utils.validation import check_positive


def lead_time_distribution(
    scores: np.ndarray,
    serials: np.ndarray,
    days: np.ndarray,
    fail_day_by_serial: Dict[int, int],
    threshold: float,
    *,
    max_lead_days: int = 30,
) -> Dict[int, float]:
    """Per-disk lead time: ``fail_day - first alarm day`` in days.

    Only samples within ``max_lead_days`` of the failure count (an alarm
    months earlier is a false alarm that happened to precede death, not
    a prediction).  Disks with no qualifying alarm map to ``-1``.
    """
    check_positive(max_lead_days, "max_lead_days")
    out: Dict[int, float] = {}
    positive = scores >= threshold
    for serial, fail_day in fail_day_by_serial.items():
        mask = (
            (serials == serial)
            & positive
            & (days > fail_day - max_lead_days)
            & (days <= fail_day)
        )
        if mask.any():
            out[int(serial)] = float(fail_day - days[mask].min())
        else:
            out[int(serial)] = -1.0
    return out


def lead_time_summary(lead_times: Dict[int, float]) -> Dict[str, float]:
    """Median/percentile summary over the detected disks.

    With no failed disks at all the detection rate is 0/0 — undefined,
    reported as NaN (a healthy fleet is not a fleet of missed
    detections).  A detection rate of 0.0 always means real failures
    went unpredicted.
    """
    detected = np.array([v for v in lead_times.values() if v >= 0])
    n = len(lead_times)
    if detected.size == 0:
        return {
            "n_failed": n, "n_detected": 0,
            "detection_rate": 0.0 if n else float("nan"),
            "median_days": float("nan"), "p10_days": float("nan"),
        }
    return {
        "n_failed": n,
        "n_detected": int(detected.size),
        "detection_rate": detected.size / n if n else float("nan"),
        "median_days": float(np.median(detected)),
        "p10_days": float(np.percentile(detected, 10)),
    }


def migration_feasible_rate(
    lead_times: Dict[int, float], migration_days: float
) -> float:
    """Fraction of failed disks detected with ≥ *migration_days* to spare.

    This is the operationally honest detection rate: a hit without time
    to act counts as a miss.
    """
    check_positive(migration_days, "migration_days")
    if not lead_times:
        return float("nan")
    ok = sum(1 for v in lead_times.values() if v >= migration_days)
    return ok / len(lead_times)


def curve_auc(
    scores: np.ndarray,
    serials: np.ndarray,
    det_mask: np.ndarray,
    fa_mask: np.ndarray,
) -> float:
    """Area under the disk-level FDR-vs-FAR curve (trapezoidal), in [0, 1].

    1.0 = some threshold separates every failed disk from every good
    one; 0.5 ≈ uninformative scores.
    """
    _, fdr, far = fdr_far_curve(scores, serials, det_mask, fa_mask)
    if fdr.size < 2:
        return float("nan")
    order = np.argsort(far)
    far_sorted = np.concatenate([[0.0], far[order], [1.0]])
    fdr_sorted = np.concatenate([[0.0], fdr[order], [1.0]])
    # enforce a proper step curve (max FDR reachable at or below each FAR)
    fdr_sorted = np.maximum.accumulate(fdr_sorted)
    return float(np.trapezoid(fdr_sorted, far_sorted))
