"""Labeling rules and data splits — the §4.4 experimental setup.

* 70/30 train/test split at the *disk* level, stratified over
  good/failed (a disk's samples never straddle the split);
* labels: a failed disk's samples within the last ``horizon`` (7) days
  are positive, its earlier samples negative; a good disk's samples are
  negative except its final *horizon* days, which are unlabelable and
  excluded (``usable = False``);
* min-max scaling (Eq. 5) fitted on training rows only.

Everything is bundled into :class:`LabeledArrays`, the flat structure
both evaluation protocols consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.eval.metrics import detection_mask, false_alarm_mask
from repro.features.scaling import MinMaxScaler
from repro.features.selection import FeatureSelection
from repro.smart.dataset import SmartDataset
from repro.utils.rng import SeedLike, as_generator


def split_disks(
    dataset: SmartDataset,
    *,
    test_fraction: float = 0.3,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stratified disk-level split; returns (train_serials, test_serials).

    Good and failed disks are split separately so the rare failed class
    keeps its proportion in both halves (70/30 in the paper).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_generator(seed)
    train_parts, test_parts = [], []
    for group in (dataset.failed_serials, dataset.good_serials):
        perm = rng.permutation(group)
        n_test = int(round(test_fraction * perm.size))
        test_parts.append(perm[:n_test])
        train_parts.append(perm[n_test:])
    return (
        np.sort(np.concatenate(train_parts)),
        np.sort(np.concatenate(test_parts)),
    )


def last_day_per_row(dataset: SmartDataset) -> np.ndarray:
    """Each row's disk's last observed day (vectorized via serial LUT)."""
    max_serial = int(dataset.serials.max()) if dataset.n_rows else -1
    lut = np.zeros(max_serial + 1, dtype=np.int64)
    for d in dataset.drives:
        if d.serial <= max_serial:
            lut[d.serial] = d.last_observed_day
    return lut[dataset.serials]


def labels_and_mask(
    dataset: SmartDataset, *, horizon: int = 7
) -> Tuple[np.ndarray, np.ndarray]:
    """(y, usable) per row under the paper's labeling rules."""
    dtf = dataset.days_to_failure()
    y = (dtf < horizon).astype(np.int8)  # inf < horizon is False → good = 0
    good = ~np.isfinite(dtf)
    last = last_day_per_row(dataset)
    unlabelable = good & (dataset.days > last - horizon)
    return y, ~unlabelable


@dataclass
class LabeledArrays:
    """Flat, model-ready view of a dataset split.

    ``X`` is already feature-selected and min-max scaled; all other
    arrays align row-wise with it.  ``usable`` marks rows whose label is
    trustworthy (training streams must respect it; the evaluation masks
    already do).
    """

    X: np.ndarray
    y: np.ndarray
    serials: np.ndarray
    days: np.ndarray
    months: np.ndarray
    days_to_failure: np.ndarray
    last_day: np.ndarray
    usable: np.ndarray
    horizon: int

    @property
    def n_rows(self) -> int:
        """Number of snapshot rows in the view."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Width of the prepared feature matrix."""
        return int(self.X.shape[1])

    def detection_mask(self) -> np.ndarray:
        """Rows within the horizon of their drive's failure (§4.3)."""
        return detection_mask(self.days_to_failure, self.horizon)

    def false_alarm_mask(self) -> np.ndarray:
        """Good drives' rows outside their final horizon window (§4.3)."""
        return false_alarm_mask(
            self.days_to_failure, self.days, self.last_day, self.horizon
        )

    def month_slice(self, month: int) -> np.ndarray:
        """Row mask of one calendar month."""
        return self.months == month

    def rows_before_month(self, month: int) -> np.ndarray:
        """Row mask of everything strictly before a month (training pools)."""
        return self.months < month

    def training_rows(self) -> np.ndarray:
        """Rows eligible to train on: usable labels only."""
        return np.flatnonzero(self.usable)


def stream_order(days: np.ndarray, serials: np.ndarray) -> np.ndarray:
    """Row order of sequential arrival: by day, serial breaking ties."""
    return np.lexsort((serials, days))


def prepare_arrays(
    dataset: SmartDataset,
    selection: FeatureSelection,
    *,
    scaler: Optional[MinMaxScaler] = None,
    horizon: int = 7,
) -> Tuple[LabeledArrays, MinMaxScaler]:
    """Project, scale and label a dataset; returns (arrays, fitted scaler).

    Pass the scaler fitted on the *training* split when preparing a test
    split, so no test statistics leak into the normalization.
    """
    Xc = selection.apply(dataset.X.astype(np.float64))
    if scaler is None:
        scaler = MinMaxScaler().fit(Xc)
    X = scaler.transform(Xc)
    y, usable = labels_and_mask(dataset, horizon=horizon)
    arrays = LabeledArrays(
        X=X,
        y=y,
        serials=dataset.serials.copy(),
        days=dataset.days.copy(),
        months=dataset.months,
        days_to_failure=dataset.days_to_failure(),
        last_day=last_day_per_row(dataset),
        usable=usable,
        horizon=horizon,
    )
    return arrays, scaler
