"""Deployment-time model-aging detection.

The paper *simulates* long-term use to show offline models rot; an
operator needs to *notice* the rot on a live system without ground
truth (failures take weeks to confirm).  The standard signal is score
drift: if the model's score distribution on incoming (unlabeled!)
samples shifts away from its post-deployment baseline, the decision
boundary no longer means what it meant — FAR is moving even though no
label has arrived yet.

:class:`ScoreDriftMonitor` implements that watchdog with the same PSI
statistic :mod:`repro.features.driftstats` uses for the §1 analysis:
feed it every score the deployed model emits; it maintains a frozen
baseline window and a sliding recent window and raises when PSI
crosses the alert threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.features.driftstats import population_stability_index
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DriftAlert:
    """Raised when the recent score distribution left the baseline."""

    n_scores_seen: int
    psi: float
    baseline_mean: float
    recent_mean: float


class ScoreDriftMonitor:
    """PSI watchdog over a deployed model's score stream.

    Parameters
    ----------
    baseline_size:
        Scores collected right after deployment to freeze as the
        reference distribution.
    window_size:
        Sliding window of recent scores compared against the baseline.
    psi_threshold:
        Alert level; 0.25 is the conventional "major shift — retrain"
        reading.
    check_every:
        Evaluate PSI every k-th score once the window is full.
    """

    def __init__(
        self,
        *,
        baseline_size: int = 2000,
        window_size: int = 1000,
        psi_threshold: float = 0.25,
        check_every: int = 100,
    ) -> None:
        check_positive(baseline_size, "baseline_size")
        check_positive(window_size, "window_size")
        check_positive(psi_threshold, "psi_threshold")
        check_positive(check_every, "check_every")
        self.baseline_size = int(baseline_size)
        self.window_size = int(window_size)
        self.psi_threshold = float(psi_threshold)
        self.check_every = int(check_every)

        self._baseline: List[float] = []
        self._frozen: Optional[np.ndarray] = None
        self._window: Deque[float] = deque(maxlen=self.window_size)
        self._since_check = 0
        self.n_scores_seen = 0
        self.alerts: List[DriftAlert] = []

    @property
    def baseline_ready(self) -> bool:
        """True once the reference window has been frozen."""
        return self._frozen is not None

    def observe(self, score: float) -> Optional[DriftAlert]:
        """Feed one model score; returns a :class:`DriftAlert` when fired."""
        self.n_scores_seen += 1
        if self._frozen is None:
            self._baseline.append(float(score))
            if len(self._baseline) >= self.baseline_size:
                self._frozen = np.asarray(self._baseline)
                self._baseline = []
            return None

        self._window.append(float(score))
        self._since_check += 1
        if (
            len(self._window) < self.window_size
            or self._since_check < self.check_every
        ):
            return None
        self._since_check = 0
        recent = np.asarray(self._window)
        psi = population_stability_index(self._frozen, recent)
        if np.isfinite(psi) and psi > self.psi_threshold:
            alert = DriftAlert(
                n_scores_seen=self.n_scores_seen,
                psi=float(psi),
                baseline_mean=float(self._frozen.mean()),
                recent_mean=float(recent.mean()),
            )
            self.alerts.append(alert)
            return alert
        return None

    def observe_batch(self, scores: np.ndarray) -> List[DriftAlert]:
        """Feed many scores; returns every alert raised along the way."""
        out = []
        for s in np.asarray(scores, dtype=np.float64).ravel():
            alert = self.observe(float(s))
            if alert is not None:
                out.append(alert)
        return out

    def current_psi(self) -> float:
        """PSI of the current window vs. baseline (NaN before both ready)."""
        if self._frozen is None or len(self._window) < self.window_size:
            return float("nan")
        return population_stability_index(self._frozen, np.asarray(self._window))

    def reset_baseline(self) -> None:
        """Re-baseline (call after retraining / replacing the model)."""
        self._frozen = None
        self._baseline = []
        self._window.clear()
        self._since_check = 0
