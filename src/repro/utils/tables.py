"""Plain-text table rendering for the benchmark harness.

Every bench prints the rows the paper's corresponding table/figure
reports; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _stringify(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with a ruled header row.

    Floats are formatted with two decimals; pass pre-formatted strings for
    anything fancier (e.g. ``"98.08 ± 0.37"``).
    """
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    rule = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(rule))
    lines.append(fmt_row(list(headers)))
    lines.append(rule)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def format_mean_std(mean: float, std: float, *, digits: int = 2) -> str:
    """Format ``mean ± std`` the way the paper's tables report it."""
    return f"{mean:.{digits}f} ± {std:.{digits}f}"


def format_series(
    xs: Sequence[Any], ys: Sequence[float], *, x_name: str = "x", y_name: str = "y"
) -> str:
    """Render a figure's (x, y) series as a two-column table."""
    return format_table([x_name, y_name], list(zip(xs, ys)))
