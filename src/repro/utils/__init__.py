"""Shared utilities: seeded RNG streams, validation helpers, ASCII tables.

These are deliberately small, dependency-free building blocks used across
every other subpackage.  Nothing in here knows about disks or forests.
"""

from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.tables import format_table, format_markdown_table
from repro.utils.validation import (
    check_array_2d,
    check_binary_labels,
    check_in_range,
    check_positive,
    check_probability,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "format_table",
    "format_markdown_table",
    "check_array_2d",
    "check_binary_labels",
    "check_in_range",
    "check_positive",
    "check_probability",
]
