"""Argument validation helpers.

All public entry points validate their inputs through these functions so
error messages are consistent and tests can assert on them.  Validators
return the (possibly coerced) value so they can be used inline::

    X = check_array_2d(X, "X")
    y = check_binary_labels(y, n_rows=X.shape[0])
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

Number = Union[int, float]


def check_positive(value: Number, name: str, *, strict: bool = True) -> Number:
    """Require ``value > 0`` (or ``>= 0`` when *strict* is False)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: Number,
    name: str,
    low: Optional[Number] = None,
    high: Optional[Number] = None,
    *,
    inclusive: bool = True,
) -> Number:
    """Require ``low <= value <= high`` (or strict inequalities)."""
    if low is not None:
        ok = value >= low if inclusive else value > low
        if not ok:
            op = ">=" if inclusive else ">"
            raise ValueError(f"{name} must be {op} {low}, got {value!r}")
    if high is not None:
        ok = value <= high if inclusive else value < high
        if not ok:
            op = "<=" if inclusive else "<"
            raise ValueError(f"{name} must be {op} {high}, got {value!r}")
    return value


def check_probability(value: Number, name: str) -> float:
    """Require a probability in [0, 1]."""
    return float(check_in_range(value, name, 0.0, 1.0))


def check_array_2d(
    X: object, name: str = "X", *, dtype: np.dtype = np.float64, min_rows: int = 0
) -> np.ndarray:
    """Coerce *X* to a C-contiguous 2-D float array; reject NaN/inf."""
    arr = np.ascontiguousarray(X, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.shape[0] < min_rows:
        raise ValueError(
            f"{name} needs at least {min_rows} row(s), got {arr.shape[0]}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_binary_labels(
    y: object, name: str = "y", *, n_rows: Optional[int] = None
) -> np.ndarray:
    """Coerce labels to an int8 vector of {0, 1}."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if n_rows is not None and arr.shape[0] != n_rows:
        raise ValueError(
            f"{name} length {arr.shape[0]} does not match n_rows={n_rows}"
        )
    uniq = np.unique(arr)
    if not np.all(np.isin(uniq, (0, 1))):
        raise ValueError(f"{name} must contain only 0/1 labels, got values {uniq}")
    return arr.astype(np.int8, copy=False)


def check_feature_count(X: np.ndarray, expected: int, name: str = "X") -> np.ndarray:
    """Require that *X* has *expected* columns (model/feature agreement)."""
    if X.shape[1] != expected:
        raise ValueError(
            f"{name} has {X.shape[1]} feature(s); the model was built with {expected}"
        )
    return X


def check_monotonic(values: Sequence[Number], name: str) -> np.ndarray:
    """Require a non-decreasing sequence (used for timestamps)."""
    arr = np.asarray(values)
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise ValueError(f"{name} must be non-decreasing")
    return arr
