"""Reproducible random-number-generator plumbing.

Every stochastic component in the library (online bagging, bootstrap
sampling, the SMART field-data simulator, ...) takes either an integer
seed, ``None``, or a ``numpy.random.Generator``.  Components that own
sub-components (e.g. a forest owning trees) hand each child an
*independent* stream derived with :func:`numpy.random.Generator.spawn`,
so results do not depend on scheduling order when trees are updated in
parallel (see DESIGN.md §6).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    ``None`` gives fresh OS entropy; an ``int`` or ``SeedSequence`` seeds a
    new PCG64 stream; an existing ``Generator`` is passed through untouched
    (so callers can share a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {type(seed).__name__!r} as a random seed")


def spawn_generators(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive *n* statistically independent child generators from *rng*.

    The parent stream is advanced exactly once per call regardless of *n*,
    so spawning is itself reproducible.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return list(rng.spawn(n))


class RngFactory:
    """A reproducible well of independent generators.

    The factory is seeded once; every :meth:`make` call returns a new
    independent stream.  This lets long-lived objects (e.g. an online
    forest that replaces decayed trees over months of simulated time)
    create fresh tree RNGs without correlating with the data stream.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._root = as_generator(seed)

    def make(self) -> np.random.Generator:
        """Return a new generator independent of all previous ones."""
        return self._root.spawn(1)[0]

    def make_many(self, n: int) -> List[np.random.Generator]:
        """Return *n* new mutually independent generators."""
        return spawn_generators(self._root, n)


def poisson_draws(
    rng: np.random.Generator, lam: float, size: Optional[int] = None
) -> Union[int, np.ndarray]:
    """Poisson(λ) draw(s) that tolerate λ == 0 (always 0) and negative λ (error)."""
    if lam < 0:
        raise ValueError(f"Poisson rate must be >= 0, got {lam}")
    if lam == 0:
        return 0 if size is None else np.zeros(size, dtype=np.int64)
    return rng.poisson(lam, size)


def choice_without_replacement(
    rng: np.random.Generator, n: int, k: int
) -> np.ndarray:
    """Sample *k* distinct indices from ``range(n)``; clamp k to n."""
    k = min(k, n)
    return rng.choice(n, size=k, replace=False)


def stable_hash_seed(*parts: Iterable) -> int:
    """Derive a deterministic 63-bit seed from arbitrary hashable parts.

    Used to give named entities (e.g. a drive serial number) reproducible
    private randomness without threading a generator through every call.
    """
    import hashlib

    digest = hashlib.sha256(repr(tuple(parts)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1
