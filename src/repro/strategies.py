"""Model-update strategies as first-class deployment objects.

§4.5 of the paper compares four policies for keeping a disk-failure
predictor alive: never update, retrain on the last month ("1-month
replacing", Zhu et al.), retrain on all history ("accumulation"), and
the paper's answer — keep learning online.  The experiment harness
(`repro.eval.longterm`) hard-codes these for the reproduction; this
module exposes them as objects user code can deploy and swap:

    strategy = AccumulationStrategy(make_rf, neg_sample_ratio=3.0, seed=0)
    strategy.start(X_warmup, y_warmup)
    ...
    strategy.month_end(X_june, y_june)      # when a month's labels close
    scores = strategy.predict_score(X_live)

Every strategy exposes the same three-call protocol, so the surrounding
plumbing (threshold tuning, drift watchdogs, persistence) never cares
which policy is active.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core.forest import OnlineRandomForest
from repro.offline.sampling import downsample_negatives
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array_2d, check_binary_labels, check_positive

#: factory(rng) -> offline model exposing fit(X, y) and predict_score(X)
ModelFactory = Callable[[np.random.Generator], object]


class UpdateStrategy:
    """Common three-call protocol: start → month_end* → predict_score."""

    name: str = "abstract"

    def start(self, X: np.ndarray, y: np.ndarray) -> None:
        """Deploy on the warm-up data."""
        raise NotImplementedError

    def month_end(self, X: np.ndarray, y: np.ndarray) -> None:
        """Absorb the month whose labels just closed."""
        raise NotImplementedError

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """Positive score per row from the currently deployed model."""
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    def _check(self, X: np.ndarray, y: np.ndarray) -> None:
        X = check_array_2d(X, "X")
        y = check_binary_labels(y, n_rows=X.shape[0])
        return X, y


class _OfflineStrategyBase(UpdateStrategy):
    """Shared machinery for the three offline policies."""

    def __init__(
        self,
        model_factory: ModelFactory,
        *,
        neg_sample_ratio: Optional[float] = 3.0,
        seed: SeedLike = None,
    ) -> None:
        self._factory = model_factory
        self.neg_sample_ratio = neg_sample_ratio
        self._rng = as_generator(seed)
        self.model: Optional[object] = None
        self.n_retrains = 0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> bool:
        """Train a fresh model on the λ-balanced pool; False if untrainable."""
        if np.unique(y).size < 2:
            return False
        idx = downsample_negatives(y, self.neg_sample_ratio, self._rng.spawn(1)[0])
        model = self._factory(self._rng.spawn(1)[0])
        model.fit(X[idx], y[idx])
        self.model = model
        self.n_retrains += 1
        return True

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """Positive score per row from the current offline model."""
        if self.model is None:
            raise RuntimeError(f"{self.name}: start() has not trained a model yet")
        return self.model.predict_score(check_array_2d(X, "X"))


class FrozenStrategy(_OfflineStrategyBase):
    """The "no updating" policy: train at deployment, never again.

    Exists mostly as the control — §4.5 shows exactly how it rots.
    """

    name = "frozen"

    def start(self, X: np.ndarray, y: np.ndarray) -> None:
        """Train the one and only model."""
        X, y = self._check(X, y)
        if not self._fit(X, y):
            raise ValueError("warm-up data contains a single class")

    def month_end(self, X: np.ndarray, y: np.ndarray) -> None:
        """Ignore the new month — the whole point of this control."""


class ReplacingStrategy(_OfflineStrategyBase):
    """Zhu et al.'s replacing policy: retrain on the last k closed months.

    ``memory_months=1`` is the paper's "1-month replacing".  Months
    without both classes reuse the previous model (what an operator
    would do).
    """

    name = "replacing"

    def __init__(
        self,
        model_factory: ModelFactory,
        *,
        memory_months: int = 1,
        neg_sample_ratio: Optional[float] = 3.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(model_factory, neg_sample_ratio=neg_sample_ratio, seed=seed)
        check_positive(memory_months, "memory_months")
        self.memory_months = int(memory_months)
        self._window: List = []

    def start(self, X: np.ndarray, y: np.ndarray) -> None:
        """Train on the warm-up window (counts as the first memory month)."""
        X, y = self._check(X, y)
        self._window = [(X, y)]
        if not self._fit(X, y):
            raise ValueError("warm-up data contains a single class")

    def month_end(self, X: np.ndarray, y: np.ndarray) -> None:
        """Retrain on the last ``memory_months`` closed months."""
        X, y = self._check(X, y)
        self._window.append((X, y))
        self._window = self._window[-self.memory_months:]
        Xw = np.concatenate([b[0] for b in self._window])
        yw = np.concatenate([b[1] for b in self._window])
        self._fit(Xw, yw)  # keeps the old model if the window is one-class


class AccumulationStrategy(_OfflineStrategyBase):
    """Zhu et al.'s accumulation policy: retrain on everything so far.

    ``max_history_rows`` caps memory on long deployments by dropping the
    *oldest* rows first (the accumulation paper keeps all; the cap is an
    operational concession, off by default).
    """

    name = "accumulation"

    def __init__(
        self,
        model_factory: ModelFactory,
        *,
        neg_sample_ratio: Optional[float] = 3.0,
        max_history_rows: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(model_factory, neg_sample_ratio=neg_sample_ratio, seed=seed)
        if max_history_rows is not None:
            check_positive(max_history_rows, "max_history_rows")
        self.max_history_rows = max_history_rows
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def _append(self, X: np.ndarray, y: np.ndarray) -> None:
        if self._X is None:
            self._X, self._y = X.copy(), y.copy()
        else:
            self._X = np.concatenate([self._X, X])
            self._y = np.concatenate([self._y, y])
        if self.max_history_rows is not None and self._X.shape[0] > self.max_history_rows:
            self._X = self._X[-self.max_history_rows:]
            self._y = self._y[-self.max_history_rows:]

    def start(self, X: np.ndarray, y: np.ndarray) -> None:
        """Train on the warm-up data (the first slice of the history)."""
        X, y = self._check(X, y)
        self._append(X, y)
        if not self._fit(self._X, self._y):
            raise ValueError("warm-up data contains a single class")

    def month_end(self, X: np.ndarray, y: np.ndarray) -> None:
        """Append the month and retrain on the full history."""
        X, y = self._check(X, y)
        self._append(X, y)
        self._fit(self._X, self._y)

    @property
    def history_rows(self) -> int:
        """Rows currently held in the training history."""
        return 0 if self._X is None else int(self._X.shape[0])


class OnlineStrategy(UpdateStrategy):
    """The paper's answer: an ORF that just keeps streaming.

    ``month_end`` folds the month's labeled samples in (mini-batched by
    default — ablation A8); no retraining ever happens.
    """

    name = "online"

    def __init__(
        self,
        forest: OnlineRandomForest,
        *,
        chunk_size: int = 2000,
    ) -> None:
        self.forest = forest
        self.chunk_size = int(chunk_size)

    def start(self, X: np.ndarray, y: np.ndarray) -> None:
        """Stream the warm-up data through the forest."""
        X, y = self._check(X, y)
        self.forest.partial_fit(X, y, chunk_size=self.chunk_size)

    def month_end(self, X: np.ndarray, y: np.ndarray) -> None:
        """Stream the month's labeled samples (no retraining, ever)."""
        X, y = self._check(X, y)
        self.forest.partial_fit(X, y, chunk_size=self.chunk_size)

    def predict_score(self, X: np.ndarray) -> np.ndarray:
        """Positive score per row from the evolving forest."""
        return self.forest.predict_score(check_array_2d(X, "X"))
