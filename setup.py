"""Setup shim: enables legacy editable installs on hosts without the
``wheel`` package (pip falls back to ``setup.py develop``) and registers
the console script for setuptools versions that ignore
``[project.scripts]`` in pyproject.toml."""
from setuptools import setup

setup(
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
