"""End-to-end tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.persistence import load_bundle, load_model
from repro.smart.io import read_backblaze_csv


@pytest.fixture(scope="module")
def fleet_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "fleet.csv"
    rc = main([
        "generate", "--spec", "sta", "--scale", "0.05", "--months", "8",
        "--stride", "2", "--seed", "3", "-o", str(path),
    ])
    assert rc == 0
    return path


class TestGenerate:
    def test_csv_loadable(self, fleet_csv):
        ds = read_backblaze_csv(fleet_csv)
        assert ds.n_rows > 1000
        assert ds.n_drives > 20

    def test_output_printed(self, fleet_csv, capsys):
        # fixture already ran; re-run to capture output
        rc = main([
            "generate", "--spec", "stb", "--scale", "0.03", "--months", "5",
            "--seed", "1", "-o", str(fleet_csv.parent / "stb.csv"),
        ])
        assert rc == 0


class TestTrainEvaluate:
    def test_orf_roundtrip(self, fleet_csv, tmp_path, capsys):
        ckpt = tmp_path / "orf.npz"
        rc = main([
            "train", "--data", str(fleet_csv), "--model", "orf",
            "--trees", "6", "--seed", "1", "-o", str(ckpt),
        ])
        assert rc == 0
        model = load_model(ckpt)
        assert model.n_trees == 6

        rc = main([
            "evaluate", "--data", str(fleet_csv),
            "--model-file", str(ckpt), "--far", "0.05", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FDR" in out and "FAR" in out

    def test_train_bundles_scaler_and_selection(self, fleet_csv, tmp_path):
        """The checkpoint must carry the preprocessing that fed the model,
        so evaluate/monitor/serve never refit a scaler on judged data."""
        from repro.features.scaling import MinMaxScaler
        from repro.features.selection import FeatureSelection

        ckpt = tmp_path / "orf.npz"
        rc = main([
            "train", "--data", str(fleet_csv), "--model", "orf",
            "--trees", "4", "--seed", "1", "-o", str(ckpt),
        ])
        assert rc == 0
        bundle = load_bundle(ckpt)
        assert isinstance(bundle["scaler"], MinMaxScaler)
        assert isinstance(bundle["selection"], FeatureSelection)
        assert bundle["model"].n_trees == 4

    def test_rf_train(self, fleet_csv, tmp_path):
        ckpt = tmp_path / "rf.npz"
        rc = main([
            "train", "--data", str(fleet_csv), "--model", "rf",
            "--trees", "5", "--seed", "1", "-o", str(ckpt),
        ])
        assert rc == 0
        assert load_model(ckpt).n_trees == 5

    def test_svm_not_checkpointable(self, fleet_csv, tmp_path):
        rc = main([
            "train", "--data", str(fleet_csv), "--model", "svm",
            "--seed", "1", "-o", str(tmp_path / "svm.npz"),
        ])
        assert rc == 2


class TestMonitor:
    def test_replay_prints_summary(self, fleet_csv, tmp_path, capsys):
        ckpt = tmp_path / "orf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "orf",
            "--trees", "5", "--seed", "1", "-o", str(ckpt),
        ])
        capsys.readouterr()
        rc = main([
            "monitor", "--data", str(fleet_csv),
            "--model-file", str(ckpt), "--threshold", "0.6",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# processed" in out

    def test_monitor_counts_silent_death_days(
        self, fleet_csv, tmp_path, capsys, monkeypatch
    ):
        # regression: a drive whose fail_day has no SMART row (dead disks
        # often report nothing on their death day) was never flushed, so
        # its queued positives leaked and the failure went uncounted
        import dataclasses
        import re

        import repro.cli as cli_mod

        ckpt = tmp_path / "orf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "orf",
            "--trees", "4", "--seed", "1", "-o", str(ckpt),
        ])
        ds = read_backblaze_csv(fleet_csv)
        drives = list(ds.drives)
        idx = next(i for i, d in enumerate(drives) if d.failed)
        drives[idx] = dataclasses.replace(
            drives[idx], fail_day=drives[idx].last_observed_day + 3
        )
        tampered = dataclasses.replace(ds, drives=drives)
        monkeypatch.setattr(cli_mod, "_load_dataset", lambda path: tampered)
        capsys.readouterr()
        rc = main([
            "monitor", "--data", str(fleet_csv),
            "--model-file", str(ckpt), "--threshold", "0.6",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        n_failed = sum(1 for d in tampered.drives if d.failed)
        m = re.search(r"(\d+) failures", out)
        assert m is not None and int(m.group(1)) == n_failed

    def test_monitor_rejects_offline_checkpoint(self, fleet_csv, tmp_path):
        ckpt = tmp_path / "rf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "rf",
            "--trees", "3", "--seed", "1", "-o", str(ckpt),
        ])
        rc = main([
            "monitor", "--data", str(fleet_csv), "--model-file", str(ckpt),
        ])
        assert rc == 2


class TestServe:
    def test_serve_replays_fleet(self, fleet_csv, tmp_path, capsys):
        ckpt = tmp_path / "orf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "orf",
            "--trees", "5", "--seed", "1", "-o", str(ckpt),
        ])
        capsys.readouterr()
        ckpt_dir = tmp_path / "ckpts"
        rc = main([
            "serve", "--data", str(fleet_csv), "--model-file", str(ckpt),
            "--shards", "2", "--threshold", "0.6", "--mode", "batch",
            "--batch-size", "512", "--digest-every", "2000",
            "--checkpoint-dir", str(ckpt_dir), "--checkpoint-every", "2000",
            "--dump-metrics",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# served" in out
        assert "2 shard(s)" in out
        assert "# digest:" in out
        assert "repro_fleet_samples_total" in out
        assert (ckpt_dir / "LATEST").exists()

    def test_serve_fault_rate_quarantines_without_dying(
        self, fleet_csv, tmp_path, capsys
    ):
        # chaos drill: salt the stream with malformed events; tolerant
        # serving must finish the replay and account for every rejection
        ckpt = tmp_path / "orf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "orf",
            "--trees", "4", "--seed", "1", "-o", str(ckpt),
        ])
        capsys.readouterr()
        rc = main([
            "serve", "--data", str(fleet_csv), "--model-file", str(ckpt),
            "--shards", "2", "--threshold", "0.6",
            "--fault-rate", "0.01", "--fault-seed", "7",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# served" in out
        import re

        m = re.search(r"# quarantined: (\d+)", out)
        assert m is not None and int(m.group(1)) > 0
        assert "# degraded shards: none" in out

    def test_serve_strict_raises_on_salted_stream(self, fleet_csv, tmp_path):
        ckpt = tmp_path / "orf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "orf",
            "--trees", "4", "--seed", "1", "-o", str(ckpt),
        ])
        with pytest.raises(ValueError, match="no shard was mutated"):
            main([
                "serve", "--data", str(fleet_csv), "--model-file", str(ckpt),
                "--strict", "--fault-rate", "0.01", "--fault-seed", "7",
            ])

    def test_serve_rejects_offline_checkpoint(self, fleet_csv, tmp_path):
        ckpt = tmp_path / "rf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "rf",
            "--trees", "3", "--seed", "1", "-o", str(ckpt),
        ])
        rc = main([
            "serve", "--data", str(fleet_csv), "--model-file", str(ckpt),
        ])
        assert rc == 2


class TestTraceReport:
    def _serve_traced(self, fleet_csv, tmp_path, extra):
        ckpt = tmp_path / "orf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "orf",
            "--trees", "4", "--seed", "1", "-o", str(ckpt),
        ])
        return main([
            "serve", "--data", str(fleet_csv), "--model-file", str(ckpt),
            "--shards", "2", "--threshold", "0.6", "--batch-size", "256",
            "--digest-every", "0", *extra,
        ])

    def test_serve_trace_prints_stage_tables(self, fleet_csv, tmp_path, capsys):
        rc = self._serve_traced(fleet_csv, tmp_path, ["--trace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-stage latency" in out
        assert "slowest" in out
        for stage in ("fleet.ingest", "fleet.shards", "predictor.predict"):
            assert stage in out, stage

    def test_serve_trace_feeds_stage_metrics(self, fleet_csv, tmp_path, capsys):
        rc = self._serve_traced(
            fleet_csv, tmp_path, ["--trace", "--dump-metrics"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert 'repro_stage_latency_seconds_count{stage="fleet.ingest"}' in out
        assert 'repro_stage_items_total{stage="fleet.ingest"}' in out

    def test_serve_untraced_registers_no_stage_metrics(
        self, fleet_csv, tmp_path, capsys
    ):
        rc = self._serve_traced(fleet_csv, tmp_path, ["--dump-metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro_stage_latency_seconds" not in out

    def test_trace_out_round_trips_through_trace_report(
        self, fleet_csv, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        rc = self._serve_traced(
            fleet_csv, tmp_path, ["--trace-out", str(trace)]
        )
        assert rc == 0
        assert trace.exists()
        capsys.readouterr()

        rc = main(["trace-report", str(trace), "--slowest", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-stage latency" in out
        assert "slowest 5 spans" in out
        assert "fleet.ingest" in out

    def test_trace_report_missing_file_errors(self, tmp_path, capsys):
        rc = main(["trace-report", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_report_rejects_bad_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": 99, "spans": []}')
        rc = main(["trace-report", str(bad)])
        assert rc == 2
        assert "unsupported trace format" in capsys.readouterr().err


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_model_errors(self, fleet_csv):
        with pytest.raises(SystemExit):
            main([
                "train", "--data", str(fleet_csv), "--model", "magic",
                "-o", "x.npz",
            ])


class TestExperiment:
    def test_monthly_experiment(self, fleet_csv, capsys):
        from repro.cli import main as cli_main

        rc = cli_main([
            "experiment", "--data", str(fleet_csv), "--kind", "monthly",
            "--models", "orf", "--seed", "1", "--chunk-size", "500",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ORF" in out and "FDR(%)" in out

    def test_longterm_experiment(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        # the longterm protocol needs failures inside the warm-up window,
        # so use a bigger fleet than the shared fixture
        big_csv = tmp_path / "big.csv"
        rc = cli_main([
            "generate", "--spec", "stb", "--scale", "0.2", "--months", "10",
            "--stride", "2", "--seed", "5", "-o", str(big_csv),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = cli_main([
            "experiment", "--data", str(big_csv), "--kind", "longterm",
            "--warmup", "4", "--seed", "1", "--chunk-size", "500",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "long-term FAR(%)" in out
        assert "no_update" in out


class TestGateway:
    def test_gateway_serves_over_tcp(self, fleet_csv, tmp_path, capsys):
        """End-to-end: train → `repro gateway` in a thread → real client
        traffic → authenticated drain → final checkpoint on disk."""
        import threading

        from repro.gateway import GatewayClient

        ckpt = tmp_path / "orf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "orf",
            "--trees", "5", "--seed", "1", "-o", str(ckpt),
        ])
        capsys.readouterr()
        port_file = tmp_path / "gateway.port"
        ckpt_dir = tmp_path / "gw-ckpts"
        server_thread = threading.Thread(
            target=main,
            args=([
                "gateway", "--model-file", str(ckpt), "--port", "0",
                "--port-file", str(port_file), "--admin-token", "tok",
                "--shards", "2", "--threshold", "0.6",
                "--checkpoint-dir", str(ckpt_dir),
                "--checkpoint-every", "100000", "--dump-metrics",
            ],),
            daemon=True,
        )
        server_thread.start()
        # join(timeout) doubles as a clock-free poll interval
        for _ in range(3000):
            if port_file.exists() and port_file.read_text().strip():
                break
            server_thread.join(0.01)
            assert server_thread.is_alive(), "gateway exited before binding"
        else:
            pytest.fail("gateway never wrote its port file")
        port = int(port_file.read_text())

        n_features = load_bundle(str(ckpt))["model"].n_features
        rng = np.random.default_rng(0)
        events = [
            {
                "disk_id": i % 5,
                "x": [float(v) for v in rng.normal(size=n_features)],
                "failed": False,
                "tag": i,
            }
            for i in range(64)
        ]
        with GatewayClient(
            "127.0.0.1", port, connect_retries=100
        ) as client:
            result = client.ingest(events)
            assert result.ok and result.accepted == 64
            assert client.healthz()["status"] == "serving"
            assert client.digest()["events"] == 64
            assert "repro_gateway_ingested_events_total 64" in client.metrics()
            with pytest.raises(Exception):
                client.drain("not-the-token")
            summary = client.drain("tok")
        assert summary["status"] == "drained"
        assert summary["events"] == 64
        assert summary["checkpoint"] is not None

        server_thread.join(timeout=60)
        assert not server_thread.is_alive()
        out = capsys.readouterr().out
        assert "gateway listening on" in out
        assert "# gateway served 64 samples across 2 shard(s)" in out
        assert "# final checkpoint:" in out
        assert "repro_gateway_requests_total" in out  # --dump-metrics
        assert (ckpt_dir / "LATEST").exists()

    def test_gateway_rejects_offline_checkpoint(self, fleet_csv, tmp_path):
        ckpt = tmp_path / "rf.npz"
        main([
            "train", "--data", str(fleet_csv), "--model", "rf",
            "--trees", "3", "--seed", "1", "-o", str(ckpt),
        ])
        rc = main(["gateway", "--model-file", str(ckpt)])
        assert rc == 2
