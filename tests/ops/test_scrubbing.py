"""Tests for risk-adaptive scrub scheduling."""

import numpy as np
import pytest

from repro.ops.scrubbing import (
    adaptive_scrub_simulation,
    proportional_scrub_allocation,
)


class TestAllocation:
    def test_budget_conserved(self):
        scores = np.array([0.0, 0.5, 1.0])
        rates = proportional_scrub_allocation(scores, 30.0)
        assert rates.sum() == pytest.approx(30.0)

    def test_risky_drives_get_more(self):
        rates = proportional_scrub_allocation(np.array([0.1, 0.9]), 10.0)
        assert rates[1] > rates[0]

    def test_floor_protects_zero_risk(self):
        rates = proportional_scrub_allocation(
            np.array([0.0, 1.0]), 10.0, floor_fraction=0.2
        )
        assert rates[0] == pytest.approx(1.0)  # 20% of 10 spread over 2

    def test_all_zero_scores_uniform(self):
        rates = proportional_scrub_allocation(np.zeros(4), 8.0)
        assert np.allclose(rates, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            proportional_scrub_allocation(np.array([0.5]), 0.0)
        with pytest.raises(ValueError):
            proportional_scrub_allocation(np.array([-1.0]), 1.0)
        with pytest.raises(ValueError):
            proportional_scrub_allocation(np.array([[0.5]]), 1.0)
        with pytest.raises(ValueError):
            proportional_scrub_allocation(np.array([0.5]), 1.0, floor_fraction=2.0)


class TestSimulation:
    def _fleet(self, n=2000, seed=0):
        rng = np.random.default_rng(seed)
        risk = rng.uniform(size=n) ** 3  # a few high-risk drives
        prob = np.clip(0.02 + 0.5 * risk, 0, 1)  # informative predictor
        return risk, prob

    def test_adaptive_beats_uniform_with_informative_scores(self):
        risk, prob = self._fleet()
        uniform, adaptive = adaptive_scrub_simulation(
            risk, prob, total_scrubs_per_day=20.0, seed=1
        )
        assert adaptive.mean_time_to_detection_days < uniform.mean_time_to_detection_days

    def test_same_error_population(self):
        risk, prob = self._fleet()
        uniform, adaptive = adaptive_scrub_simulation(
            risk, prob, total_scrubs_per_day=20.0, seed=1
        )
        assert uniform.n_errors == adaptive.n_errors

    def test_useless_predictor_no_gain(self):
        rng = np.random.default_rng(2)
        n = 3000
        risk = rng.uniform(size=n)          # scores...
        prob = np.full(n, 0.05)             # ...uncorrelated with truth
        uniform, adaptive = adaptive_scrub_simulation(
            risk, prob, total_scrubs_per_day=30.0, seed=3
        )
        # adaptive cannot be much better than uniform here
        assert (
            adaptive.mean_time_to_detection_days
            > 0.5 * uniform.mean_time_to_detection_days
        )

    def test_outcome_fields(self):
        risk, prob = self._fleet(n=500)
        uniform, adaptive = adaptive_scrub_simulation(
            risk, prob, total_scrubs_per_day=5.0, horizon_days=90, seed=4
        )
        for out in (uniform, adaptive):
            assert out.n_detected + out.undetected_at_end == out.n_errors
            assert out.policy in ("uniform", "risk-weighted")

    def test_reproducible(self):
        risk, prob = self._fleet(n=500)
        a = adaptive_scrub_simulation(risk, prob, total_scrubs_per_day=5.0, seed=7)
        b = adaptive_scrub_simulation(risk, prob, total_scrubs_per_day=5.0, seed=7)
        assert a[0] == b[0] and a[1] == b[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            adaptive_scrub_simulation(
                np.array([0.5]), np.array([0.5, 0.5]), total_scrubs_per_day=1.0
            )
        with pytest.raises(ValueError):
            adaptive_scrub_simulation(
                np.array([0.5]), np.array([1.5]), total_scrubs_per_day=1.0
            )
