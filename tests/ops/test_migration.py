"""Tests for the alarm-driven migration scheduler."""

import pytest

from repro.ops.migration import MigrationOutcome, MigrationScheduler


def scheduler(bw=4.0, cap=4.0):
    return MigrationScheduler(capacity_tb=cap, bandwidth_tb_per_day=bw)


class TestBasicReplay:
    def test_timely_alarm_saves_drive(self):
        out = scheduler().replay(
            alarms=[(0, "d1", 0.9)], failures={"d1": 3}
        )
        assert out.n_saved == 1
        assert out.data_lost_tb == 0.0
        assert out.save_rate == 1.0

    def test_late_alarm_loses_data(self):
        # 4 TB at 1 TB/day, alarm 2 days before death → 2 TB lost
        out = MigrationScheduler(capacity_tb=4.0, bandwidth_tb_per_day=1.0).replay(
            alarms=[(0, "d1", 0.9)], failures={"d1": 2}
        )
        assert out.n_saved == 0
        assert out.n_partially_saved == 1
        assert out.data_lost_tb == pytest.approx(2.0)

    def test_no_alarm_is_unwarned(self):
        out = scheduler().replay(alarms=[], failures={"d1": 5})
        assert out.n_unwarned == 1
        assert out.data_lost_tb == pytest.approx(4.0)

    def test_false_alarm_counts_wasted(self):
        out = scheduler().replay(alarms=[(0, "good", 0.8)], failures={})
        assert out.n_wasted_migrations == 1
        assert out.n_failed_drives == 0

    def test_empty_inputs(self):
        out = scheduler().replay(alarms=[], failures={})
        assert out == MigrationOutcome(0, 0, 0, 0, 0, 0.0, 0.0)


class TestDrainCallback:
    def test_on_drained_fires_on_completion(self):
        drained = []
        MigrationScheduler(
            capacity_tb=4.0,
            bandwidth_tb_per_day=4.0,
            on_drained=lambda disk, day: drained.append((disk, day)),
        ).replay(alarms=[(0, "d1", 0.9), (1, "d2", 0.8)], failures={"d1": 9})
        # 4 TB at 4 TB/day: d1 completes on day 0, d2 on day 1
        assert drained == [("d1", 0), ("d2", 1)]

    def test_on_drained_not_fired_for_dead_drive(self):
        drained = []
        MigrationScheduler(
            capacity_tb=4.0,
            bandwidth_tb_per_day=1.0,
            on_drained=lambda disk, day: drained.append(disk),
        ).replay(alarms=[(0, "d1", 0.9)], failures={"d1": 2})
        # evacuation unfinished at death -> never reported drained
        assert drained == []


class TestPrioritization:
    def test_higher_score_migrates_first(self):
        # bandwidth only saves one drive before both die on day 2
        out = MigrationScheduler(capacity_tb=4.0, bandwidth_tb_per_day=2.0).replay(
            alarms=[(0, "low", 0.3), (0, "high", 0.9)],
            failures={"low": 2, "high": 2},
        )
        assert out.n_saved == 1  # only the high-score drive fits the budget

    def test_bandwidth_split_across_days(self):
        out = MigrationScheduler(capacity_tb=4.0, bandwidth_tb_per_day=2.0).replay(
            alarms=[(0, "d1", 0.9)], failures={"d1": 2}
        )
        assert out.n_saved == 1  # 2 days × 2 TB/day = 4 TB

    def test_duplicate_alarms_do_not_duplicate_work(self):
        out = MigrationScheduler(capacity_tb=4.0, bandwidth_tb_per_day=2.0).replay(
            alarms=[(0, "d1", 0.9), (1, "d1", 0.95), (0, "d2", 0.5)],
            failures={"d1": 2, "d2": 2},
        )
        assert out.n_saved == 1


class TestAccounting:
    def test_data_at_risk_accumulates(self):
        # 4 TB drive, 1 TB/day: pending 3+2+1 TB over the evacuation days
        out = MigrationScheduler(capacity_tb=4.0, bandwidth_tb_per_day=1.0).replay(
            alarms=[(0, "d1", 0.9)], failures={}
        )
        assert out.data_at_risk_tb_days == pytest.approx(3.0 + 2.0 + 1.0)

    def test_dead_drive_job_tombstoned(self):
        # death on day 1 stops both work and at-risk accounting
        out = MigrationScheduler(capacity_tb=10.0, bandwidth_tb_per_day=1.0).replay(
            alarms=[(0, "d1", 0.9)], failures={"d1": 1}
        )
        assert out.data_lost_tb == pytest.approx(9.0)
        assert out.data_at_risk_tb_days == pytest.approx(9.0)

    def test_save_rate_nan_without_failures(self):
        out = scheduler().replay(alarms=[(0, "x", 0.5)], failures={})
        assert out.save_rate != out.save_rate  # NaN

    def test_horizon_truncates(self):
        out = MigrationScheduler(capacity_tb=4.0, bandwidth_tb_per_day=1.0).replay(
            alarms=[(0, "d1", 0.9)], failures={}, horizon_day=1
        )
        assert out.n_wasted_migrations == 0  # evacuation unfinished at cut


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MigrationScheduler(capacity_tb=0.0, bandwidth_tb_per_day=1.0)
        with pytest.raises(ValueError):
            MigrationScheduler(capacity_tb=1.0, bandwidth_tb_per_day=0.0)
