"""Shared fixtures: tiny synthetic datasets sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.selection import FeatureSelection
from repro.smart.drive_model import STA, STB, scaled_spec
from repro.smart.generator import generate_dataset


@pytest.fixture(scope="session")
def tiny_sta_dataset():
    """~60 drives over 8 months — enough failures to exercise every path."""
    spec = scaled_spec(STA, fleet_scale=0.07, duration_months=8)
    return generate_dataset(spec, seed=1234)


@pytest.fixture(scope="session")
def tiny_stb_dataset():
    """STB-flavoured tiny fleet (higher failure rate, weaker signal)."""
    spec = scaled_spec(STB, fleet_scale=0.1, duration_months=8)
    return generate_dataset(spec, seed=4321)


@pytest.fixture(scope="session")
def table2_selection():
    return FeatureSelection.paper_table2()


@pytest.fixture()
def rng():
    return np.random.default_rng(99)


@pytest.fixture(scope="session")
def imbalanced_blobs():
    """A fixed imbalanced binary problem with signal in features 0 and 1."""
    gen = np.random.default_rng(7)
    n_neg, n_pos = 3000, 150
    X_neg = gen.uniform(size=(n_neg, 8))
    X_pos = gen.uniform(size=(n_pos, 8))
    X_pos[:, 0] = gen.uniform(0.6, 1.0, size=n_pos)
    X_pos[:, 1] = gen.uniform(0.55, 1.0, size=n_pos)
    X = np.vstack([X_neg, X_pos])
    y = np.concatenate([np.zeros(n_neg, dtype=np.int8), np.ones(n_pos, dtype=np.int8)])
    order = gen.permutation(X.shape[0])
    return X[order], y[order]
