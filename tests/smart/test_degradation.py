"""Tests for degradation/anomaly event processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smart import degradation as deg
from repro.smart.drive_model import DegradationProfile


class TestWindowProgress:
    def test_zero_outside_window(self):
        days = np.arange(0, 100)
        p = deg.window_progress(days, 50, 80)
        assert np.all(p[:50] == 0)
        assert np.all(p[81:] == 0)

    def test_linear_ramp(self):
        days = np.arange(0, 100)
        p = deg.window_progress(days, 50, 80)
        assert p[50] == 0.0
        assert p[80] == 1.0
        assert abs(p[65] - 0.5) < 1e-12

    def test_none_window(self):
        p = deg.window_progress(np.arange(10), None, None)
        assert np.all(p == 0)

    def test_degenerate_window(self):
        p = deg.window_progress(np.arange(10), 5, 5)
        assert np.all(p == 0)


class TestAcceleratingEvents:
    def test_no_events_outside_window(self):
        rng = np.random.default_rng(0)
        progress = np.zeros(50)
        out = deg.accelerating_event_increments(rng, progress, 5.0, 2.0)
        assert np.all(out == 0)

    def test_rate_accelerates(self):
        rng = np.random.default_rng(0)
        progress = np.linspace(0.01, 1.0, 2000)
        out = deg.accelerating_event_increments(rng, progress, 1.0, 3.0)
        early = out[:500].mean()
        late = out[-500:].mean()
        assert late > 3 * early

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            deg.accelerating_event_increments(
                np.random.default_rng(0), np.ones(3), -1.0, 1.0
            )

    def test_zero_base_rate_yields_nothing(self):
        out = deg.accelerating_event_increments(
            np.random.default_rng(0), np.ones(100), 0.0, 2.0
        )
        assert np.all(out == 0)


class TestScareEvents:
    def test_rate_zero_no_events(self):
        out = deg.scare_event_increments(
            np.random.default_rng(0), 100, np.zeros(100), 4.0
        )
        assert np.all(out == 0)

    def test_events_positive_when_hit(self):
        out = deg.scare_event_increments(
            np.random.default_rng(0), 5000, np.full(5000, 0.5), 4.0
        )
        hits = out[out > 0]
        assert hits.size > 1000
        assert np.all(hits >= 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            deg.scare_event_increments(np.random.default_rng(0), 10, np.zeros(5), 1.0)


class TestDecayingLevel:
    def test_single_impulse_decays_geometrically(self):
        inc = np.zeros(10)
        inc[0] = 8.0
        level = deg.decaying_level(inc, 0.5)
        assert np.allclose(level, 8.0 * 0.5 ** np.arange(10))

    def test_zero_retention_passthrough(self):
        inc = np.array([1.0, 2.0, 3.0])
        assert np.allclose(deg.decaying_level(inc, 0.0), inc)

    def test_invalid_retention(self):
        with pytest.raises(ValueError):
            deg.decaying_level(np.ones(3), 1.0)
        with pytest.raises(ValueError):
            deg.decaying_level(np.ones(3), -0.1)

    def test_empty_input(self):
        assert deg.decaying_level(np.zeros(0), 0.5).size == 0

    @given(st.floats(0.0, 0.99), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_property_level_nonnegative(self, retention, n):
        rng = np.random.default_rng(0)
        inc = rng.poisson(1.0, size=n).astype(float)
        level = deg.decaying_level(inc, retention)
        assert np.all(level >= -1e-9)


class TestDerivedEvents:
    def test_thinning_bounds(self):
        rng = np.random.default_rng(0)
        src = rng.poisson(5.0, size=1000).astype(float)
        child = deg.derived_event_increments(rng, src, 0.4)
        assert np.all(child <= src)
        assert np.all(child >= 0)

    def test_probability_zero_and_one(self):
        rng = np.random.default_rng(0)
        src = np.full(10, 3.0)
        assert np.all(deg.derived_event_increments(rng, src, 0.0) == 0)
        assert np.allclose(deg.derived_event_increments(rng, src, 1.0), src)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            deg.derived_event_increments(np.random.default_rng(0), np.ones(2), 1.5)

    def test_mean_fraction(self):
        rng = np.random.default_rng(0)
        src = np.full(20000, 10.0)
        child = deg.derived_event_increments(rng, src, 0.3)
        assert abs(child.mean() - 3.0) < 0.1


class TestDegradationRates:
    def test_keys_cover_error_counters(self):
        rates = deg.degradation_rates(DegradationProfile())
        assert set(rates) == {5, 183, 184, 187, 189, 197, 199}
        assert all(v >= 0 for v in rates.values())
