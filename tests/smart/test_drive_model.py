"""Tests for drive-model specifications."""

import pytest

from repro.smart.drive_model import STA, STB, DriveModelSpec, scaled_spec


class TestPresets:
    def test_sta_matches_table1_shape(self):
        assert STA.name == "ST4000DM000"
        assert STA.capacity_tb == 4
        assert STA.duration_months == 39

    def test_stb_matches_table1_shape(self):
        assert STB.name == "ST3000DM001"
        assert STB.capacity_tb == 3
        assert STB.duration_months == 20

    def test_stb_fails_harder(self):
        """ST3000DM001 is the famously unreliable model."""
        assert STB.weibull_scale_days < STA.weibull_scale_days
        assert STB.unpredictable_fraction > STA.unpredictable_fraction

    def test_duration_days(self):
        assert STA.duration_days == 39 * 30


class TestValidation:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            DriveModelSpec(
                name="x", capacity_tb=1, initial_fleet=0, duration_months=1,
                monthly_deployment=0, weibull_shape=1.0, weibull_scale_days=100.0,
                unpredictable_fraction=0.0,
            )

    def test_rejects_bad_weibull(self):
        with pytest.raises(ValueError):
            DriveModelSpec(
                name="x", capacity_tb=1, initial_fleet=1, duration_months=1,
                monthly_deployment=0, weibull_shape=-1.0, weibull_scale_days=100.0,
                unpredictable_fraction=0.0,
            )

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            DriveModelSpec(
                name="x", capacity_tb=1, initial_fleet=1, duration_months=1,
                monthly_deployment=0, weibull_shape=1.0, weibull_scale_days=100.0,
                unpredictable_fraction=1.5,
            )


class TestScaledSpec:
    def test_fleet_scaling(self):
        small = scaled_spec(STA, fleet_scale=0.1)
        assert small.initial_fleet == round(STA.initial_fleet * 0.1)

    def test_duration_override(self):
        small = scaled_spec(STA, duration_months=6)
        assert small.duration_months == 6
        assert small.initial_fleet == STA.initial_fleet

    def test_never_below_one_drive(self):
        tiny = scaled_spec(STA, fleet_scale=1e-9)
        assert tiny.initial_fleet == 1

    def test_name_override(self):
        assert scaled_spec(STA, name="custom").name == "custom"

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_spec(STA, fleet_scale=0.0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            scaled_spec(STA, duration_months=0)

    def test_original_untouched(self):
        before = STA.initial_fleet
        scaled_spec(STA, fleet_scale=0.5)
        assert STA.initial_fleet == before
