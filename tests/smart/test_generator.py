"""Tests for the SMART snapshot generator — signal and drift sanity."""

import numpy as np
import pytest

from repro.smart.attributes import NUM_CANDIDATE_FEATURES, feature_index
from repro.smart.drive_model import STA, scaled_spec
from repro.smart.generator import generate_dataset

SPEC = scaled_spec(STA, fleet_scale=0.08, duration_months=10)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(SPEC, seed=77)


class TestShapeAndSchema:
    def test_feature_width(self, dataset):
        assert dataset.X.shape[1] == NUM_CANDIDATE_FEATURES

    def test_row_alignment(self, dataset):
        n = dataset.n_rows
        assert dataset.serials.shape == (n,)
        assert dataset.days.shape == (n,)
        assert dataset.failure_flags.shape == (n,)

    def test_one_row_per_drive_day(self, dataset):
        pairs = set(zip(dataset.serials.tolist(), dataset.days.tolist()))
        assert len(pairs) == dataset.n_rows

    def test_failure_flag_count_equals_failed_drives(self, dataset):
        assert int(dataset.failure_flags.sum()) == dataset.n_failed_drives

    def test_values_finite(self, dataset):
        assert np.all(np.isfinite(dataset.X))

    def test_norms_in_range(self, dataset):
        # Norm columns are even indices; all within [1, 100]
        norm_cols = np.arange(0, NUM_CANDIDATE_FEATURES, 2)
        norms = dataset.X[:, norm_cols]
        assert norms.min() >= 1.0 - 1e-6
        assert norms.max() <= 100.0 + 1e-6


class TestReproducibility:
    def test_same_seed_same_data(self):
        a = generate_dataset(SPEC, seed=5)
        b = generate_dataset(SPEC, seed=5)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.serials, b.serials)

    def test_different_seed_differs(self):
        a = generate_dataset(SPEC, seed=5)
        b = generate_dataset(SPEC, seed=6)
        assert not np.array_equal(a.X, b.X)


class TestFailureSignal:
    def test_predictable_failures_show_error_growth(self, dataset):
        """At least one strong counter must rise before a predictable failure."""
        strong_cols = [feature_index(i, "raw") for i in (5, 197, 187)]
        checked = 0
        for d in dataset.drives:
            if not (d.failed and d.predictable):
                continue
            rows = dataset.rows_for_serial(d.serial)
            if rows.size < 15:
                continue
            final = dataset.X[rows[-3:], :][:, strong_cols].max()
            early = dataset.X[rows[: rows.size // 3], :][:, strong_cols].max()
            assert final > early or final > 5.0
            checked += 1
        assert checked >= 1

    def test_cumulative_counters_monotone(self, dataset):
        """SMART 5 raw only ever grows within a drive's life."""
        col = feature_index(5, "raw")
        for d in dataset.drives[:25]:
            rows = dataset.rows_for_serial(d.serial)
            vals = dataset.X[rows, col]
            assert np.all(np.diff(vals) >= -1e-5)

    def test_power_on_hours_track_age(self, dataset):
        col = feature_index(9, "raw")
        for d in dataset.drives[:10]:
            rows = dataset.rows_for_serial(d.serial)
            poh = dataset.X[rows, col]
            ages = d.initial_age_days + (dataset.days[rows] - d.deploy_day)
            assert np.all(np.abs(poh - ages * 24.0) <= 24.0 + 1e-6)

    def test_most_healthy_drives_clean(self, dataset):
        col = feature_index(5, "raw")
        finals = []
        for d in dataset.drives:
            if not d.failed:
                rows = dataset.rows_for_serial(d.serial)
                finals.append(dataset.X[rows[-1], col])
        finals = np.array(finals)
        assert np.median(finals) == 0.0  # typical healthy drive has no realloc


class TestSampling:
    def test_stride_keeps_failure_day(self):
        ds = generate_dataset(SPEC, seed=3, sample_every_days=3)
        for d in ds.drives:
            if d.failed:
                rows = ds.rows_for_serial(d.serial)
                assert ds.days[rows].max() == d.fail_day

    def test_stride_reduces_rows(self):
        full = generate_dataset(SPEC, seed=3)
        strided = generate_dataset(SPEC, seed=3, sample_every_days=3)
        assert strided.n_rows < full.n_rows * 0.5

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            generate_dataset(SPEC, seed=3, sample_every_days=0)

    def test_custom_drives_rendering(self, dataset):
        subset = dataset.drives[:3]
        ds = generate_dataset(SPEC, seed=9, drives=subset)
        assert ds.n_drives == 3
        assert set(np.unique(ds.serials)) == {d.serial for d in subset}
