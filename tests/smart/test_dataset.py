"""Tests for SmartDataset views and indexing."""

import numpy as np
import pytest

from repro.smart.dataset import SmartDataset


class TestBasics:
    def test_summary_counts(self, tiny_sta_dataset):
        s = tiny_sta_dataset.summary()
        assert s["#GoodDisks"] == tiny_sta_dataset.n_good_drives
        assert s["#FailedDisks"] == tiny_sta_dataset.n_failed_drives
        assert s["#GoodDisks"] + s["#FailedDisks"] == tiny_sta_dataset.n_drives

    def test_months_derived_from_days(self, tiny_sta_dataset):
        assert np.array_equal(
            tiny_sta_dataset.months, tiny_sta_dataset.days // 30
        )

    def test_column_length_validation(self, tiny_sta_dataset):
        ds = tiny_sta_dataset
        with pytest.raises(ValueError, match="column lengths"):
            SmartDataset(
                spec=ds.spec,
                drives=ds.drives,
                serials=ds.serials[:-1],
                days=ds.days,
                X=ds.X,
                failure_flags=ds.failure_flags,
            )

    def test_feature_width_validation(self, tiny_sta_dataset):
        ds = tiny_sta_dataset
        with pytest.raises(ValueError, match="X must be"):
            SmartDataset(
                spec=ds.spec,
                drives=ds.drives,
                serials=ds.serials,
                days=ds.days,
                X=ds.X[:, :10],
                failure_flags=ds.failure_flags,
            )


class TestRowIndex:
    def test_rows_sorted_by_day(self, tiny_sta_dataset):
        serial = int(tiny_sta_dataset.serials[0])
        rows = tiny_sta_dataset.rows_for_serial(serial)
        assert np.all(np.diff(tiny_sta_dataset.days[rows]) > 0)

    def test_rows_cover_all_of_serial(self, tiny_sta_dataset):
        serial = int(tiny_sta_dataset.serials[0])
        rows = tiny_sta_dataset.rows_for_serial(serial)
        assert rows.size == int((tiny_sta_dataset.serials == serial).sum())

    def test_unknown_serial_raises(self, tiny_sta_dataset):
        with pytest.raises(KeyError, match="no rows"):
            tiny_sta_dataset.rows_for_serial(10**9)


class TestFailureViews:
    def test_failed_and_good_partition(self, tiny_sta_dataset):
        ds = tiny_sta_dataset
        assert len(ds.failed_serials) + len(ds.good_serials) == ds.n_drives
        assert not set(ds.failed_serials) & set(ds.good_serials)

    def test_days_to_failure_semantics(self, tiny_sta_dataset):
        ds = tiny_sta_dataset
        dtf = ds.days_to_failure()
        fail_map = ds.fail_day_by_serial()
        # good drives: +inf
        good_mask = np.isin(ds.serials, ds.good_serials)
        assert np.all(np.isinf(dtf[good_mask]))
        # failed drives: zero exactly on the failure-day snapshot
        for serial in ds.failed_serials[:5]:
            rows = ds.rows_for_serial(int(serial))
            assert dtf[rows[-1]] == 0
            assert np.all(dtf[rows] >= 0)
            assert np.all(dtf[rows] == fail_map[int(serial)] - ds.days[rows])


class TestSubsets:
    def test_subset_rows_by_mask(self, tiny_sta_dataset):
        ds = tiny_sta_dataset
        mask = ds.days < 60
        sub = ds.subset_rows(mask)
        assert sub.n_rows == int(mask.sum())
        assert np.all(sub.days < 60)

    def test_subset_rows_bad_mask_length(self, tiny_sta_dataset):
        with pytest.raises(ValueError):
            tiny_sta_dataset.subset_rows(np.zeros(3, dtype=bool))

    def test_subset_serials_restricts_rows_and_drives(self, tiny_sta_dataset):
        ds = tiny_sta_dataset
        pick = [int(s) for s in np.unique(ds.serials)[:4]]
        sub = ds.subset_serials(pick)
        assert set(np.unique(sub.serials)) == set(pick)
        assert {d.serial for d in sub.drives} == set(pick)

    def test_subset_preserves_row_contents(self, tiny_sta_dataset):
        ds = tiny_sta_dataset
        serial = int(ds.serials[0])
        sub = ds.subset_serials([serial])
        rows = ds.rows_for_serial(serial)
        assert np.array_equal(np.sort(sub.days), np.sort(ds.days[rows]))
