"""Tests for the drift processes behind model aging."""

import numpy as np

from repro.smart import drift as drf
from repro.smart.drive_model import DriftProfile


class TestMonthOfDay:
    def test_boundaries(self):
        assert drf.month_of_day(np.array([0, 29, 30, 59, 60])).tolist() == [0, 0, 1, 1, 2]


class TestScareRate:
    def test_grows_with_drive_age(self):
        p = DriftProfile()
        days = np.zeros(2, dtype=int)
        rate = drf.scare_rate_by_day(p, days, np.array([0, 900]))
        assert rate[1] > rate[0]

    def test_young_drive_at_base_rate(self):
        p = DriftProfile()
        rate = drf.scare_rate_by_day(p, np.array([500]), np.array([0]))
        assert np.isclose(rate[0], p.scare_rate_per_day)

    def test_capped(self):
        p = DriftProfile()
        rate = drf.scare_rate_by_day(p, np.zeros(1, int), np.array([10**6]))
        assert rate[0] <= 0.25


class TestLoadCycleRate:
    def test_drifts_with_calendar_month(self):
        p = DriftProfile()
        rate = drf.load_cycle_rate_by_day(p, np.array([0, 360]))
        expected_growth = (1 + p.load_cycle_drift_per_month) ** 12
        assert np.isclose(rate[1] / rate[0], expected_growth)

    def test_base_rate_respected(self):
        p = DriftProfile()
        rate = drf.load_cycle_rate_by_day(p, np.array([0]), base_rate=5.0)
        assert np.isclose(rate[0], 5.0)


class TestRecalibration:
    def test_zero_before_rollout(self):
        p = DriftProfile(recalibration_month=10)
        days = np.array([0, 299])
        assert np.all(drf.recalibration_offset_by_day(p, days) == 0.0)

    def test_full_shift_after_ramp(self):
        p = DriftProfile(recalibration_month=10, recalibration_ramp_months=4)
        day = np.array([(10 + 4) * 30 + 1])
        assert np.isclose(drf.recalibration_offset_by_day(p, day)[0], p.recalibration_shift)

    def test_ramp_is_gradual(self):
        p = DriftProfile(recalibration_month=10, recalibration_ramp_months=4)
        mid = np.array([(10 + 2) * 30])
        offset = drf.recalibration_offset_by_day(p, mid)[0]
        assert 0 > offset > p.recalibration_shift

    def test_disabled(self):
        p = DriftProfile(recalibration_month=None)
        assert np.all(drf.recalibration_offset_by_day(p, np.arange(1000)) == 0.0)

    def test_monotone_in_time(self):
        p = DriftProfile()
        days = np.arange(0, 900)
        offs = drf.recalibration_offset_by_day(p, days)
        assert np.all(np.diff(offs) <= 1e-12)  # shift is negative → non-increasing


class TestVintageOffset:
    def test_reference_fleet_zero(self):
        assert drf.vintage_norm_offset(-1) == 0.0
        assert drf.vintage_norm_offset(0) == 0.0

    def test_two_points_per_vintage_year(self):
        assert np.isclose(drf.vintage_norm_offset(12), 2.0)

    def test_monotone(self):
        offs = [drf.vintage_norm_offset(m) for m in range(0, 36)]
        assert all(b >= a for a, b in zip(offs, offs[1:]))
