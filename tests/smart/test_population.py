"""Tests for the fleet lifecycle simulator."""

import numpy as np
import pytest

from repro.smart.drive_model import STA, scaled_spec
from repro.smart.population import (
    DriveLifecycle,
    population_summary,
    simulate_population,
)

SPEC = scaled_spec(STA, fleet_scale=0.2, duration_months=12)


@pytest.fixture(scope="module")
def drives():
    return simulate_population(SPEC, seed=5)


class TestLifecycleInvariants:
    def test_serials_unique_and_sorted(self, drives):
        serials = [d.serial for d in drives]
        assert serials == sorted(serials)
        assert len(set(serials)) == len(serials)

    def test_windows_within_observation(self, drives):
        horizon = SPEC.duration_days - 1
        for d in drives:
            assert 0 <= d.deploy_day <= d.last_observed_day <= horizon

    def test_fail_day_is_last_observed(self, drives):
        for d in drives:
            if d.failed:
                assert d.fail_day == d.last_observed_day

    def test_good_drives_observed_to_horizon(self, drives):
        horizon = SPEC.duration_days - 1
        for d in drives:
            if not d.failed:
                assert d.last_observed_day == horizon

    def test_degradation_window_precedes_failure(self, drives):
        for d in drives:
            if d.failed and d.predictable:
                assert d.degradation_start_day is not None
                assert d.deploy_day <= d.degradation_start_day < d.fail_day

    def test_unpredictable_failures_have_no_window(self, drives):
        for d in drives:
            if d.failed and not d.predictable:
                assert d.degradation_start_day is None

    def test_good_drives_not_flagged_predictable(self, drives):
        for d in drives:
            if not d.failed:
                assert not d.predictable

    def test_age_on_day(self):
        d = DriveLifecycle(0, 10, 100, 20, None, False, None, 0)
        assert d.age_on_day(10) == 100
        assert d.age_on_day(15) == 105

    def test_n_days_observed(self):
        d = DriveLifecycle(0, 3, 0, 5, None, False, None, 0)
        assert d.n_days_observed == 3


class TestPopulationDynamics:
    def test_initial_fleet_deploys_day_zero(self, drives):
        day0 = [d for d in drives if d.deploy_day == 0]
        assert len(day0) >= SPEC.initial_fleet

    def test_later_vintages_present(self, drives):
        assert any(d.vintage_month > 0 for d in drives)

    def test_replacements_enlarge_fleet(self):
        with_rep = simulate_population(SPEC, seed=5, replace_failures=True)
        without = simulate_population(SPEC, seed=5, replace_failures=False)
        n_failed = sum(1 for d in without if d.failed)
        if n_failed:
            assert len(with_rep) > len(without)

    def test_reproducible(self):
        a = simulate_population(SPEC, seed=9)
        b = simulate_population(SPEC, seed=9)
        assert [(d.serial, d.fail_day) for d in a] == [(d.serial, d.fail_day) for d in b]

    def test_seed_matters(self):
        a = simulate_population(SPEC, seed=1)
        b = simulate_population(SPEC, seed=2)
        assert [(d.fail_day) for d in a] != [(d.fail_day) for d in b]

    def test_some_failures_occur(self, drives):
        assert sum(1 for d in drives if d.failed) >= 3

    def test_most_drives_survive(self, drives):
        n_failed = sum(1 for d in drives if d.failed)
        assert n_failed < len(drives) / 2


class TestSummary:
    def test_counts_consistent(self, drives):
        s = population_summary(drives)
        assert s["n_good"] + s["n_failed"] == s["n_drives"] == len(drives)
        assert 0 <= s["n_unpredictable_failures"] <= s["n_failed"]
        assert s["total_drive_days"] == sum(d.n_days_observed for d in drives)

    def test_unpredictable_fraction_roughly_respected(self):
        spec = scaled_spec(STA, fleet_scale=1.5, duration_months=12)
        drives = simulate_population(spec, seed=3)
        s = population_summary(drives)
        if s["n_failed"] >= 40:
            frac = s["n_unpredictable_failures"] / s["n_failed"]
            assert frac < 0.25  # spec says 5%; allow generous sampling noise
