"""Tests for the SMART attribute catalogue."""

import pytest

from repro.smart.attributes import (
    ALL_ATTRIBUTES,
    ATTRIBUTE_BY_ID,
    NUM_ATTRIBUTES,
    NUM_CANDIDATE_FEATURES,
    SELECTED_FEATURES,
    candidate_feature_names,
    feature_index,
    feature_name,
    selected_feature_indices,
    selected_feature_names,
)


class TestCatalogue:
    def test_twenty_four_attributes(self):
        """The paper: each drive reports 24 SMART attributes."""
        assert NUM_ATTRIBUTES == 24
        assert NUM_CANDIDATE_FEATURES == 48

    def test_ids_unique_and_sorted(self):
        ids = [a.id for a in ALL_ATTRIBUTES]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_lookup_by_id(self):
        assert ATTRIBUTE_BY_ID[5].name == "Reallocated Sectors Count"
        assert ATTRIBUTE_BY_ID[9].cumulative

    def test_table2_ids_all_present(self):
        for sid, _kind, _rank in SELECTED_FEATURES:
            assert sid in ATTRIBUTE_BY_ID


class TestTable2Selection:
    def test_nineteen_features(self):
        """Table 2 selects 19 features."""
        assert len(SELECTED_FEATURES) == 19

    def test_nine_norms_ten_raws(self):
        norms = sum(1 for _, kind, _ in SELECTED_FEATURES if kind == "norm")
        raws = sum(1 for _, kind, _ in SELECTED_FEATURES if kind == "raw")
        assert (norms, raws) == (9, 10)

    def test_rank_one_is_attr_187(self):
        """Reported Uncorrectable Errors tops the paper's contribution ranks."""
        top = [sid for sid, _, rank in SELECTED_FEATURES if rank == 1]
        assert set(top) == {187}

    def test_thirteen_distinct_attributes(self):
        assert len({sid for sid, _, _ in SELECTED_FEATURES}) == 13

    def test_indices_valid_and_unique(self):
        idx = selected_feature_indices()
        assert len(set(idx)) == 19
        assert all(0 <= i < NUM_CANDIDATE_FEATURES for i in idx)


class TestFeatureIndexing:
    def test_norm_raw_adjacent(self):
        for attr in ALL_ATTRIBUTES:
            assert feature_index(attr.id, "raw") == feature_index(attr.id, "norm") + 1

    def test_unknown_attribute(self):
        with pytest.raises(KeyError):
            feature_index(999, "raw")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            feature_index(5, "cooked")

    def test_names_backblaze_style(self):
        assert feature_name(5, "raw") == "smart_5_raw"
        assert feature_name(5, "norm") == "smart_5_normalized"

    def test_candidate_names_align_with_indices(self):
        names = candidate_feature_names()
        assert len(names) == NUM_CANDIDATE_FEATURES
        assert names[feature_index(187, "raw")] == "smart_187_raw"

    def test_selected_names(self):
        names = selected_feature_names()
        assert "smart_187_normalized" in names
        assert len(names) == 19
