"""Tests for Backblaze-schema CSV round-tripping."""

import csv

import numpy as np
import pytest

from repro.smart.attributes import feature_index
from repro.smart.io import read_backblaze_csv, write_backblaze_csv


class TestWrite:
    def test_header_schema(self, tiny_sta_dataset, tmp_path):
        path = tmp_path / "out.csv"
        n = write_backblaze_csv(tiny_sta_dataset, path)
        assert n == tiny_sta_dataset.n_rows
        with path.open() as fh:
            header = next(csv.reader(fh))
        assert header[:5] == [
            "date", "serial_number", "model", "capacity_bytes", "failure",
        ]
        assert "smart_5_normalized" in header
        assert "smart_5_raw" in header

    def test_day_major_ordering(self, tiny_sta_dataset, tmp_path):
        path = tmp_path / "out.csv"
        write_backblaze_csv(tiny_sta_dataset, path)
        with path.open() as fh:
            reader = csv.DictReader(fh)
            dates = [row["date"] for row in reader]
        assert dates == sorted(dates)


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def roundtripped(self, tiny_sta_dataset, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "rt.csv"
        write_backblaze_csv(tiny_sta_dataset, path)
        return read_backblaze_csv(path, spec=tiny_sta_dataset.spec)

    def test_row_count(self, tiny_sta_dataset, roundtripped):
        assert roundtripped.n_rows == tiny_sta_dataset.n_rows

    def test_drive_counts(self, tiny_sta_dataset, roundtripped):
        assert roundtripped.n_drives == tiny_sta_dataset.n_drives
        assert roundtripped.n_failed_drives == tiny_sta_dataset.n_failed_drives

    def test_failure_flags_preserved(self, tiny_sta_dataset, roundtripped):
        assert int(roundtripped.failure_flags.sum()) == int(
            tiny_sta_dataset.failure_flags.sum()
        )

    def test_values_match_within_rounding(self, tiny_sta_dataset, roundtripped):
        """CSV stores integers, so values agree to ±0.5."""
        col = feature_index(9, "raw")
        orig = np.sort(tiny_sta_dataset.X[:, col])
        back = np.sort(roundtripped.X[:, col])
        assert np.all(np.abs(orig - back) <= 0.5 + 1e-6)

    def test_lifecycles_reconstructed(self, tiny_sta_dataset, roundtripped):
        orig_fail_days = sorted(
            d.fail_day for d in tiny_sta_dataset.drives if d.failed
        )
        back_fail_days = sorted(
            d.fail_day for d in roundtripped.drives if d.failed
        )
        assert orig_fail_days == back_fail_days


class TestReadEdgeCases:
    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_backblaze_csv(path)

    def test_header_only_raises(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("date,serial_number,model,capacity_bytes,failure\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_backblaze_csv(path)

    def test_missing_smart_columns_read_as_zero(self, tmp_path):
        path = tmp_path / "sparse.csv"
        path.write_text(
            "date,serial_number,model,capacity_bytes,failure,smart_5_raw\n"
            "2013-04-10,D1,M,4000000000000,0,12\n"
        )
        ds = read_backblaze_csv(path)
        assert ds.n_rows == 1
        assert ds.X[0, feature_index(5, "raw")] == 12.0
        assert ds.X[0, feature_index(187, "raw")] == 0.0

    def test_malformed_rows_skipped_with_warning(self, tmp_path):
        # regression: a bad date / non-numeric SMART field / missing
        # serial used to crash the whole load with a context-free
        # ValueError; real archives contain all three
        path = tmp_path / "dirty.csv"
        path.write_text(
            "date,serial_number,model,capacity_bytes,failure,smart_5_raw\n"
            "2013-04-10,D1,M,4000000000000,0,12\n"
            "not-a-date,D1,M,4000000000000,0,13\n"       # line 3
            "2013-04-12,D1,M,4000000000000,0,oops\n"      # line 4
            "2013-04-13,,M,4000000000000,0,14\n"          # line 5
            "2013-04-14,D1,M,4000000000000,0,15\n"
        )
        with pytest.warns(RuntimeWarning, match=r"skipped 3 malformed"):
            ds = read_backblaze_csv(path)
        assert ds.n_rows == 2
        assert ds.n_drives == 1
        assert [float(v) for v in ds.X[:, feature_index(5, "raw")]] == [12.0, 15.0]

    def test_malformed_row_strict_names_line_number(self, tmp_path):
        path = tmp_path / "dirty.csv"
        path.write_text(
            "date,serial_number,model,capacity_bytes,failure,smart_5_raw\n"
            "2013-04-10,D1,M,4000000000000,0,12\n"
            "2013-04-11,D1,M,4000000000000,0,oops\n"
        )
        with pytest.raises(ValueError, match=r"dirty\.csv:3: malformed row"):
            read_backblaze_csv(path, strict=True)

    def test_malformed_only_drive_does_not_leak(self, tmp_path):
        # a serial whose every row is malformed must not survive as a
        # zero-sample drive (that used to crash lifecycle reconstruction)
        path = tmp_path / "ghost.csv"
        path.write_text(
            "date,serial_number,model,capacity_bytes,failure\n"
            "2013-04-10,D1,M,4000000000000,0\n"
            "bogus,GHOST,M,4000000000000,0\n"
        )
        with pytest.warns(RuntimeWarning):
            ds = read_backblaze_csv(path)
        assert ds.n_drives == 1

    def test_spec_inferred_when_absent(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text(
            "date,serial_number,model,capacity_bytes,failure\n"
            "2013-04-10,D1,SOMEMODEL,3000000000000,0\n"
            "2013-04-11,D1,SOMEMODEL,3000000000000,1\n"
        )
        ds = read_backblaze_csv(path)
        assert ds.spec.name == "SOMEMODEL"
        assert ds.spec.capacity_tb == 3
        assert ds.n_failed_drives == 1
