"""Tests for field-data cleaning and validation."""

import numpy as np
import pytest

from repro.smart.attributes import feature_index
from repro.smart.cleaning import clean_dataset, validate_dataset
from repro.smart.dataset import SmartDataset


def corrupt(dataset, *, nans=True, norm_overflow=False, negative_counter=False):
    """Return a copy of *dataset* with injected corruption."""
    ds = SmartDataset(
        spec=dataset.spec,
        drives=list(dataset.drives),
        serials=dataset.serials.copy(),
        days=dataset.days.copy(),
        X=dataset.X.copy(),
        failure_flags=dataset.failure_flags.copy(),
    )
    rng = np.random.default_rng(0)
    if nans:
        rows = rng.choice(ds.n_rows, size=ds.n_rows // 20, replace=False)
        cols = rng.integers(0, ds.X.shape[1], size=rows.size)
        ds.X[rows, cols] = np.nan
    if norm_overflow:
        ds.X[0, feature_index(5, "norm")] = 999.0
    if negative_counter:
        ds.X[1, feature_index(187, "raw")] = -5.0
    return ds


class TestValidate:
    def test_clean_dataset_has_no_issues(self, tiny_sta_dataset):
        issues = validate_dataset(tiny_sta_dataset)
        assert issues == []

    def test_detects_nans(self, tiny_sta_dataset):
        ds = corrupt(tiny_sta_dataset)
        kinds = {i.kind for i in validate_dataset(ds)}
        assert "non_finite" in kinds

    def test_detects_norm_overflow(self, tiny_sta_dataset):
        ds = corrupt(tiny_sta_dataset, nans=False, norm_overflow=True)
        kinds = {i.kind for i in validate_dataset(ds)}
        assert "norm_out_of_range" in kinds

    def test_detects_duplicate_rows(self, tiny_sta_dataset):
        ds = tiny_sta_dataset
        dup = SmartDataset(
            spec=ds.spec,
            drives=list(ds.drives),
            serials=np.concatenate([ds.serials, ds.serials[:1]]),
            days=np.concatenate([ds.days, ds.days[:1]]),
            X=np.concatenate([ds.X, ds.X[:1]]),
            failure_flags=np.concatenate([ds.failure_flags, ds.failure_flags[:1]]),
        )
        kinds = {i.kind for i in validate_dataset(dup)}
        assert "duplicate_rows" in kinds

    def test_detects_cumulative_decrease(self, tiny_sta_dataset):
        ds = corrupt(tiny_sta_dataset, nans=False)
        serial = int(ds.serials[0])
        rows = ds.rows_for_serial(serial)
        col = feature_index(9, "raw")  # Power-On Hours
        ds.X[rows[-1], col] = 0.0  # hours going backwards
        issues = validate_dataset(ds)
        assert any(
            i.kind == "cumulative_decrease" and i.serial == serial for i in issues
        )

    def test_detects_missing_failure_flag(self, tiny_sta_dataset):
        ds = corrupt(tiny_sta_dataset, nans=False)
        if not ds.failure_flags.any():
            pytest.skip("no failures in fixture")
        ds.failure_flags[:] = False
        kinds = {i.kind for i in validate_dataset(ds)}
        assert "missing_failure_flag" in kinds


class TestClean:
    def test_removes_all_nans(self, tiny_sta_dataset):
        dirty = corrupt(tiny_sta_dataset)
        cleaned = clean_dataset(dirty)
        assert np.isfinite(cleaned.X).all()

    def test_forward_fill_uses_previous_value(self, tiny_sta_dataset):
        dirty = corrupt(tiny_sta_dataset, nans=False)
        serial = int(dirty.serials[0])
        rows = dirty.rows_for_serial(serial)
        col = feature_index(9, "raw")
        original_prev = float(dirty.X[rows[5], col])
        dirty.X[rows[6], col] = np.nan
        cleaned = clean_dataset(dirty)
        assert cleaned.X[rows[6], col] == pytest.approx(original_prev)

    def test_backfill_handles_leading_nan(self, tiny_sta_dataset):
        dirty = corrupt(tiny_sta_dataset, nans=False)
        serial = int(dirty.serials[0])
        rows = dirty.rows_for_serial(serial)
        col = feature_index(5, "raw")
        second = float(dirty.X[rows[1], col])
        dirty.X[rows[0], col] = np.nan
        cleaned = clean_dataset(dirty)
        assert cleaned.X[rows[0], col] == pytest.approx(second)

    def test_norms_clipped(self, tiny_sta_dataset):
        dirty = corrupt(tiny_sta_dataset, nans=False, norm_overflow=True)
        cleaned = clean_dataset(dirty)
        assert cleaned.X[0, feature_index(5, "norm")] == 255.0

    def test_error_counters_floored(self, tiny_sta_dataset):
        dirty = corrupt(tiny_sta_dataset, nans=False, negative_counter=True)
        cleaned = clean_dataset(dirty)
        assert cleaned.X[1, feature_index(187, "raw")] == 0.0

    def test_original_untouched(self, tiny_sta_dataset):
        dirty = corrupt(tiny_sta_dataset)
        before = dirty.X.copy()
        clean_dataset(dirty)
        assert np.array_equal(dirty.X, before, equal_nan=True)

    def test_clean_is_idempotent_on_clean_data(self, tiny_sta_dataset):
        once = clean_dataset(tiny_sta_dataset)
        twice = clean_dataset(once)
        assert np.allclose(once.X, twice.X)

    def test_validation_passes_after_cleaning(self, tiny_sta_dataset):
        dirty = corrupt(tiny_sta_dataset, norm_overflow=True, negative_counter=True)
        cleaned = clean_dataset(dirty)
        kinds = {i.kind for i in validate_dataset(cleaned)}
        assert "non_finite" not in kinds
        assert "norm_out_of_range" not in kinds
