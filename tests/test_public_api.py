"""The public import surface, pinned.

``repro.__all__`` (and the subsystem facades) are a compatibility
promise: every listed name must import, resolve via ``getattr``, and —
per the deprecation policy in ``docs/api.md`` — only ever *grow*.
These tests turn an accidental rename or a dropped re-export into a
test failure instead of a downstream ImportError.
"""

import importlib

import pytest

FACADES = [
    "repro",
    "repro.service",
    "repro.runtime",
    "repro.gateway",
    "repro.obs",
]

#: names the examples and docs lean on — removing any of these breaks
#: published snippets, so they are pinned beyond mere __all__ membership
LOAD_BEARING = {
    "repro": [
        "DiskEvent",
        "FleetConfig",
        "FleetMonitor",
        "FleetSupervisor",
        "GatewayClient",
        "OnlineRandomForest",
        "OnlineDiskFailurePredictor",
        "AlarmManager",
        "CheckpointRotator",
        "CheckpointConfigMismatch",
        "MetricsRegistry",
        "EmittedAlarm",
        "fleet_events",
        "save_model",
        "load_model",
    ],
    "repro.service": [
        "FleetBackend",
        "FleetConfig",
        "FleetMonitor",
        "build_shard_predictors",
        "shard_of",
    ],
    "repro.runtime": [
        "FleetSupervisor",
        "RestartRecord",
        "ShardHost",
        "shard_host_main",
    ],
}


@pytest.mark.parametrize("module_name", FACADES)
def test_every_all_name_resolves(module_name):
    module = importlib.import_module(module_name)
    assert module.__all__, f"{module_name} must declare a public surface"
    missing = [
        name for name in module.__all__
        if getattr(module, name, None) is None and name != "__version__"
    ]
    assert missing == [], f"{module_name}.__all__ names not bound: {missing}"


@pytest.mark.parametrize("module_name", FACADES)
def test_all_is_sorted_and_unique(module_name):
    module = importlib.import_module(module_name)
    assert len(module.__all__) == len(set(module.__all__))


@pytest.mark.parametrize("module_name", sorted(LOAD_BEARING))
def test_load_bearing_names_are_public(module_name):
    module = importlib.import_module(module_name)
    for name in LOAD_BEARING[module_name]:
        assert name in module.__all__, f"{module_name}.{name} left __all__"
        getattr(module, name)


def test_root_facade_covers_both_runtimes():
    """One import line builds either runtime from one config."""
    import repro

    config = repro.FleetConfig(n_features=4, n_shards=2, seed=3)
    assert config.runtime == "inproc"
    fleet = repro.FleetMonitor.build(config)
    assert fleet.n_shards == 2
    assert repro.FleetSupervisor.build is not None  # process runtime
