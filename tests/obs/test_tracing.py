"""Tests for repro.obs.tracing — spans, nesting, the no-op default."""

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    STAGE_ITEMS_METRIC,
    STAGE_LATENCY_METRIC,
    NullTracer,
    Span,
    Tracer,
)
from repro.service import MetricsRegistry


class FakeClock:
    """Deterministic clock: every read advances by a fixed step."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def make_tracer(**kw):
    kw.setdefault("clock", FakeClock())
    return Tracer(**kw)


class TestNullTracer:
    def test_is_library_default_and_disabled(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled

    def test_span_is_shared_noop(self):
        # same preallocated context every call: zero allocation per span
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        with NULL_TRACER.span("stage", items=5) as sp:
            assert isinstance(sp, Span)
            sp.items = 99  # instrumented code writes this; must not raise

    def test_survives_exceptions_silently(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("x"):
                raise RuntimeError("boom")


class TestTracer:
    def test_records_duration_from_injected_clock(self):
        tracer = make_tracer()
        with tracer.span("stage"):
            pass
        (span,) = tracer.snapshot()
        assert span.name == "stage"
        assert span.start == 1.0
        assert span.duration == 1.0  # exactly one clock step elapsed

    def test_enabled_flag(self):
        assert make_tracer().enabled

    def test_nesting_sets_parent(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        spans = {s.name: s for s in tracer.snapshot()}
        assert spans["outer"].parent is None
        assert spans["inner"].parent == "outer"
        assert spans["inner2"].parent == "outer"
        # children finish first; seq is finish order
        assert spans["inner"].seq < spans["inner2"].seq < spans["outer"].seq

    def test_items_set_inside_block(self):
        tracer = make_tracer()
        with tracer.span("stage") as sp:
            sp.items = 42
        assert tracer.snapshot()[0].items == 42

    def test_items_argument(self):
        tracer = make_tracer()
        with tracer.span("stage", items=7):
            pass
        assert tracer.snapshot()[0].items == 7

    def test_ring_buffer_bounds_memory(self):
        tracer = make_tracer(max_spans=5)
        for i in range(12):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.snapshot()) == 5
        assert tracer.n_finished == 12
        assert [s.name for s in tracer.snapshot()] == [
            "s7", "s8", "s9", "s10", "s11"
        ]

    def test_max_spans_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_raising_stage_still_records(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.snapshot()
        assert span.name == "failing" and span.duration > 0

    def test_stage_names_first_seen_order(self):
        tracer = make_tracer()
        for name in ("b", "a", "b", "c", "a"):
            with tracer.span(name):
                pass
        assert tracer.stage_names() == ["b", "a", "c"]

    def test_thread_local_nesting(self):
        """Spans on a worker thread must not inherit the main thread's
        open span as parent (nesting is per-thread by design)."""
        tracer = make_tracer()
        worker_parent = []

        def worker():
            with tracer.span("worker"):
                pass

        with tracer.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        spans = {s.name: s for s in tracer.snapshot()}
        assert spans["worker"].parent is None
        assert spans["main"].parent is None


class TestStageMetrics:
    def test_finish_feeds_registry(self):
        registry = MetricsRegistry()
        tracer = make_tracer(registry=registry)
        with tracer.span("fleet.ingest", items=64):
            pass
        with tracer.span("fleet.ingest", items=36):
            pass
        text = registry.render()
        assert 'repro_stage_latency_seconds_count{stage="fleet.ingest"} 2' in text
        assert registry.value(
            STAGE_ITEMS_METRIC, {"stage": "fleet.ingest"}
        ) == 100

    def test_metric_names_match_constants(self):
        assert STAGE_LATENCY_METRIC == "repro_stage_latency_seconds"
        assert STAGE_ITEMS_METRIC == "repro_stage_items_total"

    def test_custom_buckets(self):
        registry = MetricsRegistry()
        tracer = make_tracer(registry=registry, buckets=(0.5, 2.0))
        with tracer.span("s"):
            pass  # duration 1.0 under the fake clock
        text = registry.render()
        assert 'repro_stage_latency_seconds_bucket{stage="s",le="0.5"} 0' in text
        assert 'repro_stage_latency_seconds_bucket{stage="s",le="2"} 1' in text

    def test_no_registry_is_fine(self):
        tracer = make_tracer()
        assert tracer.registry is None
        with tracer.span("s"):
            pass
        assert tracer.n_finished == 1

    def test_forest_predict_one_emits_forest_predict_stage(self):
        """The Algorithm-2 scalar hot path must be observable.

        ``predict_one`` used to emit no span while ``predict_score``
        did, so exact-mode serving latency was invisible per stage.
        Both now account under the same ``forest.predict`` stage.
        """
        import numpy as np

        from repro.core.forest import OnlineRandomForest

        registry = MetricsRegistry()
        forest = OnlineRandomForest(3, n_trees=3, seed=0)
        forest.tracer = make_tracer(registry=registry)
        x = np.full(3, 0.5)
        forest.predict_one(x)
        forest.predict_one(x)
        forest.predict_score(x[None, :])
        text = registry.render()
        assert 'repro_stage_latency_seconds_count{stage="forest.predict"} 3' in text
        # items: 1 per predict_one call, 1 row for the predict_score call
        assert registry.value(
            STAGE_ITEMS_METRIC, {"stage": "forest.predict"}
        ) == 3

    def test_negative_duration_clamped_in_histogram(self):
        """A backwards clock (NTP step) must not crash the histogram."""
        class BackwardsClock:
            def __init__(self):
                self.values = iter([10.0, 5.0])

            def __call__(self):
                return next(self.values)

        registry = MetricsRegistry()
        tracer = Tracer(clock=BackwardsClock(), registry=registry)
        with tracer.span("s"):
            pass
        assert tracer.snapshot()[0].duration == -5.0  # span keeps the truth
        assert 'repro_stage_latency_seconds_count{stage="s"} 1' in registry.render()
