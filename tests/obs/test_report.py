"""Tests for repro.obs.report — percentiles, summaries, trace JSON."""

import math

import numpy as np
import pytest

from repro.obs import (
    Span,
    Tracer,
    format_slowest_table,
    format_stage_table,
    format_trace_report,
    load_trace,
    percentile,
    slowest_spans,
    stage_summary,
    trace_payload,
    write_trace,
)


def span(name, duration, items=0, seq=0, parent=None, start=0.0):
    return Span(
        name=name, start=start, duration=duration,
        parent=parent, items=items, seq=seq,
    )


class TestPercentile:
    @pytest.mark.parametrize("q", [0.0, 25.0, 50.0, 77.7, 95.0, 100.0])
    def test_matches_numpy_default(self, q):
        rng = np.random.default_rng(7)
        values = list(rng.uniform(size=31))
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q))
        )

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_single_value(self):
        assert percentile([3.0], 99.0) == 3.0

    def test_q_validated(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestStageSummary:
    def test_groups_and_aggregates(self):
        spans = [
            span("a", 1.0, items=10, seq=0),
            span("a", 3.0, items=30, seq=1),
            span("b", 2.0, seq=2),
        ]
        s = stage_summary(spans)
        assert list(s) == ["a", "b"]  # first-seen order
        assert s["a"]["count"] == 2
        assert s["a"]["items"] == 40
        assert s["a"]["total_seconds"] == 4.0
        assert s["a"]["mean_seconds"] == 2.0
        assert s["a"]["p50_seconds"] == 2.0
        assert s["a"]["max_seconds"] == 3.0
        assert s["a"]["items_per_sec"] == pytest.approx(10.0)

    def test_zero_time_throughput_is_nan(self):
        s = stage_summary([span("a", 0.0, items=5)])
        assert math.isnan(s["a"]["items_per_sec"])

    def test_empty(self):
        assert stage_summary([]) == {}


class TestSlowestSpans:
    def test_sorted_by_duration_then_seq(self):
        spans = [span("a", 1.0, seq=0), span("b", 3.0, seq=1),
                 span("c", 3.0, seq=2), span("d", 2.0, seq=3)]
        top = slowest_spans(spans, 3)
        assert [(s.name, s.duration) for s in top] == [
            ("b", 3.0), ("c", 3.0), ("d", 2.0)
        ]

    def test_n_validated(self):
        with pytest.raises(ValueError):
            slowest_spans([], 0)


class TestTraceJson:
    def _spans(self):
        return [
            span("fleet.ingest", 0.5, items=64, seq=0, start=1.0),
            span("fleet.shards", 0.4, items=64, seq=1,
                 parent="fleet.ingest", start=1.05),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(self._spans(), path)
        loaded = load_trace(path)
        assert loaded == self._spans()

    def test_payload_has_summary(self):
        payload = trace_payload(self._spans())
        assert payload["format"] == 1
        assert payload["n_spans"] == 2
        assert payload["stages"]["fleet.ingest"]["count"] == 1

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('{"format": 99, "spans": []}')
        with pytest.raises(ValueError, match="format"):
            load_trace(path)

    def test_fake_clock_trace_is_bit_reproducible(self, tmp_path):
        def run():
            t = iter(float(i) for i in range(100))
            tracer = Tracer(clock=lambda: next(t))
            with tracer.span("outer", items=3):
                with tracer.span("inner"):
                    pass
            return trace_payload(tracer.snapshot())

        assert run() == run()


class TestFormatting:
    def test_stage_table_contains_stats(self):
        text = format_stage_table(stage_summary([span("a", 0.25, items=10)]))
        assert "a" in text and "250.00ms" in text

    def test_slowest_table_lists_parents(self):
        text = format_slowest_table(
            [span("child", 1.0, parent="outer", seq=4)], 5
        )
        assert "child" in text and "outer" in text and "4" in text

    def test_full_report(self):
        spans = [span("a", 1e-4, items=2), span("b", 2.0)]
        text = format_trace_report(spans, slowest=1)
        assert "per-stage latency" in text
        assert "slowest 1 spans" in text
        assert "100.0µs" in text and "2.000s" in text

    def test_empty_report(self):
        assert "empty" in format_trace_report([])
