"""Cross-cutting property-based tests (hypothesis).

Each property targets an invariant users rely on implicitly: models
never crash on well-formed streams, scores stay probabilities, the
evaluation machinery is monotone where it must be, and serialization is
lossless.  These run on randomized inputs hypothesis shrinks for us.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.forest import OnlineRandomForest
from repro.core.labeler import OnlineLabeler
from repro.eval.metrics import disk_level_rates
from repro.eval.threshold import threshold_for_far
from repro.features.scaling import MinMaxScaler
from repro.offline.tree import DecisionTreeClassifier
from repro.streaming.hoeffding import HoeffdingTreeClassifier

COMMON = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestForestStreamInvariants:
    @given(st.integers(0, 10**6), st.floats(0.0, 0.5))
    @settings(**COMMON)
    def test_any_unit_stream_is_survivable(self, seed, p_pos):
        """No crash, scores ∈ [0,1], counters consistent — for arbitrary
        label rates including all-negative streams."""
        rng = np.random.default_rng(seed)
        n = 400
        X = rng.uniform(size=(n, 4))
        y = (rng.uniform(size=n) < p_pos).astype(np.int8)
        forest = OnlineRandomForest(
            4, n_trees=4, n_tests=10, min_parent_size=30, min_gain=0.01,
            lambda_neg=0.3, seed=seed,
        )
        forest.partial_fit(X, y)
        s = forest.predict_score(X[:50])
        assert np.all((s >= 0) & (s <= 1))
        assert forest.n_samples_seen == n

    @given(st.integers(0, 10**6))
    @settings(**COMMON)
    def test_duplicate_heavy_streams(self, seed):
        """Streams full of identical samples must not divide-by-zero."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=4)
        forest = OnlineRandomForest(
            4, n_trees=3, n_tests=8, min_parent_size=20, min_gain=0.0,
            lambda_neg=1.0, seed=seed,
        )
        for i in range(300):
            forest.update(x, i % 2)
        assert 0.0 <= forest.predict_one(x) <= 1.0


class TestHoeffdingInvariants:
    @given(st.integers(0, 10**6))
    @settings(**COMMON)
    def test_scores_remain_probabilities(self, seed):
        rng = np.random.default_rng(seed)
        tree = HoeffdingTreeClassifier(3, grace_period=20)
        for _ in range(500):
            x = rng.uniform(size=3)
            tree.update(x, int(rng.uniform() < 0.3))
        s = tree.predict_score(rng.uniform(size=(50, 3)))
        assert np.all((s >= 0) & (s <= 1))


class TestLabelerConservation:
    @given(st.integers(0, 10**6), st.integers(1, 12))
    @settings(**COMMON)
    def test_no_sample_lost_or_duplicated(self, seed, queue_len):
        rng = np.random.default_rng(seed)
        labeler = OnlineLabeler(queue_length=queue_len)
        n_in = n_out = 0
        for _ in range(300):
            disk = int(rng.integers(0, 8))
            if rng.uniform() < 0.05:
                n_out += len(labeler.fail(disk))
            else:
                n_in += 1
                n_out += len(labeler.observe(disk, rng.uniform(size=2)))
        assert n_in == n_out + labeler.n_pending

    @given(st.integers(0, 10**6))
    @settings(**COMMON)
    def test_released_negatives_are_oldest_first(self, seed):
        rng = np.random.default_rng(seed)
        labeler = OnlineLabeler(queue_length=3)
        tags = []
        for t in range(20):
            for rel in labeler.observe("d", np.zeros(1), tag=t):
                tags.append(rel.tag)
        assert tags == sorted(tags)


class TestMetricMonotonicity:
    @given(st.integers(0, 10**6))
    @settings(**COMMON)
    def test_rates_monotone_in_threshold(self, seed):
        rng = np.random.default_rng(seed)
        n = 300
        serials = rng.integers(0, 40, size=n)
        scores = rng.uniform(size=n)
        det = serials < 15
        fa = ~det
        prev_fdr, prev_far = 1.1, 1.1
        for thr in np.linspace(0, 1, 8):
            counts = disk_level_rates(scores, serials, det, fa, thr)
            assert counts.fdr <= prev_fdr + 1e-12
            assert counts.far <= prev_far + 1e-12
            prev_fdr, prev_far = counts.fdr, counts.far

    @given(st.integers(0, 10**6), st.floats(0.0, 0.3))
    @settings(**COMMON)
    def test_threshold_for_far_honours_budget(self, seed, target):
        rng = np.random.default_rng(seed)
        good = rng.uniform(size=rng.integers(2, 200))
        thr = threshold_for_far(good, target, mode="under")
        assert np.mean(good >= thr) <= target + 1e-12


class TestScalingProperties:
    @given(st.integers(0, 10**6))
    @settings(**COMMON)
    def test_transform_inverse_range(self, seed):
        """Scaled training data always spans exactly [0, 1] per varying column."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 3)) * rng.uniform(0.1, 100)
        out = MinMaxScaler().fit_transform(X)
        for j in range(3):
            if X[:, j].std() > 0:
                assert out[:, j].min() == pytest.approx(0.0)
                assert out[:, j].max() == pytest.approx(1.0)


class TestTreeDeterminism:
    @given(st.integers(0, 10**6))
    @settings(**COMMON)
    def test_fit_is_pure(self, seed):
        """Two fits with identical inputs yield identical models."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(100, 4))
        y = (X[:, 0] > 0.5).astype(np.int8)
        t1 = DecisionTreeClassifier(max_depth=4, seed=seed).fit(X, y)
        t2 = DecisionTreeClassifier(max_depth=4, seed=seed).fit(X, y)
        assert np.array_equal(t1.tree_.feature, t2.tree_.feature)
        assert np.allclose(t1.tree_.threshold, t2.tree_.threshold, equal_nan=True)
