"""End-to-end integration tests across subpackages.

These exercise the public API the way the examples and benches do:
generate field data → select features → stream through the Algorithm-2
monitor → measure disk-level rates.
"""

import numpy as np
import pytest

from repro import (
    FeatureSelection,
    MinMaxScaler,
    OnlineDiskFailurePredictor,
    OnlineRandomForest,
    STA,
    generate_dataset,
    scaled_spec,
)
from repro.eval.metrics import disk_level_rates
from repro.eval.protocol import prepare_arrays, stream_order


@pytest.fixture(scope="module")
def world():
    """A small fleet plus prepared arrays shared by the scenarios."""
    spec = scaled_spec(STA, fleet_scale=0.12, duration_months=10)
    ds = generate_dataset(spec, seed=8)
    selection = FeatureSelection.paper_table2()
    arrays, scaler = prepare_arrays(ds, selection)
    return ds, selection, arrays, scaler


class TestAlgorithm2Deployment:
    """Drive the OnlineDiskFailurePredictor exactly as a data center would:
    day by day, disk by disk, with failures arriving as events."""

    @pytest.fixture(scope="class")
    def deployed(self, world):
        ds, selection, arrays, scaler = world
        forest = OnlineRandomForest(
            arrays.n_features,
            n_trees=10,
            n_tests=30,
            min_parent_size=60,
            min_gain=0.05,
            lambda_pos=1.0,
            lambda_neg=0.03,
            seed=0,
        )
        monitor = OnlineDiskFailurePredictor(
            forest, queue_length=7, alarm_threshold=0.5, warmup_samples=500
        )
        order = stream_order(arrays.days, arrays.serials)
        fail_day = {d.serial: d.fail_day for d in ds.drives}
        for i in order:
            serial = int(arrays.serials[i])
            day = int(arrays.days[i])
            failed_today = fail_day.get(serial) == day
            monitor.process(serial, arrays.X[i], failed=failed_today, tag=day)
        return ds, monitor

    def test_all_failures_processed(self, deployed):
        ds, monitor = deployed
        assert monitor.stats.n_failures == ds.n_failed_drives

    def test_forest_absorbed_both_classes(self, deployed):
        _, monitor = deployed
        assert monitor.stats.n_updates_pos > 0
        assert monitor.stats.n_updates_neg > monitor.stats.n_updates_pos

    def test_alarms_concentrate_on_failing_disks(self, deployed):
        """Alarms within a week of death are hits; the hit rate per-disk
        must dwarf the false-alarm rate on good disks."""
        ds, monitor = deployed
        fail_day = {d.serial: d.fail_day for d in ds.drives if d.failed}
        alarmed = {}
        for alarm in monitor.stats.alarms:
            alarmed.setdefault(alarm.disk_id, []).append(alarm.tag)
        hits = sum(
            1
            for serial, fd in fail_day.items()
            if any(fd - 7 < day <= fd for day in alarmed.get(serial, []))
        )
        good = set(ds.good_serials.tolist())
        false_alarm_disks = len(good & set(alarmed))
        hit_rate = hits / max(len(fail_day), 1)
        far = false_alarm_disks / max(len(good), 1)
        # the fixture has <10 failures and several occur before the model
        # matures, so the bar here is modest; the real FDR numbers live in
        # the Figure-2 bench
        assert hit_rate > 0.35
        assert far < 0.3
        assert hit_rate > far

    def test_queue_bookkeeping(self, deployed):
        ds, monitor = deployed
        # every failed disk was retired from the labeler
        for serial in ds.failed_serials:
            assert monitor.labeler.pending_for(int(serial)) == 0


class TestOfflineVsOnlineParity:
    def test_orf_score_separation_comparable_to_rf(self, world):
        """Streaming the labeled set must produce score separation in the
        same league as batch-training an offline RF on it."""
        from repro.offline import RandomForestClassifier, downsample_negatives

        ds, selection, arrays, _ = world
        rows = arrays.training_rows()
        order = rows[stream_order(arrays.days[rows], arrays.serials[rows])]
        X, y = arrays.X[order], arrays.y[order]
        if y.sum() < 15:
            pytest.skip("too few positives")

        orf = OnlineRandomForest(
            arrays.n_features, n_trees=10, n_tests=30, min_parent_size=60,
            min_gain=0.05, lambda_neg=0.03, seed=1,
        ).partial_fit(X, y)
        idx = downsample_negatives(y, 3.0, seed=2)
        rf = RandomForestClassifier(n_trees=10, seed=2).fit(X[idx], y[idx])

        s_orf, s_rf = orf.predict_score(X), rf.predict_score(X)
        sep_orf = s_orf[y == 1].mean() - s_orf[y == 0].mean()
        sep_rf = s_rf[y == 1].mean() - s_rf[y == 0].mean()
        assert sep_orf > 0.2
        assert sep_orf > 0.4 * sep_rf


class TestCsvRoundTripEvaluation:
    def test_metrics_identical_after_roundtrip(self, world, tmp_path):
        """Disk-level rates must survive the Backblaze CSV round trip."""
        from repro.smart.io import read_backblaze_csv, write_backblaze_csv

        ds, selection, arrays, scaler = world
        path = tmp_path / "fleet.csv"
        write_backblaze_csv(ds, path)
        ds2 = read_backblaze_csv(path, spec=ds.spec)
        arrays2, _ = prepare_arrays(ds2, selection, scaler=scaler)

        # a fake but fixed scorer: hash of day+serial. Serial ids are
        # remapped by the reader, so compare aggregate counts, not rows.
        scores1 = (arrays.serials * 31 + arrays.days) % 97 / 96.0
        counts1 = disk_level_rates(
            scores1, arrays.serials, arrays.detection_mask(),
            arrays.false_alarm_mask(), 0.5,
        )
        scores2 = (arrays2.serials * 31 + arrays2.days) % 97 / 96.0
        counts2 = disk_level_rates(
            scores2, arrays2.serials, arrays2.detection_mask(),
            arrays2.false_alarm_mask(), 0.5,
        )
        assert counts1.n_failed == counts2.n_failed
        assert counts1.n_good == counts2.n_good


class TestFeatureSelectionEndToEnd:
    def test_derived_selection_usable_by_orf(self, world):
        from repro.features import select_features

        ds, _, _, _ = world
        from repro.eval.protocol import labels_and_mask

        y, usable = labels_and_mask(ds)
        rows = np.flatnonzero(usable)
        if y[rows].sum() < 15:
            pytest.skip("too few positives")
        sel = select_features(
            ds.X[rows].astype(np.float64), y[rows], max_features=10, seed=0
        )
        arrays, _ = prepare_arrays(ds, sel)
        forest = OnlineRandomForest(
            arrays.n_features, n_trees=6, n_tests=20, min_parent_size=50,
            min_gain=0.05, lambda_neg=0.05, seed=0,
        )
        tr = arrays.training_rows()
        forest.partial_fit(arrays.X[tr][:5000], arrays.y[tr][:5000])
        s = forest.predict_score(arrays.X[:100])
        assert np.all((0 <= s) & (s <= 1))


class TestDirtyDataPipeline:
    def test_cleaning_feeds_models(self, world):
        """Corrupted field data → validate → clean → prepare → train."""
        import numpy as np

        from repro.core.forest import OnlineRandomForest
        from repro.smart.cleaning import clean_dataset, validate_dataset
        from repro.smart.dataset import SmartDataset

        ds, selection, _, _ = world
        dirty = SmartDataset(
            spec=ds.spec, drives=list(ds.drives), serials=ds.serials.copy(),
            days=ds.days.copy(), X=ds.X.copy(),
            failure_flags=ds.failure_flags.copy(),
        )
        rng = np.random.default_rng(3)
        rows = rng.choice(dirty.n_rows, size=dirty.n_rows // 25, replace=False)
        cols = rng.integers(0, dirty.X.shape[1], size=rows.size)
        dirty.X[rows, cols] = np.nan

        assert any(i.kind == "non_finite" for i in validate_dataset(dirty))
        cleaned = clean_dataset(dirty)
        arrays, _ = prepare_arrays(cleaned, selection)  # would raise on NaN
        forest = OnlineRandomForest(
            arrays.n_features, n_trees=4, n_tests=15, min_parent_size=50,
            min_gain=0.05, lambda_neg=0.1, seed=0,
        )
        tr = arrays.training_rows()
        forest.partial_fit(arrays.X[tr][:3000], arrays.y[tr][:3000],
                           chunk_size=500)
        s = forest.predict_score(arrays.X[:50])
        assert np.all((0 <= s) & (s <= 1))


class TestChunkedMonthlyEquivalence:
    def test_chunked_monthly_run_matches_shape(self, world):
        """The chunked ORF path must produce a sane Figure-2-style series."""
        from repro.eval.monthly import MonthlyConfig, run_monthly_comparison

        ds, _, _, _ = world
        base = dict(
            eval_months=[4, 8],
            models=("orf",),
            orf_params=dict(
                n_trees=6, n_tests=20, min_parent_size=60.0, min_gain=0.05,
                lambda_pos=1.0, lambda_neg=0.05,
            ),
        )
        exact = run_monthly_comparison(
            ds, config=MonthlyConfig(**base), seed=4
        )["orf"]
        chunked = run_monthly_comparison(
            ds, config=MonthlyConfig(orf_chunk_size=1000, **base), seed=4
        )["orf"]
        assert chunked.months == exact.months
        for f_exact, f_chunk in zip(exact.fdr, chunked.fdr):
            assert abs(f_exact - f_chunk) < 0.5
