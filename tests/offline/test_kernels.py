"""Tests for kernel functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline.kernels import kernel_diag_rbf, linear_kernel, rbf_kernel


class TestLinearKernel:
    def test_matches_dot(self):
        rng = np.random.default_rng(0)
        A, B = rng.normal(size=(5, 3)), rng.normal(size=(4, 3))
        assert np.allclose(linear_kernel(A, B), A @ B.T)


class TestRbfKernel:
    def test_self_similarity_one(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(6, 4))
        K = rbf_kernel(A, A, gamma=0.7)
        assert np.allclose(np.diag(K), 1.0)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(6, 4))
        K = rbf_kernel(A, A, gamma=0.7)
        assert np.allclose(K, K.T)

    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(0)
        A, B = rng.normal(size=(5, 3)), rng.normal(size=(7, 3))
        K = rbf_kernel(A, B, gamma=2.0)
        assert np.all((K > 0) & (K <= 1.0))

    def test_matches_naive_computation(self):
        rng = np.random.default_rng(1)
        A, B = rng.normal(size=(4, 2)), rng.normal(size=(3, 2))
        K = rbf_kernel(A, B, gamma=0.5)
        naive = np.array(
            [[np.exp(-0.5 * np.sum((a - b) ** 2)) for b in B] for a in A]
        )
        assert np.allclose(K, naive)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((2, 2)), np.zeros((2, 2)), gamma=0.0)

    @given(st.floats(0.01, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_property_psd_diagonal(self, gamma):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(10, 3))
        K = rbf_kernel(A, A, gamma)
        eigvals = np.linalg.eigvalsh(K)
        assert eigvals.min() > -1e-8  # PSD up to rounding


class TestDiag:
    def test_ones(self):
        assert np.all(kernel_diag_rbf(np.zeros((5, 2))) == 1.0)
