"""Tests for the SMO-trained C-SVC."""

import numpy as np
import pytest

from repro.offline.svm import SVC


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    n = 300
    X0 = rng.normal(-1.0, 0.7, size=(n, 4))
    X1 = rng.normal(1.0, 0.7, size=(n, 4))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(n, int), np.ones(n, int)])
    order = rng.permutation(2 * n)
    return X[order], y[order]


class TestFit:
    def test_separable_blobs_high_accuracy(self, blobs):
        X, y = blobs
        svm = SVC(C=5.0, gamma=0.3, seed=1).fit(X, y)
        assert (svm.predict(X) == y).mean() > 0.95

    def test_support_vectors_subset(self, blobs):
        X, y = blobs
        svm = SVC(C=1.0, gamma=0.3, seed=1).fit(X, y)
        assert 0 < svm.n_support_ <= X.shape[0]

    def test_gamma_scale_resolution(self, blobs):
        X, y = blobs
        svm = SVC(gamma="scale", seed=0).fit(X, y)
        assert svm.gamma_ == pytest.approx(1.0 / (X.shape[1] * X.var()))

    def test_explicit_gamma(self, blobs):
        X, y = blobs
        svm = SVC(gamma=0.25, seed=0).fit(X, y)
        assert svm.gamma_ == 0.25

    def test_rejects_single_class(self):
        with pytest.raises(ValueError, match="both classes"):
            SVC().fit(np.random.default_rng(0).normal(size=(10, 2)), np.zeros(10, int))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SVC(C=0.0)
        with pytest.raises(ValueError):
            SVC(tol=-1.0)

    def test_reproducible(self, blobs):
        X, y = blobs
        a = SVC(C=1.0, gamma=0.3, seed=5).fit(X, y).decision_function(X[:20])
        b = SVC(C=1.0, gamma=0.3, seed=5).fit(X, y).decision_function(X[:20])
        assert np.allclose(a, b)


class TestDecisionFunction:
    def test_sign_matches_predict(self, blobs):
        X, y = blobs
        svm = SVC(C=2.0, gamma=0.3, seed=1).fit(X, y)
        df = svm.decision_function(X)
        assert np.array_equal((df >= 0).astype(np.int8), svm.predict(X))

    def test_threshold_shifts_positives(self, blobs):
        X, y = blobs
        svm = SVC(C=2.0, gamma=0.3, seed=1).fit(X, y)
        assert svm.predict(X, threshold=2.0).sum() <= svm.predict(X, threshold=-2.0).sum()

    def test_predict_score_alias(self, blobs):
        X, y = blobs
        svm = SVC(C=2.0, gamma=0.3, seed=1).fit(X, y)
        assert np.allclose(svm.predict_score(X[:5]), svm.decision_function(X[:5]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SVC().decision_function(np.zeros((1, 2)))

    def test_feature_mismatch(self, blobs):
        X, y = blobs
        svm = SVC(seed=0).fit(X, y)
        with pytest.raises(ValueError):
            svm.decision_function(np.zeros((1, X.shape[1] + 1)))


class TestClassWeight:
    def test_upweighting_positives_raises_recall(self):
        rng = np.random.default_rng(3)
        # overlapping classes, imbalanced
        X0 = rng.normal(0.0, 1.0, size=(500, 3))
        X1 = rng.normal(0.8, 1.0, size=(50, 3))
        X = np.vstack([X0, X1])
        y = np.concatenate([np.zeros(500, int), np.ones(50, int)])
        plain = SVC(C=1.0, gamma=0.5, seed=0).fit(X, y)
        weighted = SVC(C=1.0, gamma=0.5, class_weight={1: 10.0}, seed=0).fit(X, y)
        recall_plain = plain.predict(X)[y == 1].mean()
        recall_weighted = weighted.predict(X)[y == 1].mean()
        assert recall_weighted >= recall_plain

    def test_balanced_mode_runs(self, blobs):
        X, y = blobs
        svm = SVC(class_weight="balanced", seed=0).fit(X, y)
        assert svm.n_support_ > 0

    def test_invalid_class_weight(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            SVC(class_weight="magic").fit(X, y)


class TestDualConstraints:
    def test_alpha_within_box_and_kkt_balance(self, blobs):
        """Σ αᵢ yᵢ == 0 and 0 ≤ αᵢ ≤ C after training."""
        X, y = blobs
        svm = SVC(C=1.5, gamma=0.3, seed=2).fit(X, y)
        # dual_coef_ = alpha * y_pm at SVs; |alpha| ≤ C and balance holds
        assert np.all(np.abs(svm.dual_coef_) <= 1.5 + 1e-6)
        assert abs(svm.dual_coef_.sum()) < 1e-6
