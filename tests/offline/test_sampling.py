"""Tests for NegSampleRatio downsampling (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline.sampling import (
    downsample_dataset,
    downsample_negatives,
    neg_sample_ratio,
)


def _labels(n_pos, n_neg, seed=0):
    rng = np.random.default_rng(seed)
    y = np.concatenate([np.ones(n_pos, int), np.zeros(n_neg, int)])
    return rng.permutation(y)


class TestNegSampleRatio:
    def test_basic(self):
        assert neg_sample_ratio(_labels(10, 30)) == 3.0

    def test_no_positives_infinite(self):
        assert neg_sample_ratio(np.zeros(5, int)) == float("inf")

    def test_all_positive_zero(self):
        assert neg_sample_ratio(np.ones(5, int)) == 0.0


class TestDownsample:
    def test_keeps_all_positives(self):
        y = _labels(20, 400)
        idx = downsample_negatives(y, 3.0, seed=0)
        assert int(y[idx].sum()) == 20

    def test_achieves_requested_ratio(self):
        y = _labels(20, 400)
        idx = downsample_negatives(y, 3.0, seed=0)
        assert neg_sample_ratio(y[idx]) == pytest.approx(3.0)

    def test_lam_none_keeps_everything(self):
        y = _labels(20, 400)
        idx = downsample_negatives(y, None)
        assert idx.size == y.size

    def test_lam_larger_than_available_keeps_all_negatives(self):
        y = _labels(100, 50)
        idx = downsample_negatives(y, 10.0, seed=0)
        assert idx.size == 150

    def test_indices_sorted(self):
        y = _labels(20, 400)
        idx = downsample_negatives(y, 2.0, seed=0)
        assert np.all(np.diff(idx) > 0)

    def test_reproducible(self):
        y = _labels(20, 400)
        a = downsample_negatives(y, 3.0, seed=5)
        b = downsample_negatives(y, 3.0, seed=5)
        assert np.array_equal(a, b)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            downsample_negatives(_labels(5, 5), 0.0)
        with pytest.raises(ValueError):
            downsample_negatives(_labels(5, 5), -2.0)

    @given(st.integers(1, 50), st.integers(1, 500), st.floats(0.5, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_property_ratio_bounded(self, n_pos, n_neg, lam):
        y = _labels(n_pos, n_neg, seed=1)
        idx = downsample_negatives(y, lam, seed=1)
        kept = y[idx]
        assert int(kept.sum()) == n_pos  # positives always all kept
        assert int((kept == 0).sum()) <= max(int(round(lam * n_pos)), n_neg)


class TestDownsampleDataset:
    def test_pairs_aligned(self):
        y = _labels(10, 90)
        X = np.arange(100.0).reshape(-1, 1)
        Xb, yb = downsample_dataset(X, y, 2.0, seed=0)
        assert Xb.shape[0] == yb.shape[0]
        # X rows still map to their original labels
        orig = {float(x): int(lbl) for x, lbl in zip(X[:, 0], y)}
        assert all(orig[float(x)] == int(lbl) for x, lbl in zip(Xb[:, 0], yb))
