"""Tests for the vendor SMART threshold baseline (raw-Norm operation)."""

import numpy as np
import pytest

from repro.features.selection import FeatureSelection
from repro.offline.smart_threshold import (
    DEFAULT_VENDOR_THRESHOLDS,
    SmartThresholdDetector,
)


@pytest.fixture()
def detector_and_layout():
    det = SmartThresholdDetector()
    sel = FeatureSelection.paper_table2()
    healthy = np.full((1, 19), 95.0)  # raw Norm bytes near the top
    return det, sel, healthy


class TestConstruction:
    def test_monitors_only_norm_columns_with_thresholds(self, detector_and_layout):
        det, sel, _ = detector_and_layout
        assert det.n_monitored > 0
        for pos in det._columns:
            assert sel.names[pos].endswith("_normalized")

    def test_custom_thresholds(self):
        det = SmartThresholdDetector(vendor_thresholds={5: 36.0})
        assert det.n_monitored == 1

    def test_empty_threshold_map(self):
        det = SmartThresholdDetector(vendor_thresholds={})
        assert det.n_monitored == 0
        assert np.all(det.predict_score(np.zeros((3, 19))) == 0.0)

    def test_fit_is_noop_but_validates(self, detector_and_layout):
        det, _, healthy = detector_and_layout
        assert det.fit(healthy) is det
        with pytest.raises(ValueError):
            det.fit(np.zeros((1, 5)))


class TestDetection:
    def test_healthy_drive_never_alarms(self, detector_and_layout):
        det, _, healthy = detector_and_layout
        assert det.predict(healthy)[0] == 0

    def test_tripped_attribute_alarms(self, detector_and_layout):
        det, sel, healthy = detector_and_layout
        sick = healthy.copy()
        sick[0, sel.names.index("smart_5_normalized")] = 10.0  # << 36
        assert det.predict(sick)[0] == 1
        assert det.predict_score(sick)[0] > 0

    def test_score_counts_tripped_fraction(self, detector_and_layout):
        det, sel, healthy = detector_and_layout
        one = healthy.copy()
        one[0, sel.names.index("smart_5_normalized")] = 5.0
        two = one.copy()
        two[0, sel.names.index("smart_7_normalized")] = 5.0
        assert det.predict_score(two)[0] > det.predict_score(one)[0]

    def test_conservative_by_design(self, detector_and_layout):
        """Mild degradation (Norm 70) stays above the vendor thresholds
        for the error counters — exactly why the rule misses failures."""
        det, sel, healthy = detector_and_layout
        mild = healthy.copy()
        mild[0, sel.names.index("smart_5_normalized")] = 70.0
        assert det.predict(mild)[0] == 0

    def test_boundary_inclusive(self, detector_and_layout):
        det, sel, healthy = detector_and_layout
        at = healthy.copy()
        at[0, sel.names.index("smart_5_normalized")] = 36.0  # == threshold
        assert det.predict(at)[0] == 1

    def test_default_thresholds_plausible(self):
        assert all(0 < v <= 100 for v in DEFAULT_VENDOR_THRESHOLDS.values())


class TestOnSyntheticFleet:
    def test_low_far_low_fdr_on_dataset(self, tiny_sta_dataset):
        """On real(istic) telemetry: conservative FAR, poor FDR."""
        from repro.eval.metrics import disk_level_rates
        from repro.eval.protocol import labels_and_mask, last_day_per_row
        from repro.eval.metrics import detection_mask, false_alarm_mask

        ds = tiny_sta_dataset
        sel = FeatureSelection.paper_table2()
        X_raw = sel.apply(ds.X.astype(np.float64))
        det = SmartThresholdDetector()
        scores = det.predict_score(X_raw)
        dtf = ds.days_to_failure()
        counts = disk_level_rates(
            scores,
            ds.serials,
            detection_mask(dtf, 7),
            false_alarm_mask(dtf, ds.days, last_day_per_row(ds), 7),
            1e-9,
        )
        if counts.n_failed >= 2:
            assert counts.fdr <= 0.6  # misses plenty
        assert counts.far <= 0.1      # but rarely cries wolf
