"""Tests for the from-scratch CART implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline.tree import (
    DecisionTreeClassifier,
    gini_impurity,
    resolve_class_weight,
)


class TestGiniImpurity:
    def test_pure_node_zero(self):
        assert gini_impurity(np.array(10.0), np.array(0.0)) == 0.0
        assert gini_impurity(np.array(0.0), np.array(5.0)) == 0.0

    def test_balanced_node_half(self):
        assert np.isclose(gini_impurity(np.array(5.0), np.array(5.0)), 0.5)

    def test_empty_node_zero(self):
        assert gini_impurity(np.array(0.0), np.array(0.0)) == 0.0

    def test_vectorized(self):
        w0 = np.array([1.0, 0.0, 3.0])
        w1 = np.array([1.0, 4.0, 1.0])
        out = gini_impurity(w0, w1)
        assert out.shape == (3,)
        assert np.isclose(out[0], 0.5)

    @given(st.floats(0.0, 100.0), st.floats(0.0, 100.0))
    def test_property_range(self, w0, w1):
        g = float(gini_impurity(np.array(w0), np.array(w1)))
        assert 0.0 <= g <= 0.5 + 1e-12


class TestClassWeights:
    def test_none(self):
        assert resolve_class_weight(None, np.array([0, 1])) == (1.0, 1.0)

    def test_balanced(self):
        y = np.array([0] * 90 + [1] * 10)
        w0, w1 = resolve_class_weight("balanced", y)
        assert np.isclose(w0 * 90, w1 * 10)

    def test_dict(self):
        assert resolve_class_weight({1: 5.0}, np.array([0, 1])) == (1.0, 5.0)

    def test_single_class_balanced(self):
        assert resolve_class_weight("balanced", np.zeros(5, int)) == (1.0, 1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_class_weight("magic", np.array([0, 1]))


class TestFitBasics:
    def test_perfect_split_single_feature(self):
        X = np.array([[0.1], [0.2], [0.8], [0.9]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.array_equal(tree.predict(X), y)
        assert tree.n_nodes == 3  # root + two leaves

    def test_threshold_at_midpoint(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        tree = DecisionTreeClassifier(laplace=0.0).fit(X, y)
        assert np.isclose(tree.tree_.threshold[0], 0.5)

    def test_pure_labels_yield_stump(self):
        X = np.random.default_rng(0).uniform(size=(20, 3))
        tree = DecisionTreeClassifier().fit(X, np.zeros(20, dtype=int))
        assert tree.n_nodes == 1

    def test_xor_needs_depth_two(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(400, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        tree = DecisionTreeClassifier(min_samples_leaf=5).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95
        assert tree.depth >= 2

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_feature_count_mismatch(self):
        tree = DecisionTreeClassifier().fit(np.zeros((4, 3)), [0, 0, 1, 1])
        with pytest.raises(ValueError, match="feature"):
            tree.predict(np.zeros((1, 2)))


class TestCapacityControls:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(800, 5))
        y = (X[:, 0] + 0.3 * rng.normal(size=800) > 0.5).astype(int)
        return X, y

    def test_max_depth(self, data):
        X, y = data
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_max_num_splits(self, data):
        X, y = data
        tree = DecisionTreeClassifier(max_num_splits=5).fit(X, y)
        assert tree.n_nodes - tree.n_leaves <= 5

    def test_min_samples_leaf(self, data):
        X, y = data
        tree = DecisionTreeClassifier(min_samples_leaf=50).fit(X, y)
        assert tree.tree_.n_samples[tree.tree_.feature < 0].min() >= 50

    def test_min_impurity_decrease_prunes(self, data):
        X, y = data
        loose = DecisionTreeClassifier(min_impurity_decrease=0.0).fit(X, y)
        strict = DecisionTreeClassifier(min_impurity_decrease=0.2).fit(X, y)
        assert strict.n_nodes < loose.n_nodes

    def test_max_features_subsampling_reproducible(self, data):
        X, y = data
        t1 = DecisionTreeClassifier(max_features=2, seed=7).fit(X, y)
        t2 = DecisionTreeClassifier(max_features=2, seed=7).fit(X, y)
        assert np.array_equal(t1.tree_.feature, t2.tree_.feature)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_impurity_decrease=-0.1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(laplace=-1.0)


class TestProbabilitiesAndWeights:
    def test_proba_rows_sum_to_one(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X[:50])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_laplace_smoothing_avoids_extremes(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        tree = DecisionTreeClassifier(max_depth=6, laplace=1.0).fit(X, y)
        scores = tree.predict_score(X)
        assert scores.max() < 1.0 and scores.min() > 0.0

    def test_zero_laplace_allows_pure_leaves(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        tree = DecisionTreeClassifier(laplace=0.0).fit(X, y)
        assert set(tree.predict_score(X)) == {0.0, 1.0}

    def test_class_weight_shifts_boundary(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        plain = DecisionTreeClassifier(max_depth=5, seed=0).fit(X, y)
        weighted = DecisionTreeClassifier(
            max_depth=5, class_weight={1: 20.0}, seed=0
        ).fit(X, y)
        # upweighting positives must not lower recall
        recall_plain = plain.predict(X)[y == 1].mean()
        recall_weighted = weighted.predict(X)[y == 1].mean()
        assert recall_weighted >= recall_plain

    def test_sample_weight_equivalent_to_duplication(self):
        X = np.array([[0.0], [0.4], [0.6], [1.0]])
        y = np.array([0, 0, 1, 1])
        dup = DecisionTreeClassifier(laplace=0.0).fit(
            np.vstack([X, X[[3]]]), np.concatenate([y, [1]])
        )
        weighted = DecisionTreeClassifier(laplace=0.0).fit(
            X, y, sample_weight=np.array([1.0, 1.0, 1.0, 2.0])
        )
        grid = np.linspace(0, 1, 21).reshape(-1, 1)
        assert np.allclose(dup.predict_score(grid), weighted.predict_score(grid))

    def test_negative_sample_weight_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(
                np.zeros((2, 1)), [0, 1], sample_weight=np.array([1.0, -1.0])
            )

    def test_feature_importances_sum_to_one(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert np.isclose(tree.feature_importances_.sum(), 1.0)
        # signal features carry the importance
        assert tree.feature_importances_[[0, 1]].sum() > 0.5


class TestPropertyBased:
    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_predictions_are_valid_probabilities(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(60, 3))
        y = (rng.uniform(size=60) < 0.4).astype(int)
        tree = DecisionTreeClassifier(max_depth=4, seed=seed).fit(X, y)
        s = tree.predict_score(X)
        assert np.all((s >= 0) & (s <= 1))

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_deeper_never_fewer_nodes(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(200, 4))
        y = (X[:, 0] > rng.uniform(0.3, 0.7)).astype(int)
        shallow = DecisionTreeClassifier(max_depth=1, seed=0).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=6, seed=0).fit(X, y)
        assert deep.n_nodes >= shallow.n_nodes
