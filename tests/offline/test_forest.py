"""Tests for the offline random forest."""

import numpy as np
import pytest

from repro.offline.forest import RandomForestClassifier
from repro.parallel.pool import ThreadExecutor


class TestFit:
    def test_learns_signal(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        rf = RandomForestClassifier(n_trees=10, seed=0).fit(X, y)
        scores = rf.predict_score(X)
        assert scores[y == 1].mean() > scores[y == 0].mean() + 0.2

    def test_tree_count(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        rf = RandomForestClassifier(n_trees=7, seed=0).fit(X, y)
        assert len(rf.trees_) == 7

    def test_reproducible(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        s1 = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict_score(X[:40])
        s2 = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict_score(X[:40])
        assert np.allclose(s1, s2)

    def test_seed_changes_model(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        s1 = RandomForestClassifier(n_trees=5, seed=1).fit(X, y).predict_score(X[:40])
        s2 = RandomForestClassifier(n_trees=5, seed=2).fit(X, y).predict_score(X[:40])
        assert not np.allclose(s1, s2)

    def test_bootstrap_off_trains_on_full_set(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        rf = RandomForestClassifier(
            n_trees=3, bootstrap=False, max_features=None, seed=0
        ).fit(X, y)
        # without bootstrap or feature subsampling, trees are identical
        s = [t.predict_score(X[:30]) for t in rf.trees_]
        assert np.allclose(s[0], s[1]) and np.allclose(s[1], s[2])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_trees=0)
        with pytest.raises(ValueError):
            RandomForestClassifier(vote="loud")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))


class TestPrediction:
    def test_scores_in_unit_interval(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        rf = RandomForestClassifier(n_trees=8, seed=0).fit(X, y)
        s = rf.predict_score(X[:100])
        assert np.all((0 <= s) & (s <= 1))

    def test_hard_vote_granularity(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        rf = RandomForestClassifier(n_trees=4, vote="hard", seed=0).fit(X, y)
        s = rf.predict_score(X[:200])
        assert set(np.round(s * 4)) <= {0, 1, 2, 3, 4}

    def test_proba_shape(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        rf = RandomForestClassifier(n_trees=3, seed=0).fit(X, y)
        proba = rf.predict_proba(X[:10])
        assert proba.shape == (10, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_threshold_controls_positives(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        rf = RandomForestClassifier(n_trees=8, seed=0).fit(X, y)
        loose = rf.predict(X, threshold=0.1).sum()
        strict = rf.predict(X, threshold=0.9).sum()
        assert strict <= loose

    def test_feature_importances(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        rf = RandomForestClassifier(n_trees=10, seed=0).fit(X, y)
        imp = rf.feature_importances_
        assert imp.shape == (X.shape[1],)
        # each signal feature out-ranks the average noise feature
        assert imp[0] > imp[2:].mean()
        assert imp[1] > imp[2:].mean()


class TestParallelEquivalence:
    def test_thread_executor_identical_predictions(self, imbalanced_blobs):
        """Parallel prediction must be observationally identical to serial."""
        X, y = imbalanced_blobs
        serial_rf = RandomForestClassifier(n_trees=6, seed=4).fit(X, y)
        with ThreadExecutor(3) as pool:
            par_rf = RandomForestClassifier(n_trees=6, seed=4, executor=pool)
            par_rf.fit(X, y)
            assert np.allclose(
                serial_rf.predict_score(X[:100]), par_rf.predict_score(X[:100])
            )
