"""Tests for the gradient-boosted-trees baseline."""

import numpy as np
import pytest

from repro.offline.gbdt import GradientBoostedTrees, _sigmoid


class TestSigmoid:
    def test_known_values(self):
        assert _sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        assert _sigmoid(np.array([100.0]))[0] == pytest.approx(1.0)
        assert _sigmoid(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_numerically_stable(self):
        z = np.array([-1000.0, 1000.0])
        out = _sigmoid(z)
        assert np.all(np.isfinite(out))


class TestFit:
    def test_learns_signal(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        gbdt = GradientBoostedTrees(n_rounds=40, learning_rate=0.2, seed=0).fit(X, y)
        s = gbdt.predict_score(X)
        assert s[y == 1].mean() > s[y == 0].mean() + 0.2

    def test_deviance_monotone_decreasing(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        gbdt = GradientBoostedTrees(n_rounds=30, learning_rate=0.2, seed=0).fit(X, y)
        dev = np.array(gbdt.train_deviance_)
        # full-batch logistic GBM: training deviance never increases
        assert np.all(np.diff(dev) <= 1e-9)

    def test_more_rounds_fit_better(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        few = GradientBoostedTrees(n_rounds=5, learning_rate=0.2, seed=0).fit(X, y)
        many = GradientBoostedTrees(n_rounds=60, learning_rate=0.2, seed=0).fit(X, y)
        assert many.train_deviance_[-1] < few.train_deviance_[-1]

    def test_prior_matches_base_rate(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        gbdt = GradientBoostedTrees(n_rounds=1, seed=0).fit(X, y)
        assert _sigmoid(np.array([gbdt.f0_]))[0] == pytest.approx(y.mean(), rel=1e-6)

    def test_subsample_runs(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        gbdt = GradientBoostedTrees(n_rounds=10, subsample=0.5, seed=0).fit(X, y)
        assert len(gbdt.trees_) == 10

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            GradientBoostedTrees(n_rounds=2).fit(np.zeros((5, 2)), np.zeros(5, int))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_rounds=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0)

    def test_reproducible(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        a = GradientBoostedTrees(n_rounds=8, subsample=0.7, seed=3).fit(X, y)
        b = GradientBoostedTrees(n_rounds=8, subsample=0.7, seed=3).fit(X, y)
        assert np.allclose(a.predict_score(X[:50]), b.predict_score(X[:50]))


class TestPredict:
    def test_scores_are_probabilities(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        gbdt = GradientBoostedTrees(n_rounds=15, seed=0).fit(X, y)
        s = gbdt.predict_score(X[:200])
        assert np.all((s > 0) & (s < 1))

    def test_proba_sums_to_one(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        gbdt = GradientBoostedTrees(n_rounds=10, seed=0).fit(X, y)
        assert np.allclose(gbdt.predict_proba(X[:20]).sum(axis=1), 1.0)

    def test_decision_function_consistent(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        gbdt = GradientBoostedTrees(n_rounds=10, seed=0).fit(X, y)
        assert np.allclose(
            gbdt.predict_score(X[:20]), _sigmoid(gbdt.decision_function(X[:20]))
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict_score(np.zeros((1, 2)))

    def test_feature_mismatch(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        gbdt = GradientBoostedTrees(n_rounds=3, seed=0).fit(X, y)
        with pytest.raises(ValueError):
            gbdt.predict_score(np.zeros((1, X.shape[1] + 1)))
