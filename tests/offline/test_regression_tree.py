"""Tests for the regression CART (GBDT base learner)."""

import numpy as np
import pytest

from repro.offline.regression_tree import RegressionTree, _best_regression_split


class TestSplitSearch:
    def test_perfect_step_function(self):
        x = np.array([0.0, 0.1, 0.2, 0.8, 0.9, 1.0])
        t = np.array([1.0, 1.0, 1.0, 5.0, 5.0, 5.0])
        gain, thr = _best_regression_split(x, t, 1)
        assert 0.2 < thr < 0.8
        assert gain == pytest.approx(((t - t.mean()) ** 2).sum())

    def test_constant_feature_no_split(self):
        gain, thr = _best_regression_split(np.ones(5), np.arange(5.0), 1)
        assert gain == -np.inf and np.isnan(thr)

    def test_min_leaf_respected(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        t = np.array([0.0, 0.0, 10.0, 10.0])
        gain, thr = _best_regression_split(x, t, 2)
        assert 1.0 < thr < 2.0  # only the middle boundary leaves 2+2

    def test_constant_targets_zero_gain(self):
        gain, _ = _best_regression_split(np.arange(5.0), np.ones(5), 1)
        assert gain == pytest.approx(0.0, abs=1e-9)


class TestFit:
    def test_learns_piecewise_constant(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(500, 3))
        t = np.where(X[:, 1] > 0.5, 3.0, -1.0)
        tree = RegressionTree(max_depth=2, seed=0).fit(X, t)
        pred = tree.predict(X)
        assert np.abs(pred - t).mean() < 0.1

    def test_depth_cap(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(400, 2))
        t = np.sin(6 * X[:, 0])
        deep = RegressionTree(max_depth=6, seed=0).fit(X, t)
        shallow = RegressionTree(max_depth=1, seed=0).fit(X, t)
        assert deep.tree_.n_nodes > shallow.tree_.n_nodes
        assert shallow.tree_.n_nodes <= 3

    def test_custom_leaf_value_fn(self):
        X = np.array([[0.0], [1.0]])
        t = np.array([2.0, 4.0])
        tree = RegressionTree(max_depth=1, min_samples_leaf=1).fit(
            X, t, leaf_value_fn=lambda rows: 42.0
        )
        assert np.all(tree.predict(X) == 42.0)

    def test_target_length_validated(self):
        with pytest.raises(ValueError, match="one entry per row"):
            RegressionTree().fit(np.zeros((3, 2)), np.zeros(2))

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_mean_prediction_when_no_split(self):
        X = np.ones((10, 2))
        t = np.arange(10.0)
        tree = RegressionTree(max_depth=3).fit(X, t)
        assert tree.predict(X)[0] == pytest.approx(t.mean())

    def test_max_features_reproducible(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 5))
        t = X[:, 0] * 2
        p1 = RegressionTree(max_depth=3, max_features=2, seed=9).fit(X, t).predict(X)
        p2 = RegressionTree(max_depth=3, max_features=2, seed=9).fit(X, t).predict(X)
        assert np.allclose(p1, p2)
