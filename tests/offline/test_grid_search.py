"""Tests for FAR-constrained model selection."""

import pytest

from repro.offline.grid_search import FarConstrainedSearch, SearchResult, expand_grid


class TestExpandGrid:
    def test_cartesian_product(self):
        combos = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert len(combos) == 4
        assert {"a": 1, "b": "y"} in combos

    def test_empty_grid(self):
        assert expand_grid({}) == [{}]

    def test_deterministic_order(self):
        assert expand_grid({"b": [1], "a": [2]}) == expand_grid({"a": [2], "b": [1]})


def _search_over(outcomes, far_cap=0.01):
    """Build a search whose score_fn reads (fdr, far) from the params."""
    search = FarConstrainedSearch(
        fit_fn=lambda p: p,  # "model" is just the params
        score_fn=lambda m: outcomes[m["name"]],
        far_cap=far_cap,
    )
    return search, [{"name": k} for k in outcomes]


class TestSelectionRule:
    def test_highest_fdr_under_cap_wins(self):
        outcomes = {
            "a": (0.90, 0.005),
            "b": (0.95, 0.009),   # winner: best FDR within budget
            "c": (0.99, 0.050),   # over budget
        }
        search, candidates = _search_over(outcomes)
        assert search.run(candidates).params["name"] == "b"

    def test_far_breaks_fdr_ties(self):
        outcomes = {"a": (0.9, 0.008), "b": (0.9, 0.002)}
        search, candidates = _search_over(outcomes)
        assert search.run(candidates).params["name"] == "b"

    def test_fallback_lowest_far_when_nothing_fits(self):
        outcomes = {"a": (0.99, 0.20), "b": (0.50, 0.05)}
        search, candidates = _search_over(outcomes)
        assert search.run(candidates).params["name"] == "b"

    def test_all_results_recorded(self):
        outcomes = {"a": (0.9, 0.001), "b": (0.8, 0.001)}
        search, candidates = _search_over(outcomes)
        search.run(candidates)
        assert len(search.results_) == 2

    def test_winner_keeps_model(self):
        outcomes = {"a": (0.9, 0.001)}
        search, candidates = _search_over(outcomes)
        best = search.run(candidates)
        assert best.model == {"name": "a"}

    def test_empty_candidates_raise(self):
        search, _ = _search_over({"a": (0.9, 0.001)})
        with pytest.raises(ValueError, match="no candidates"):
            search.run([])

    def test_run_grid(self):
        search = FarConstrainedSearch(
            fit_fn=lambda p: p,
            score_fn=lambda m: (m["c"] / 10.0, 0.001),
            far_cap=0.01,
        )
        best = search.run_grid({"c": [1, 5, 3]})
        assert best.params == {"c": 5}

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            FarConstrainedSearch(lambda p: p, lambda m: (0, 0), far_cap=-0.1)


class TestSearchResult:
    def test_satisfies(self):
        r = SearchResult(params={}, fdr=0.9, far=0.005)
        assert r.satisfies(0.01)
        assert not r.satisfies(0.001)
