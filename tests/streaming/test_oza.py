"""Tests for Oza-Russell online bagging and boosting."""

import numpy as np
import pytest

from repro.streaming.hoeffding import HoeffdingTreeClassifier
from repro.streaming.oza import OnlineBaggingEnsemble, OzaBoostClassifier


def ht_factory(n_features=3, grace=40):
    def factory(rng):
        return HoeffdingTreeClassifier(n_features, grace_period=grace)

    return factory


def make_stream(n, seed=0, noise=0.0, n_features=3):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, n_features))
    y = (X[:, 0] > 0.5).astype(np.int8)
    if noise:
        flip = rng.uniform(size=n) < noise
        y[flip] = 1 - y[flip]
    return X, y


class TestOnlineBagging:
    def test_learns_signal(self):
        X, y = make_stream(3000, seed=1)
        bag = OnlineBaggingEnsemble(ht_factory(), n_estimators=5, seed=0)
        bag.partial_fit(X, y)
        Xt, yt = make_stream(500, seed=2)
        assert (bag.predict(Xt) == yt).mean() > 0.85

    def test_member_count(self):
        bag = OnlineBaggingEnsemble(ht_factory(), n_estimators=7, seed=0)
        assert len(bag.estimators) == 7

    def test_members_diverge(self):
        """Poisson resampling must give members different trees."""
        X, y = make_stream(2000, seed=1)
        bag = OnlineBaggingEnsemble(ht_factory(grace=30), n_estimators=4, seed=0)
        bag.partial_fit(X, y)
        node_counts = {est.n_nodes for est in bag.estimators}
        sample_counts = {est.n_samples_seen for est in bag.estimators}
        assert len(sample_counts) > 1 or len(node_counts) > 1

    def test_scores_valid(self):
        X, y = make_stream(1500, seed=3)
        bag = OnlineBaggingEnsemble(ht_factory(), n_estimators=3, seed=0)
        bag.partial_fit(X, y)
        s = bag.predict_score(X[:100])
        assert np.all((s >= 0) & (s <= 1))

    def test_reproducible(self):
        X, y = make_stream(1000, seed=4)
        a = OnlineBaggingEnsemble(ht_factory(), n_estimators=3, seed=9).partial_fit(X, y)
        b = OnlineBaggingEnsemble(ht_factory(), n_estimators=3, seed=9).partial_fit(X, y)
        assert np.allclose(a.predict_score(X[:50]), b.predict_score(X[:50]))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OnlineBaggingEnsemble(ht_factory(), n_estimators=0)
        with pytest.raises(ValueError):
            OnlineBaggingEnsemble(ht_factory(), lam=0.0)


class TestOzaBoost:
    def test_learns_signal(self):
        X, y = make_stream(3000, seed=1)
        boost = OzaBoostClassifier(ht_factory(), n_estimators=5, seed=0)
        boost.partial_fit(X, y)
        Xt, yt = make_stream(500, seed=2)
        assert (boost.predict(Xt) == yt).mean() > 0.8

    def test_stage_errors_tracked(self):
        X, y = make_stream(2000, seed=1)
        boost = OzaBoostClassifier(ht_factory(), n_estimators=4, seed=0)
        boost.partial_fit(X, y)
        eps = boost.stage_errors()
        assert eps.shape == (4,)
        assert np.all((eps >= 0) & (eps <= 1))
        assert eps[0] < 0.5  # the first stage must beat chance on easy data

    def test_unobserved_stage_error_is_half(self):
        boost = OzaBoostClassifier(ht_factory(), n_estimators=2, seed=0)
        assert np.all(boost.stage_errors() == 0.5)

    def test_fresh_model_scores_half(self):
        boost = OzaBoostClassifier(ht_factory(), n_estimators=2, seed=0)
        s = boost.predict_score(np.random.default_rng(0).uniform(size=(5, 3)))
        assert np.allclose(s, 0.5)

    def test_scores_valid_under_noise(self):
        X, y = make_stream(2000, seed=5, noise=0.2)
        boost = OzaBoostClassifier(ht_factory(), n_estimators=4, seed=0)
        boost.partial_fit(X, y)
        s = boost.predict_score(X[:100])
        assert np.all((s >= 0) & (s <= 1))
        assert np.all(np.isfinite(s))


class TestNoiseRobustnessClaim:
    """§3.2: forests are more robust against label noise than boosting.

    At high label noise, bagging's accuracy should degrade no worse
    than boosting's (boosting amplifies the mislabeled samples)."""

    @pytest.mark.parametrize("noise", [0.25])
    def test_bagging_not_worse_under_heavy_noise(self, noise):
        X, y = make_stream(4000, seed=7, noise=noise)
        Xt, yt = make_stream(800, seed=8)  # clean test labels
        bag = OnlineBaggingEnsemble(ht_factory(), n_estimators=5, seed=1)
        boost = OzaBoostClassifier(ht_factory(), n_estimators=5, seed=1)
        bag.partial_fit(X, y)
        boost.partial_fit(X, y)
        acc_bag = (bag.predict(Xt) == yt).mean()
        acc_boost = (boost.predict(Xt) == yt).mean()
        assert acc_bag >= acc_boost - 0.05
