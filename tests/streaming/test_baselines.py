"""Tests for the trivial streaming baselines."""

import numpy as np
import pytest

from repro.streaming.baselines import MajorityClassBaseline, PriorProbabilityBaseline


class TestMajority:
    def test_majority_negative_scores_zero(self):
        model = MajorityClassBaseline()
        model.partial_fit(np.zeros((100, 2)), np.r_[np.ones(5), np.zeros(95)].astype(int))
        assert np.all(model.predict_score(np.zeros((4, 2))) == 0.0)

    def test_majority_positive_scores_one(self):
        model = MajorityClassBaseline()
        model.partial_fit(np.zeros((10, 2)), np.r_[np.ones(8), np.zeros(2)].astype(int))
        assert np.all(model.predict_score(np.zeros((4, 2))) == 1.0)

    def test_detects_nothing_on_imbalanced_data(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        model = MajorityClassBaseline().partial_fit(X, y)
        assert model.predict(X).sum() == 0  # the paper's accuracy trap

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            MajorityClassBaseline().update(None, 3)


class TestPrior:
    def test_scores_equal_base_rate(self, imbalanced_blobs):
        X, y = imbalanced_blobs
        model = PriorProbabilityBaseline().partial_fit(X, y)
        s = model.predict_score(X[:10])
        assert np.allclose(s, y.mean())

    def test_empty_model_half(self):
        model = PriorProbabilityBaseline()
        assert model.positive_rate == 0.5

    def test_weighted_updates(self):
        model = PriorProbabilityBaseline()
        model.update(None, 1, weight=3.0)
        model.update(None, 0, weight=1.0)
        assert model.positive_rate == pytest.approx(0.75)
