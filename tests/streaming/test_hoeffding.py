"""Tests for the Hoeffding tree (VFDT)."""

import numpy as np
import pytest

from repro.streaming.hoeffding import HoeffdingTreeClassifier


def stream_signal(tree, n, seed=0, flip_after=None):
    rng = np.random.default_rng(seed)
    for i in range(n):
        x = rng.uniform(size=tree.n_features)
        y = int(x[0] > 0.5)
        if flip_after is not None and i >= flip_after:
            y = 1 - y
        tree.update(x, y)
    return tree


class TestGrowth:
    def test_starts_as_leaf(self):
        tree = HoeffdingTreeClassifier(3)
        assert tree.n_nodes == 1 and tree.depth == 0

    def test_splits_on_signal(self):
        tree = HoeffdingTreeClassifier(3, grace_period=50)
        stream_signal(tree, 2000)
        assert tree.n_nodes > 1
        # the first split should be on the signal feature
        assert tree._feature[0] == 0

    def test_split_threshold_near_boundary(self):
        tree = HoeffdingTreeClassifier(2, n_bins=16, grace_period=50)
        stream_signal(tree, 3000)
        assert abs(tree._threshold[0] - 0.5) < 0.15

    def test_no_split_on_noise(self):
        tree = HoeffdingTreeClassifier(3, grace_period=50, tau=0.0, delta=1e-7)
        rng = np.random.default_rng(0)
        for _ in range(2000):
            tree.update(rng.uniform(size=3), int(rng.integers(0, 2)))
        assert tree.n_nodes == 1

    def test_max_depth_respected(self):
        tree = HoeffdingTreeClassifier(2, grace_period=30, max_depth=2, tau=0.5)
        stream_signal(tree, 5000)
        assert tree.depth <= 2

    def test_grace_period_delays_splitting(self):
        eager = HoeffdingTreeClassifier(3, grace_period=25)
        lazy = HoeffdingTreeClassifier(3, grace_period=2000)
        stream_signal(eager, 1000, seed=1)
        stream_signal(lazy, 1000, seed=1)
        assert eager.n_nodes >= lazy.n_nodes

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HoeffdingTreeClassifier(0)
        with pytest.raises(ValueError):
            HoeffdingTreeClassifier(2, delta=0.0)
        with pytest.raises(ValueError):
            HoeffdingTreeClassifier(2, grace_period=0)


class TestPrediction:
    def test_learns_threshold_function(self):
        tree = HoeffdingTreeClassifier(3, grace_period=50)
        stream_signal(tree, 4000)
        rng = np.random.default_rng(9)
        X = rng.uniform(size=(500, 3))
        y = (X[:, 0] > 0.5).astype(int)
        pred = tree.predict(X)
        assert (pred == y).mean() > 0.9

    def test_batch_matches_single(self):
        tree = HoeffdingTreeClassifier(3, grace_period=50)
        stream_signal(tree, 2000)
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(40, 3))
        batch = tree.predict_score(X)
        singles = [tree.predict_one(X[i]) for i in range(40)]
        assert np.allclose(batch, singles)

    def test_fresh_tree_predicts_half(self):
        tree = HoeffdingTreeClassifier(2)
        assert tree.predict_one(np.zeros(2)) == 0.5

    def test_children_inherit_distribution(self):
        tree = HoeffdingTreeClassifier(1, grace_period=100, n_bins=16)
        stream_signal(tree, 2000)
        lo = tree.predict_one(np.array([0.1]))
        hi = tree.predict_one(np.array([0.9]))
        assert lo < 0.3 and hi > 0.7

    def test_update_validates(self):
        tree = HoeffdingTreeClassifier(2)
        with pytest.raises(ValueError):
            tree.update(np.zeros(3), 0)
        with pytest.raises(ValueError):
            tree.update(np.zeros(2), 5)

    def test_weighted_updates(self):
        tree = HoeffdingTreeClassifier(2, grace_period=10)
        tree.update(np.array([0.2, 0.5]), 0, weight=10.0)
        tree.update(np.array([0.8, 0.5]), 1, weight=1.0)
        assert tree.n_samples_seen == 11.0
        assert tree.predict_one(np.array([0.5, 0.5])) < 0.5


class TestHoeffdingBound:
    def test_bound_shrinks_with_n(self):
        tree = HoeffdingTreeClassifier(2)
        assert tree._hoeffding_bound(100) > tree._hoeffding_bound(10000)

    def test_bound_grows_with_confidence(self):
        strict = HoeffdingTreeClassifier(2, delta=1e-9)
        loose = HoeffdingTreeClassifier(2, delta=0.1)
        assert strict._hoeffding_bound(500) > loose._hoeffding_bound(500)
