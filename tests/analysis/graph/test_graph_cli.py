"""`repro graph` end-to-end: schema, determinism, dot output, --check."""

import json
from pathlib import Path

from repro.analysis.graph import GRAPH_DOC_FORMAT, validate_graph_doc
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[3]


class TestJsonFormat:
    def test_schema_validates_and_is_byte_identical(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["graph", "--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["graph", "--format", "json"]) == 0
        second = capsys.readouterr().out
        assert first == second  # two full runs, byte-identical
        doc = json.loads(first)
        validate_graph_doc(doc)
        assert doc["format"] == GRAPH_DOC_FORMAT

    def test_repo_layer_order_and_cycle_freedom(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["graph"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cycles"] == []
        assert doc["violations"] == []  # unsuppressed layering violations
        layer_by_module = {
            m["module"]: m["layer"] for m in doc["modules"]
        }
        names = [layer["name"] for layer in doc["layers"]]
        assert names == [
            "foundations", "models", "evaluation", "serving", "edge",
            "interface",
        ]
        # spot-check the declared order end to end
        assert layer_by_module["repro.utils.rng"] == 0
        assert layer_by_module["repro.core.forest"] == 1
        assert layer_by_module["repro.eval.metrics"] == 2
        assert layer_by_module["repro.cli"] == 5

    def test_check_flag_passes_on_clean_repo(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["graph", "--check"]) == 0
        capsys.readouterr()


class TestDotFormat:
    def test_dot_output_is_deterministic_and_layered(
        self, capsys, monkeypatch
    ):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["graph", "--format", "dot"]) == 0
        first = capsys.readouterr().out
        assert main(["graph", "--format", "dot"]) == 0
        assert first == capsys.readouterr().out
        assert first.startswith("digraph repro {")
        assert first.rstrip().endswith("}")
        assert 'label="L0 foundations";' in first
        assert '"gateway" -> "service";' in first


class TestCheckFailure:
    def test_check_fails_on_injected_violation(
        self, make_tree, capsys, monkeypatch
    ):
        root = make_tree(
            {
                "repro/gateway/server.py": "X = 1\n",
                "repro/core/forest.py": (
                    "from repro.gateway.server import X\n"
                ),
            }
        )
        rc = main(["graph", "--root", str(root), "--check"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "1 layering violation(s)" in captured.err
        doc = json.loads(captured.out)
        assert len(doc["violations"]) == 1
        assert doc["violations"][0]["rule"] == "RPR501"

    def test_check_fails_on_injected_cycle(
        self, make_tree, capsys, monkeypatch
    ):
        root = make_tree(
            {
                "repro/utils/a.py": "from repro.utils import b\n",
                "repro/utils/b.py": "from repro.utils import a\n",
            }
        )
        rc = main(["graph", "--root", str(root), "--check"])
        captured = capsys.readouterr()
        assert rc == 1
        doc = json.loads(captured.out)
        assert doc["cycles"] == [["repro.utils.a", "repro.utils.b"]]

    def test_missing_root_exits_two(self, tmp_path, capsys):
        rc = main(["graph", "--root", str(tmp_path / "empty")])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_rootless_tree_exits_two(self, tmp_path, capsys):
        (tmp_path / "notrepro").mkdir()
        (tmp_path / "notrepro" / "mod.py").write_text("x = 1\n")
        rc = main(["graph", "--root", str(tmp_path)])
        assert rc == 2
        assert "no project modules" in capsys.readouterr().err
