"""ProjectContext construction: naming, bindings, edges, cycles."""

from pathlib import Path

from repro.analysis.graph import (
    DECLARED_LAYERS,
    build_project,
    declared_packages,
    layer_of_package,
    module_name_for,
)

REPO_SRC = str(Path(__file__).resolve().parents[3] / "src")


class TestModuleIndex:
    def test_module_names_and_packages(self, make_project):
        project = make_project(
            {
                "repro/__init__.py": "",
                "repro/core/forest.py": "x = 1\n",
                "repro/core/__init__.py": "",
            }
        )
        assert project.module_names == ["repro", "repro.core", "repro.core.forest"]
        assert project.modules["repro"].package is None
        assert project.modules["repro.core.forest"].package == "core"
        assert project.modules["repro.core.forest"].layer == layer_of_package("core")

    def test_non_root_packages_are_ignored(self, make_tree):
        root = make_tree({"other/mod.py": "x = 1\n", "repro/__init__.py": ""})
        project = build_project(str(root))
        assert project.module_names == ["repro"]

    def test_module_name_for_init_is_the_package(self, make_tree):
        root = make_tree({"repro/core/__init__.py": ""})
        path = root / "repro" / "core" / "__init__.py"
        assert module_name_for(path, root) == "repro.core"


class TestBindings:
    def test_defs_classes_assignments_and_conditional_imports(self, make_project):
        project = make_project(
            {
                "repro/utils/mod.py": """
                    import os

                    try:
                        import fancy
                    except ImportError:
                        fancy = None

                    if os.name == "posix":
                        PLATFORM = "posix"

                    CONST, OTHER = 1, 2

                    def func():
                        hidden = 1
                        return hidden

                    class Klass:
                        attr = 1
                """,
            }
        )
        info = project.modules["repro.utils.mod"]
        for name in ("os", "fancy", "PLATFORM", "CONST", "OTHER", "func", "Klass"):
            assert info.resolves(name), name
        assert not info.resolves("hidden")
        assert not info.resolves("attr")

    def test_submodules_resolve_as_package_attributes(self, make_project):
        project = make_project(
            {
                "repro/core/__init__.py": "",
                "repro/core/forest.py": "x = 1\n",
            }
        )
        assert project.modules["repro.core"].resolves("forest")


class TestEdges:
    def test_type_only_and_deferred_tagging(self, make_project):
        project = make_project(
            {
                "repro/utils/a.py": "x = 1\n",
                "repro/utils/b.py": "y = 2\n",
                "repro/utils/c.py": """
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        from repro.utils import a

                    def late():
                        from repro.utils import b
                        return b
                """,
            }
        )
        edges = {
            (e.imported, e.type_only, e.deferred)
            for e in project.modules["repro.utils.c"].edges
            if e.imported.startswith("repro.utils.")
        }
        assert ("repro.utils.a", True, False) in edges
        assert ("repro.utils.b", False, True) in edges

    def test_from_package_import_submodule_targets_the_submodule(
        self, make_project
    ):
        project = make_project(
            {
                "repro/core/__init__.py": "from repro.core.a import X\n",
                "repro/core/a.py": "X = 1\n",
                "repro/core/b.py": "from repro.core import a\n",
            }
        )
        imported = {e.imported for e in project.modules["repro.core.b"].edges}
        # the submodule, not the package __init__ — parent-package
        # initialization edges are implicit everywhere and excluded
        assert imported == {"repro.core.a"}

    def test_from_package_import_attribute_targets_the_package(self, make_project):
        project = make_project(
            {
                "repro/core/__init__.py": "X = 1\n",
                "repro/core/b.py": "from repro.core import X\n",
            }
        )
        imported = {e.imported for e in project.modules["repro.core.b"].edges}
        assert imported == {"repro.core"}

    def test_relative_imports_resolve(self, make_project):
        project = make_project(
            {
                "repro/core/__init__.py": "",
                "repro/core/a.py": "X = 1\n",
                "repro/core/b.py": "from .a import X\nfrom . import a\n",
            }
        )
        imported = {e.imported for e in project.modules["repro.core.b"].edges}
        assert imported == {"repro.core.a"}


class TestCycles:
    def test_mutual_module_level_imports_cycle(self, make_project):
        project = make_project(
            {
                "repro/utils/a.py": "from repro.utils import b\n",
                "repro/utils/b.py": "from repro.utils import a\n",
            }
        )
        assert project.cycles() == [["repro.utils.a", "repro.utils.b"]]

    def test_deferred_import_breaks_the_cycle(self, make_project):
        project = make_project(
            {
                "repro/utils/a.py": "from repro.utils import b\n",
                "repro/utils/b.py": """
                    def late():
                        from repro.utils import a
                        return a
                """,
            }
        )
        assert project.cycles() == []

    def test_type_checking_import_breaks_the_cycle(self, make_project):
        project = make_project(
            {
                "repro/utils/a.py": "from repro.utils import b\n",
                "repro/utils/b.py": """
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        from repro.utils import a
                """,
            }
        )
        assert project.cycles() == []

    def test_import_graph_filters(self, make_project):
        project = make_project(
            {
                "repro/utils/a.py": "x = 1\n",
                "repro/utils/b.py": """
                    def late():
                        from repro.utils import a
                        return a
                """,
            }
        )
        runtime = project.import_graph(include_deferred=False)
        with_deferred = project.import_graph(include_deferred=True)
        assert runtime["repro.utils.b"] == set()
        assert with_deferred["repro.utils.b"] == {"repro.utils.a"}


class TestDeclaredLayers:
    def test_layers_are_disjoint(self):
        seen = set()
        for _, packages in DECLARED_LAYERS:
            for pkg in packages:
                assert pkg not in seen, f"{pkg} declared twice"
                seen.add(pkg)
        assert seen == set(declared_packages())

    def test_real_repo_packages_are_all_declared(self):
        project = build_project(REPO_SRC)
        assert project.modules, "repo src tree must parse"
        undeclared = {
            info.package
            for info in project.modules.values()
            if info.package is not None and info.layer is None
        }
        assert undeclared == set()

    def test_real_repo_is_cycle_free(self):
        assert build_project(REPO_SRC).cycles() == []
