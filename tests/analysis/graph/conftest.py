"""Shared fixtures for the whole-program (graph) analysis suite.

Tests describe a synthetic project as ``{relative path: source}``,
build a :class:`ProjectContext` over it, and run graph rule packs in
isolation — the fixtures double as executable documentation of what
each RPR5xx/6xx id accepts and rejects.
"""

import textwrap

import pytest

from repro.analysis.graph import build_project


@pytest.fixture
def make_tree(tmp_path):
    """Write a ``{relpath: source}`` dict under a temp ``src/`` root.

    Missing package ``__init__.py`` files are created empty, so tests
    only spell out the modules they care about.
    """

    def _make(files):
        root = tmp_path / "src"
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        for rel in list(files):
            parent = (root / rel).parent
            while parent != root:
                init = parent / "__init__.py"
                if not init.exists():
                    init.write_text("")
                parent = parent.parent
        return root

    return _make


@pytest.fixture
def make_project(make_tree):
    """Build a ProjectContext straight from a ``{relpath: source}`` dict."""

    def _make(files):
        return build_project(str(make_tree(files)))

    return _make


def run_rules(project, rules):
    """All findings of *rules* over *project*, in emission order."""
    findings = []
    for rule in rules:
        findings.extend(rule.check_project(project))
    return findings


def rule_ids(findings):
    """Sorted rule ids, for compact assertions."""
    return sorted(f.rule_id for f in findings)
