"""RPR601/602: metric-name uniqueness, cross-module import resolution."""

from repro.analysis.rules.contracts import (
    RULES,
    ExportResolutionRule,
    MetricUniquenessRule,
)

from tests.analysis.graph.conftest import rule_ids, run_rules

METRICS = [MetricUniquenessRule()]
EXPORTS = [ExportResolutionRule()]


class TestMetricUniqueness:
    def test_same_metric_different_labels_in_two_modules(self, make_project):
        files = {
            "repro/service/fleet.py": """
                def setup(registry):
                    registry.counter(
                        "repro_fleet_samples_total",
                        help="samples",
                        labels={"shard": "0"},
                    )
            """,
            "repro/gateway/server.py": """
                def setup(registry):
                    registry.counter(
                        "repro_fleet_samples_total",
                        help="samples",
                        labels={"worker": "0"},
                    )
            """,
        }
        findings = run_rules(make_project(files), METRICS)
        assert rule_ids(findings) == ["RPR601"]
        f = findings[0]
        assert "repro_fleet_samples_total" in f.message
        assert "conflicting label-key sets" in f.message
        # anchored at the second site in (path, line) order; gateway
        # sorts before service
        assert f.path.endswith("repro/service/fleet.py")
        again = run_rules(make_project(files), METRICS)
        assert [x.fingerprint() for x in again] == [f.fingerprint()]

    def test_duplicate_registration_same_labels_is_flagged(self, make_project):
        project = make_project(
            {
                "repro/service/a.py": (
                    "def s(r):\n"
                    "    r.gauge('repro_depth', help='d')\n"
                ),
                "repro/service/b.py": (
                    "def s(r):\n"
                    "    r.gauge('repro_depth', help='d')\n"
                ),
            }
        )
        findings = run_rules(project, METRICS)
        assert rule_ids(findings) == ["RPR601"]
        assert "duplicate registration" in findings[0].message

    def test_unique_names_are_clean(self, make_project):
        project = make_project(
            {
                "repro/service/a.py": (
                    "def s(r):\n"
                    "    r.counter('repro_a_total', help='a')\n"
                ),
                "repro/service/b.py": (
                    "def s(r):\n"
                    "    r.counter('repro_b_total', help='b')\n"
                ),
            }
        )
        assert run_rules(project, METRICS) == []

    def test_dynamic_names_are_out_of_scope(self, make_project):
        project = make_project(
            {
                "repro/service/a.py": (
                    "def s(r, action):\n"
                    "    r.counter(f'repro_{action}_total', help='a')\n"
                ),
                "repro/service/b.py": (
                    "def s(r, action):\n"
                    "    r.counter(f'repro_{action}_total', help='a')\n"
                ),
            }
        )
        assert run_rules(project, METRICS) == []

    def test_same_module_histogram_reuse_is_flagged_on_label_conflict(
        self, make_project
    ):
        project = make_project(
            {
                "repro/obs/t.py": """
                    def s(r):
                        r.histogram("repro_lat", help="l", labels={"stage": "a"})
                        r.histogram("repro_lat", help="l", labels={"kind": "b"})
                """,
            }
        )
        assert rule_ids(run_rules(project, METRICS)) == ["RPR601"]


class TestExportResolution:
    def test_missing_export_is_flagged(self, make_project):
        project = make_project(
            {
                "repro/core/forest.py": "class Forest:\n    pass\n",
                "repro/service/s.py": (
                    "from repro.core.forest import Forset\n"
                ),
            }
        )
        findings = run_rules(project, EXPORTS)
        assert rule_ids(findings) == ["RPR602"]
        assert "Forset" in findings[0].message

    def test_resolving_names_are_clean(self, make_project):
        project = make_project(
            {
                "repro/core/forest.py": (
                    "class Forest:\n    pass\n\nSEED = 1\n"
                ),
                "repro/service/s.py": (
                    "from repro.core.forest import SEED, Forest\n"
                ),
            }
        )
        assert run_rules(project, EXPORTS) == []

    def test_submodule_import_resolves(self, make_project):
        project = make_project(
            {
                "repro/core/__init__.py": "",
                "repro/core/forest.py": "x = 1\n",
                "repro/service/s.py": "from repro.core import forest\n",
            }
        )
        assert run_rules(project, EXPORTS) == []

    def test_import_star_target_is_skipped(self, make_project):
        project = make_project(
            {
                "repro/core/facade.py": "from os.path import *\n",
                "repro/service/s.py": (
                    "from repro.core.facade import join\n"
                ),
            }
        )
        assert run_rules(project, EXPORTS) == []

    def test_conditional_binding_resolves(self, make_project):
        project = make_project(
            {
                "repro/utils/compat.py": """
                    try:
                        import fastjson as jsonlib
                    except ImportError:
                        import json as jsonlib
                """,
                "repro/service/s.py": (
                    "from repro.utils.compat import jsonlib\n"
                ),
            }
        )
        assert run_rules(project, EXPORTS) == []

    def test_type_checking_from_import_must_still_resolve(self, make_project):
        project = make_project(
            {
                "repro/service/metrics.py": "class Registry:\n    pass\n",
                "repro/obs/t.py": """
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        from repro.service.metrics import Registery
                """,
            }
        )
        assert rule_ids(run_rules(project, EXPORTS)) == ["RPR602"]


def test_pack_exports_both_rules():
    assert [r.rule_id for r in RULES] == ["RPR601", "RPR602"]
