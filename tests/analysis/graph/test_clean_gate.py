"""The whole-repo clean gate for the graph stage.

Acceptance invariants this suite pins:

* ``repro lint`` runs the graph stage by default and the tree has
  **zero unsuppressed** RPR5xx/RPR6xx findings;
* every inline suppression in ``src/`` carries a reason (the policy is
  "exceptions are visible and argued", not "exceptions are free");
* the linter is self-clean: its own package produces zero findings,
  suppressed or not.
"""

from pathlib import Path

import pytest

from repro.analysis import GRAPH_RULES, lint_paths, suppression_reason

REPO_ROOT = Path(__file__).resolve().parents[3]


@pytest.fixture(scope="module")
def repo_report():
    """One full-tree lint (per-file + graph stages), shared per module."""
    import os

    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        yield lint_paths(["src", "tests", "benchmarks"])
    finally:
        os.chdir(cwd)


class TestGraphClean:
    def test_graph_stage_runs_by_default(self, repo_report):
        # rules_run counts both stages; the graph packs are registered
        assert len(GRAPH_RULES) == 7
        assert repo_report.rules_run >= len(GRAPH_RULES) + 1

    def test_zero_unsuppressed_findings(self, repo_report):
        assert repo_report.findings == [], [
            f"{f.location} {f.rule_id} {f.message}" for f in repo_report.findings
        ]

    def test_zero_unsuppressed_graph_findings(self, repo_report):
        graph_ids = {r.rule_id for r in GRAPH_RULES}
        leaked = [f for f in repo_report.findings if f.rule_id in graph_ids]
        assert leaked == []

    def test_every_suppression_carries_a_reason(self, repo_report):
        missing = []
        for f in repo_report.suppressed:
            line = (REPO_ROOT / f.path).read_text().splitlines()[f.line - 1]
            if suppression_reason(line) is None:
                missing.append(f"{f.location} {f.rule_id}: {line.strip()}")
        assert missing == [], missing


class TestSelfClean:
    def test_linter_package_is_suppression_free(self):
        """The analysis package holds itself to its own rules, with no
        noqa at all — the clock is injected by reference, not excused."""
        report = lint_paths(
            [str(REPO_ROOT / "src" / "repro" / "analysis")],
            project_root=str(REPO_ROOT / "src"),
        )
        assert report.findings == [], [
            f"{f.location} {f.rule_id}" for f in report.findings
        ]
        assert report.suppressed == [], [
            f"{f.location} {f.rule_id}" for f in report.suppressed
        ]
