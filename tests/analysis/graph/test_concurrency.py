"""RPR511/512/513: executor workers must be pure, picklable, documented."""

from repro.analysis.rules.concurrency import (
    RULES,
    GetstateContractRule,
    UnpicklableWorkRule,
    WorkerSharedStateRule,
)

from tests.analysis.graph.conftest import rule_ids, run_rules

SHARED = [WorkerSharedStateRule()]
PICKLE = [UnpicklableWorkRule()]
GETSTATE = [GetstateContractRule()]


class TestWorkerSharedState:
    def test_mutated_module_global_reached_from_worker(self, make_project):
        files = {
            "repro/core/work.py": """
                _CACHE = {}

                def _fit_tree(payload):
                    _CACHE[payload] = 1
                    return payload

                def run(executor, items):
                    return executor.map(_fit_tree, items)
            """,
        }
        findings = run_rules(make_project(files), SHARED)
        assert rule_ids(findings) == ["RPR511"]
        f = findings[0]
        assert "_CACHE" in f.message and "_fit_tree" in f.message
        assert f.snippet == "_CACHE = {}"  # anchored at the assignment
        again = run_rules(make_project(files), SHARED)
        assert [x.fingerprint() for x in again] == [f.fingerprint()]

    def test_reachability_closes_over_helper_calls(self, make_project):
        project = make_project(
            {
                "repro/core/work.py": """
                    _STATE = []

                    def _helper(x):
                        _STATE.append(x)
                        return x

                    def _worker(payload):
                        return _helper(payload)

                    def run(pool, items):
                        return pool.map(_worker, items)
                """,
            }
        )
        findings = run_rules(project, SHARED)
        assert rule_ids(findings) == ["RPR511"]
        assert "_STATE" in findings[0].message

    def test_payload_only_worker_is_clean(self, make_project):
        project = make_project(
            {
                "repro/core/work.py": """
                    _CONFIG = {}

                    def _worker(payload):
                        slots, spec = payload
                        return [s + spec for s in slots]

                    def run(executor, items):
                        return executor.map(_worker, items)
                """,
            }
        )
        assert run_rules(project, SHARED) == []

    def test_global_untouched_by_workers_is_clean(self, make_project):
        project = make_project(
            {
                "repro/core/work.py": """
                    _REGISTRY = {}

                    def register(name):
                        _REGISTRY[name] = True

                    def _worker(payload):
                        return payload

                    def run(executor, items):
                        return executor.map(_worker, items)
                """,
            }
        )
        assert run_rules(project, SHARED) == []

    def test_worker_imported_from_another_module(self, make_project):
        project = make_project(
            {
                "repro/core/workers.py": """
                    _SEEN = set()

                    def _score(payload):
                        _SEEN.add(payload)
                        return payload
                """,
                "repro/service/driver.py": """
                    from repro.core.workers import _score

                    def run(executor, items):
                        return executor.map(_score, items)
                """,
            }
        )
        findings = run_rules(project, SHARED)
        assert rule_ids(findings) == ["RPR511"]
        assert findings[0].path.endswith("repro/core/workers.py")


class TestUnpicklableWork:
    def test_lambda_submission_is_flagged(self, make_project):
        project = make_project(
            {
                "repro/core/work.py": """
                    def run(executor, items):
                        return executor.map(lambda x: x + 1, items)
                """,
            }
        )
        assert rule_ids(run_rules(project, PICKLE)) == ["RPR512"]

    def test_closure_submission_is_flagged(self, make_project):
        project = make_project(
            {
                "repro/core/work.py": """
                    def run(executor, items, scale):
                        def score_one(item):
                            return item * scale

                        return executor.map(score_one, items)
                """,
            }
        )
        findings = run_rules(project, PICKLE)
        assert rule_ids(findings) == ["RPR512"]
        assert "score_one" in findings[0].message

    def test_module_level_worker_is_clean(self, make_project):
        project = make_project(
            {
                "repro/core/work.py": """
                    def _worker(payload):
                        return payload

                    def run(executor, items):
                        return executor.map(_worker, items)
                """,
            }
        )
        assert run_rules(project, PICKLE) == []

    def test_function_valued_parameter_is_clean(self, make_project):
        # _PoolExecutor.map(self, fn, items) forwards a parameter — the
        # caller is responsible for fn, the forwarding site is not
        project = make_project(
            {
                "repro/parallel/pool.py": """
                    class _PoolExecutor:
                        def __init__(self, pool):
                            self._pool = pool

                        def map(self, fn, items):
                            return list(self._pool.map(fn, items))
                """,
            }
        )
        assert run_rules(project, PICKLE) == []

    def test_submit_of_lambda_is_flagged(self, make_project):
        project = make_project(
            {
                "repro/service/jobs.py": """
                    def enqueue(worker_pool, item):
                        return worker_pool.submit(lambda: item)
                """,
            }
        )
        assert rule_ids(run_rules(project, PICKLE)) == ["RPR512"]


class TestGetstateContract:
    def test_getstate_without_setstate_or_docs_is_flagged(self, make_project):
        project = make_project(
            {
                "repro/core/tree.py": """
                    class Tree:
                        def __getstate__(self):
                            state = dict(self.__dict__)
                            state.pop("_compiled", None)
                            return state
                """,
            }
        )
        findings = run_rules(project, GETSTATE)
        assert rule_ids(findings) == ["RPR513"]
        assert "Tree" in findings[0].message

    def test_matching_setstate_is_clean(self, make_project):
        project = make_project(
            {
                "repro/core/tree.py": """
                    class Tree:
                        def __getstate__(self):
                            return dict(self.__dict__)

                        def __setstate__(self, state):
                            self.__dict__.update(state)
                """,
            }
        )
        assert run_rules(project, GETSTATE) == []

    def test_comment_above_documents_the_contract(self, make_project):
        project = make_project(
            {
                "repro/core/tree.py": """
                    class Tree:
                        # the compiled snapshot is a cache: drop it from
                        # pickles, it is rebuilt lazily on first predict
                        def __getstate__(self):
                            state = dict(self.__dict__)
                            state.pop("_compiled", None)
                            return state
                """,
            }
        )
        assert run_rules(project, GETSTATE) == []

    def test_docstring_documents_the_contract(self, make_project):
        project = make_project(
            {
                "repro/core/tree.py": """
                    class Tree:
                        def __getstate__(self):
                            \"\"\"Drop the compiled cache; rebuilt on demand.\"\"\"
                            state = dict(self.__dict__)
                            state.pop("_compiled", None)
                            return state
                """,
            }
        )
        assert run_rules(project, GETSTATE) == []


def test_pack_exports_all_three_rules():
    assert [r.rule_id for r in RULES] == ["RPR511", "RPR512", "RPR513"]
