"""RPR501/RPR502: declared layer order and import-cycle freedom."""

from repro.analysis.rules.layering import RULES, ImportCycleRule, LayerOrderRule

from tests.analysis.graph.conftest import rule_ids, run_rules

LAYER_ONLY = [LayerOrderRule()]
CYCLE_ONLY = [ImportCycleRule()]


class TestLayerOrder:
    def test_core_importing_gateway_is_exactly_one_finding(self, make_project):
        files = {
            "repro/gateway/server.py": "X = 1\n",
            "repro/core/forest.py": "from repro.gateway.server import X\n",
        }
        findings = run_rules(make_project(files), LAYER_ONLY)
        assert rule_ids(findings) == ["RPR501"]
        f = findings[0]
        assert f.path.endswith("repro/core/forest.py")
        assert f.line == 1
        assert "repro.gateway.server" in f.message
        # the fingerprint is stable: a rebuilt project yields the same id
        again = run_rules(make_project(files), LAYER_ONLY)
        assert [x.fingerprint() for x in again] == [f.fingerprint()]

    def test_downward_and_sideways_imports_are_clean(self, make_project):
        project = make_project(
            {
                "repro/utils/rng.py": "X = 1\n",
                "repro/core/forest.py": "from repro.utils.rng import X\n",
                "repro/core/oobe.py": "from repro.core.forest import X\n",
            }
        )
        assert run_rules(project, LAYER_ONLY) == []

    def test_type_checking_import_is_exempt(self, make_project):
        project = make_project(
            {
                "repro/gateway/server.py": "X = 1\n",
                "repro/core/forest.py": """
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        from repro.gateway.server import X
                """,
            }
        )
        assert run_rules(project, LAYER_ONLY) == []

    def test_deferred_upward_import_still_counts(self, make_project):
        project = make_project(
            {
                "repro/gateway/server.py": "X = 1\n",
                "repro/core/forest.py": """
                    def late():
                        from repro.gateway.server import X
                        return X
                """,
            }
        )
        assert rule_ids(run_rules(project, LAYER_ONLY)) == ["RPR501"]

    def test_undeclared_package_is_one_finding(self, make_project):
        project = make_project(
            {
                "repro/mystery/a.py": "x = 1\n",
                "repro/mystery/b.py": "y = 2\n",
            }
        )
        findings = run_rules(project, LAYER_ONLY)
        assert rule_ids(findings) == ["RPR501"]
        assert "mystery" in findings[0].message

    def test_root_facade_is_exempt(self, make_project):
        project = make_project(
            {
                "repro/__init__.py": "from repro.cli import main\n",
                "repro/cli.py": "def main():\n    return 0\n",
            }
        )
        assert run_rules(project, LAYER_ONLY) == []

    def test_one_finding_per_import_line(self, make_project):
        project = make_project(
            {
                "repro/gateway/a.py": "X = 1\n",
                "repro/gateway/b.py": "Y = 1\n",
                "repro/core/forest.py": (
                    "from repro.gateway.a import X\n"
                    "from repro.gateway.b import Y\n"
                ),
            }
        )
        findings = run_rules(project, LAYER_ONLY)
        assert rule_ids(findings) == ["RPR501", "RPR501"]
        assert sorted(f.line for f in findings) == [1, 2]


class TestImportCycles:
    def test_mutual_imports_are_one_finding(self, make_project):
        project = make_project(
            {
                "repro/utils/a.py": "from repro.utils import b\n",
                "repro/utils/b.py": "from repro.utils import a\n",
            }
        )
        findings = run_rules(project, CYCLE_ONLY)
        assert rule_ids(findings) == ["RPR502"]
        assert "repro.utils.a -> repro.utils.b -> repro.utils.a" in (
            findings[0].message
        )

    def test_deferred_import_is_the_sanctioned_break(self, make_project):
        project = make_project(
            {
                "repro/utils/a.py": "from repro.utils import b\n",
                "repro/utils/b.py": """
                    def late():
                        from repro.utils import a
                        return a
                """,
            }
        )
        assert run_rules(project, CYCLE_ONLY) == []

    def test_three_module_cycle_reports_once(self, make_project):
        project = make_project(
            {
                "repro/utils/a.py": "from repro.utils import b\n",
                "repro/utils/b.py": "from repro.utils import c\n",
                "repro/utils/c.py": "from repro.utils import a\n",
            }
        )
        findings = run_rules(project, CYCLE_ONLY)
        assert rule_ids(findings) == ["RPR502"]

    def test_pack_exports_both_rules(self):
        assert [r.rule_id for r in RULES] == ["RPR501", "RPR502"]
