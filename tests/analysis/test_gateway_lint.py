"""Lint discipline of the gateway subsystem.

The gateway is a *network* serving layer — the part of the codebase
most tempted to reach for wall clocks and free-form metric labels.
These tests pin the two disciplines the subsystem was built under:

* RPR102: ``repro.gateway`` earned **no** wall-clock allowlist entry —
  every time source is an injectable clock/sleep held by reference;
* RPR303: every ``repro_gateway_*`` metric registration passes label
  discipline (``repro_`` prefix, literal labels, bounded cardinality).
"""

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.rules.determinism import CLOCK_ALLOWLIST

REPO_ROOT = Path(__file__).resolve().parents[2]
GATEWAY_DIR = REPO_ROOT / "src" / "repro" / "gateway"


def gateway_findings(rules=None):
    report = lint_paths([str(GATEWAY_DIR)], rules=rules)
    return report


class TestNoNewClockAllowlist:
    def test_allowlist_has_no_gateway_entry(self):
        assert not any("gateway" in glob for glob in CLOCK_ALLOWLIST), (
            "repro.gateway must keep using injectable clocks, not an "
            "RPR102 allowlist entry"
        )

    def test_gateway_sources_are_rpr102_clean(self):
        report = gateway_findings()
        clock_hits = [
            f for f in report.findings + report.suppressed
            if f.rule_id == "RPR102"
        ]
        assert clock_hits == [], [
            f"{f.path}:{f.line} {f.message}" for f in clock_hits
        ]


class TestMetricLabelDiscipline:
    def test_gateway_sources_are_rpr303_clean(self):
        report = gateway_findings()
        label_hits = [
            f for f in report.findings + report.suppressed
            if f.rule_id == "RPR303"
        ]
        assert label_hits == [], [
            f"{f.path}:{f.line} {f.message}" for f in label_hits
        ]

    def test_gateway_is_clean_under_every_rule(self):
        report = gateway_findings()
        assert report.findings == [], [
            f"{f.path}:{f.line} {f.rule_id} {f.message}"
            for f in report.findings
        ]
        assert report.files_scanned == len(
            list(GATEWAY_DIR.glob("*.py"))
        )


class TestRegisteredNames:
    def test_every_gateway_metric_is_prefixed(self):
        """Belt and braces beyond the AST rule: the instruments a live
        server actually registers all carry the repro_gateway_ prefix."""
        import asyncio

        from repro.gateway import GatewayServer
        from repro.service import FleetConfig, FleetMonitor
        from repro.service.metrics import MetricsRegistry

        fleet = FleetMonitor.build(
            FleetConfig(
                n_features=4, n_shards=1, seed=0,
                forest={"n_trees": 2, "n_tests": 2},
            ),
            registry=MetricsRegistry(),
        )
        before = {name for name, _ in fleet.registry._instruments}
        server = GatewayServer(fleet)
        gateway_names = {
            name for name, _ in fleet.registry._instruments
        } - before
        assert gateway_names, "the server must register instruments"
        assert all(n.startswith("repro_gateway_") for n in gateway_names)
        # constructed but never started: nothing to clean up
        assert server.status == "serving"
