"""Shared helpers for the static-analysis suite.

Every rule test writes a known-good and a known-bad snippet to a temp
file and lints it in isolation, so fixtures double as executable
documentation of what each rule id accepts and rejects.
"""

import textwrap

import pytest

from repro.analysis import lint_paths


@pytest.fixture
def lint_snippet(tmp_path):
    """Lint a source snippet; returns the full LintReport.

    ``filename`` may carry directories (``tests/test_x.py``) to
    exercise per-rule path scoping.
    """

    def _lint(source, rules=None, filename="snippet.py"):
        path = tmp_path / filename
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        # snippet tests exercise per-file rules; the whole-program graph
        # stage has its own suite under tests/analysis/graph/
        return lint_paths([str(path)], rules=rules, graph_rules=())

    return _lint


def rule_ids(report):
    """Sorted active rule ids of a report, for compact assertions."""
    return sorted(f.rule_id for f in report.findings)
