"""RPR401 (__all__ consistency) fixtures."""

from repro.analysis.rules.api import DunderAllConsistencyRule

from tests.analysis.conftest import rule_ids

RULES = [DunderAllConsistencyRule()]


class TestRPR401DunderAll:
    def test_stale_export_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            __all__ = ["exists", "vanished"]

            def exists():
                return 1
            """,
            rules=RULES,
        )
        assert rule_ids(report) == ["RPR401"]
        assert "vanished" in report.findings[0].message

    def test_unlisted_public_def_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            __all__ = ["listed"]

            def listed():
                return 1

            def accidental_api():
                return 2

            class AlsoAccidental:
                pass
            """,
            rules=RULES,
        )
        assert rule_ids(report) == ["RPR401", "RPR401"]

    def test_duplicate_export_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            __all__ = ["f", "f"]

            def f():
                return 1
            """,
            rules=RULES,
        )
        assert rule_ids(report) == ["RPR401"]
        assert "more than once" in report.findings[0].message

    def test_consistent_module_clean(self, lint_snippet):
        report = lint_snippet(
            """
            from collections import deque

            __all__ = ["Public", "deque", "helper", "CONST"]

            CONST = 3

            def helper():
                return 1

            class Public:
                pass

            def _private():
                return 2
            """,
            rules=RULES,
        )
        assert report.findings == []

    def test_module_without_dunder_all_skipped(self, lint_snippet):
        report = lint_snippet(
            """
            def anything_goes():
                return 1
            """,
            rules=RULES,
        )
        assert report.findings == []

    def test_conditional_imports_count_as_bindings(self, lint_snippet):
        report = lint_snippet(
            """
            __all__ = ["maybe"]

            try:
                from fastpath import maybe
            except ImportError:
                def maybe():
                    return None
            """,
            rules=RULES,
        )
        assert report.findings == []

    def test_every_package_init_in_repo_is_consistent(self):
        # the real package __init__ files are the rule's primary target;
        # lint them directly so a drifted __all__ fails here too
        from repro.analysis import lint_paths
        from pathlib import Path
        import repro

        pkg_root = Path(repro.__file__).parent
        inits = sorted(str(p) for p in pkg_root.rglob("__init__.py"))
        report = lint_paths(inits, rules=RULES)
        assert report.findings == []
