"""Property tests: fingerprints are stable under line-shift edits.

Baselines and ``--changed`` workflows only work if a finding's identity
survives unrelated edits above it.  The fingerprint hashes (rule id,
path, source snippet) — never line numbers — so inserting any number of
blank lines and comments before a violation must not change its sha1,
while its reported line number moves by exactly the inserted amount.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_paths
from repro.analysis.rules.determinism import UnseededRandomRule
from repro.analysis.rules.hygiene import MutableDefaultRule

VIOLATION_BODY = (
    "import numpy as np\n"
    "def f(xs=[]):\n"
    "    return np.random.rand(3), xs\n"
)

RULES = [UnseededRandomRule(), MutableDefaultRule()]

#: lines that shift code without changing it: blanks and comments
#: (printable ascii only — \x0b/\x0c are line boundaries for
#: str.splitlines but not for the parser, which is out of scope here)
filler_line = st.one_of(
    st.just(""),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=30,
    ).map(lambda s: "# " + s),
)


@st.composite
def prefixes(draw):
    lines = draw(st.lists(filler_line, min_size=0, max_size=40))
    return "".join(line + "\n" for line in lines)


def lint_source(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(source)
    report = lint_paths([str(path)], rules=RULES, graph_rules=())
    return sorted(report.findings, key=lambda f: f.rule_id)


@settings(max_examples=30, deadline=None)
@given(prefix=prefixes())
def test_fingerprints_survive_line_shifts(tmp_path_factory, prefix):
    tmp_path = tmp_path_factory.mktemp("fp")
    baseline = lint_source(tmp_path, VIOLATION_BODY)
    shifted = lint_source(tmp_path, prefix + VIOLATION_BODY)
    assert [f.rule_id for f in baseline] == ["RPR101", "RPR301"]
    assert [f.rule_id for f in shifted] == ["RPR101", "RPR301"]
    n_inserted = prefix.count("\n")
    for before, after in zip(baseline, shifted):
        assert after.fingerprint() == before.fingerprint()
        assert after.line == before.line + n_inserted


@settings(max_examples=30, deadline=None)
@given(prefix=prefixes())
def test_shifted_findings_stay_grandfathered(tmp_path_factory, prefix):
    from repro.analysis import load_baseline, write_baseline

    tmp_path = tmp_path_factory.mktemp("bl")
    findings = lint_source(tmp_path, VIOLATION_BODY)
    bl_path = tmp_path / "baseline.json"
    write_baseline(findings, str(bl_path))
    baseline = load_baseline(str(bl_path))
    shifted = lint_source(tmp_path, prefix + VIOLATION_BODY)
    new, grandfathered = baseline.split(shifted)
    assert new == []
    assert len(grandfathered) == len(findings)
    assert baseline.stale_entries(shifted) == []
