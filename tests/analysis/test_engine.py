"""Engine behavior: walking, suppression, determinism, parse errors."""

import pytest

from repro.analysis import ALL_RULES, lint_paths, rules_by_id
from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    Severity,
    is_suppressed,
    iter_python_files,
)
from repro.analysis.rules.numerics import FloatEqualityRule

from tests.analysis.conftest import rule_ids

FLOAT_EQ = [FloatEqualityRule()]


class TestRegistry:
    def test_rule_ids_are_unique_and_stable(self):
        from repro.analysis import GRAPH_RULES

        ids = [r.rule_id for r in (*ALL_RULES, *GRAPH_RULES)]
        assert len(ids) == len(set(ids))
        assert set(rules_by_id()) == {
            "RPR101", "RPR102", "RPR201", "RPR202",
            "RPR301", "RPR302", "RPR303", "RPR401",
            "RPR501", "RPR502", "RPR511", "RPR512", "RPR513",
            "RPR601", "RPR602",
        }

    def test_every_rule_documents_itself(self):
        from repro.analysis import GRAPH_RULES

        for rule in (*ALL_RULES, *GRAPH_RULES):
            assert rule.description, rule.rule_id
            assert rule.severity in (Severity.ERROR, Severity.WARNING)


class TestWalker:
    def test_missing_target_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["definitely/not/a/path"])

    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x == 0.0\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "junk.py").write_text("x == 0.0\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        files = list(iter_python_files([str(tmp_path)]))
        assert [f.name for f in files] == ["real.py"]

    def test_duplicate_targets_linted_once(self, tmp_path):
        p = tmp_path / "one.py"
        p.write_text("x = 1\n")
        report = lint_paths([str(p), str(p), str(tmp_path)])
        assert report.files_scanned == 1

    def test_output_is_deterministic(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("def f(x):\n    return x == 0.5\n")
        r1 = lint_paths([str(tmp_path)], rules=FLOAT_EQ)
        r2 = lint_paths([str(tmp_path)], rules=FLOAT_EQ)
        assert [f.to_dict() for f in r1.findings] == [
            f.to_dict() for f in r2.findings
        ]
        assert [f.path for f in r1.findings] == sorted(
            f.path for f in r1.findings
        )


class TestSuppression:
    def test_bare_noqa_suppresses_all_rules_on_line(self, lint_snippet):
        report = lint_snippet(
            """
            def f(x):
                return x == 0.0  # repro: noqa
            """,
            rules=FLOAT_EQ,
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["RPR201"]

    def test_targeted_noqa_with_reason(self, lint_snippet):
        report = lint_snippet(
            """
            def f(x):
                return x == 0.0  # repro: noqa RPR201 — exact-zero sentinel
            """,
            rules=FLOAT_EQ,
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["RPR201"]

    def test_noqa_for_other_rule_does_not_suppress(self, lint_snippet):
        report = lint_snippet(
            """
            def f(x):
                return x == 0.0  # repro: noqa RPR999 — wrong id
            """,
            rules=FLOAT_EQ,
        )
        assert rule_ids(report) == ["RPR201"]

    def test_multiple_ids_comma_separated(self, lint_snippet):
        report = lint_snippet(
            """
            def f(x):
                return x == 0.0  # repro: noqa RPR999, RPR201 — two ids
            """,
            rules=FLOAT_EQ,
        )
        assert report.findings == []

    def test_plain_ascii_dash_reason_accepted(self, lint_snippet):
        report = lint_snippet(
            """
            def f(x):
                return x == 0.0  # repro: noqa RPR201 - ascii dash reason
            """,
            rules=FLOAT_EQ,
        )
        assert report.findings == []

    def test_is_suppressed_ignores_unrelated_comments(self):
        from repro.analysis.engine import Finding

        f = Finding("RPR201", Severity.ERROR, "x.py", 1, 1, "m")
        assert not is_suppressed(f, ["x == 0.0  # regular comment"])
        assert is_suppressed(f, ["x == 0.0  # repro: noqa"])


class TestParseErrors:
    def test_syntax_error_becomes_rpr000(self, lint_snippet):
        report = lint_snippet("def broken(:\n")
        assert [f.rule_id for f in report.findings] == [PARSE_ERROR_RULE]
        assert report.findings[0].severity is Severity.ERROR
        assert report.findings[0].line >= 1


class TestStats:
    def test_stats_shape(self, lint_snippet):
        report = lint_snippet(
            """
            def f(x):
                a = x == 0.0
                b = x == 0.5  # repro: noqa RPR201 — fixture
                return a, b
            """,
            rules=FLOAT_EQ,
        )
        stats = report.stats()
        assert stats["files_scanned"] == 1
        assert stats["findings_total"] == 1
        assert stats["suppressed_total"] == 1
        assert stats["findings_by_rule"] == {"RPR201": 1}
        assert stats["findings_by_severity"] == {"error": 1}
        assert stats["runtime_seconds"] >= 0


def rule_ids_suppressed(report):
    return sorted(f.rule_id for f in report.suppressed)
