"""RPR301 (mutable defaults), RPR302 (swallowed except), RPR303
(metric registration) fixtures."""

from repro.analysis.rules.hygiene import (
    MetricRegistrationRule,
    MutableDefaultRule,
    SwallowedExceptionRule,
)

from tests.analysis.conftest import rule_ids

MUTABLE = [MutableDefaultRule()]
EXCEPT = [SwallowedExceptionRule()]
METRICS = [MetricRegistrationRule()]


class TestRPR301MutableDefault:
    def test_literal_and_call_defaults_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            def f(a=[], b={}, c=set()):
                return a, b, c

            def g(*, opts=list()):
                return opts
            """,
            rules=MUTABLE,
        )
        assert rule_ids(report) == ["RPR301", "RPR301", "RPR301", "RPR301"]

    def test_none_and_immutable_defaults_clean(self, lint_snippet):
        report = lint_snippet(
            """
            def f(a=None, b=(), c="x", d=0, e=frozenset()):
                a = [] if a is None else a
                return a, b, c, d, e
            """,
            rules=MUTABLE,
        )
        assert report.findings == []


class TestRPR302SwallowedException:
    def test_silent_broad_except_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            def f():
                try:
                    risky()
                except Exception:
                    pass
                try:
                    risky()
                except:
                    return None
            """,
            rules=EXCEPT,
        )
        assert rule_ids(report) == ["RPR302", "RPR302"]

    def test_reraise_use_or_log_is_clean(self, lint_snippet):
        report = lint_snippet(
            """
            def f(log):
                try:
                    risky()
                except Exception:
                    raise
                try:
                    risky()
                except Exception as exc:
                    return ("failed", exc)
                try:
                    risky()
                except Exception:
                    log.warning("risky failed")
            """,
            rules=EXCEPT,
        )
        assert report.findings == []

    def test_narrow_except_is_clean(self, lint_snippet):
        report = lint_snippet(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    pass
            """,
            rules=EXCEPT,
        )
        assert report.findings == []


class TestRPR303MetricRegistration:
    def test_unprefixed_name_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            def instrument(reg):
                return reg.counter("samples_total", help="samples")
            """,
            rules=METRICS,
        )
        assert rule_ids(report) == ["RPR303"]
        assert "repro_" in report.findings[0].message

    def test_fstring_name_checked_by_prefix(self, lint_snippet):
        report = lint_snippet(
            """
            def instrument(reg, action):
                ok = reg.counter(f"repro_alarms_{action}_total")
                bad = reg.counter(f"alarms_{action}_total")
                return ok, bad
            """,
            rules=METRICS,
        )
        assert rule_ids(report) == ["RPR303"]

    def test_label_cardinality_capped(self, lint_snippet):
        report = lint_snippet(
            """
            def instrument(reg):
                return reg.gauge(
                    "repro_fleet_depth",
                    labels={"a": "1", "b": "2", "c": "3", "d": "4"},
                )
            """,
            rules=METRICS,
        )
        assert rule_ids(report) == ["RPR303"]
        assert "cardinality" in report.findings[0].message

    def test_prefixed_small_label_registration_clean(self, lint_snippet):
        report = lint_snippet(
            """
            def instrument(reg):
                return reg.counter(
                    "repro_fleet_samples_total",
                    help="SMART samples ingested",
                    labels={"shard": "0"},
                )
            """,
            rules=METRICS,
        )
        assert report.findings == []

    def test_non_registry_histogram_calls_ignored(self, lint_snippet):
        # np.histogram's first arg is data, not a literal metric name
        report = lint_snippet(
            """
            import numpy as np

            def psi(exp, edges):
                return np.histogram(exp, bins=edges)
            """,
            rules=METRICS,
        )
        assert report.findings == []

    def test_tests_tree_is_exempt(self, lint_snippet):
        report = lint_snippet(
            """
            def test_registry(reg):
                reg.counter("x_total")
            """,
            rules=METRICS,
            filename="tests/test_scratch_metrics.py",
        )
        assert report.findings == []

    def test_stage_metric_requires_stage_label(self, lint_snippet):
        report = lint_snippet(
            """
            def instrument(reg):
                return reg.histogram(
                    "repro_stage_latency_seconds",
                    labels={"shard": "0"},
                )
            """,
            rules=METRICS,
        )
        assert rule_ids(report) == ["RPR303"]
        assert "stage" in report.findings[0].message

    def test_stage_metric_without_labels_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            def instrument(reg):
                return reg.counter("repro_stage_items_total")
            """,
            rules=METRICS,
        )
        assert rule_ids(report) == ["RPR303"]

    def test_stage_metric_with_stage_label_passes(self, lint_snippet):
        report = lint_snippet(
            """
            def instrument(reg, name):
                return reg.histogram(
                    "repro_stage_latency_seconds",
                    labels={"stage": name},
                )
            """,
            rules=METRICS,
        )
        assert rule_ids(report) == []

    def test_non_stage_metric_needs_no_stage_label(self, lint_snippet):
        report = lint_snippet(
            """
            def instrument(reg):
                return reg.counter("repro_fleet_samples_total")
            """,
            rules=METRICS,
        )
        assert rule_ids(report) == []
